"""Robustness-gauntlet benchmark — emits ``BENCH_gauntlet.json``.

Times the combined Figure 2a + 2b + 3 sweep grid — plus a GPTQ-backend grid
measuring the re-quantization attack under error-compensated rounding — on
three executors:

* **serial** (``max_workers=1``) — the shape of the per-figure loops the
  gauntlet replaced,
* **thread** (``max_workers=4``, streaming) — cells fanned out on the
  worker pool, each verified through the shared key-plan session and
  released as its worker finishes (O(workers) peak memory),
* **process** (``mode="process"``, 4 workers) — cells in worker processes
  over shared-memory model residents (GIL-free attack stages); peak RSS of
  the parent and the worker children is recorded alongside the timing.

Gates:

* **decision equivalence (always)** — the serial, thread and process
  reports must be bit-identical (same WER, matched bits, verdicts, quality
  metrics, Equation 8 probabilities) at every worker count; compared via
  the reports' decision digests.
* **streaming ≡ batched (always)** — the streaming pipeline's digests must
  match the batched reference pipeline's on the same grids.
* **speedup (measured mode, ≥ 4 CPUs)** — the thread pass must complete the
  grid ≥ 1.5× faster than serial, and so must the process pass.  Like the
  engine and service benchmarks, the timing gates are skipped in smoke mode
  (single-repeat runs on noisy shared runners are not a fair comparison)
  and on machines without enough cores to parallelize the work.
* **telemetry overhead (measured mode)** — a serial pass with tracing and
  live progress enabled must reach the exact same decisions and keep
  ≥ 0.95× of the uninstrumented throughput, pinning the observability
  layer's "spans only measure" contract with a number.

``benchmarks/compare_bench.py`` re-validates the emitted JSON and applies
the versioned regression thresholds in CI.

Run modes
---------
``pytest benchmarks/test_gauntlet.py``
    Full measurement (trained sims, best-of repeats).
``REPRO_BENCH_SMOKE=1 pytest benchmarks/test_gauntlet.py``
    Short structural run used by CI.

The JSON lands in ``benchmarks/results/BENCH_gauntlet.json`` (override the
directory with ``REPRO_BENCH_RESULTS``).
"""

from __future__ import annotations

import json
import os
import platform
import resource
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.config import EmMarkConfig
from repro.obs import TraceCollector, tracing
from repro.data.wikitext import build_wikitext_sim
from repro.engine import EngineConfig, WatermarkEngine
from repro.eval.harness import EvaluationHarness
from repro.models.activations import collect_activation_stats
from repro.models.config import ModelConfig
from repro.models.training import TrainingConfig, train_language_model
from repro.models.transformer import TransformerLM
from repro.quant.api import quantize_model
from repro.robustness import GauntletSubject, build_attack, run_gauntlet
from repro.robustness.procpool import resolve_start_method

PARALLEL_WORKERS = 4
#: Sim-scaled sweeps mirroring the three figures' grids.
FIG2A_SWEEP = (0, 40, 80, 120, 160, 200)
FIG2B_SWEEP = (0, 6, 12, 18, 24, 30)
FIG3_PAYLOADS = (6, 12, 18, 24)
#: GPTQ-backend grid: the re-quantization attack under error-compensated
#: rounding (plain RTN round-trip vs GPTQ's error feedback).
GPTQ_RTN_SWEEP = (8, 4)
GPTQ_GPTQ_SWEEP = (4,)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _results_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_RESULTS")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "results"


def _build_substrate():
    """A trained sim, its watermarked deployment, and capacity subjects."""
    dataset = build_wikitext_sim(
        vocab_size=128,
        train_tokens=12_000,
        validation_tokens=3_000,
        calibration_tokens=2_000,
        seed=99,
    )
    model_config = ModelConfig(
        name="bench-gauntlet-opt",
        vocab_size=128,
        d_model=64,
        n_layers=4,
        n_heads=4,
        d_ff=512,
        max_seq_len=32,
        norm_type="layernorm",
        activation="relu",
        family="opt",
        virtual_params_billions=0.35,
    )
    model = TransformerLM(model_config, seed=0)
    steps = 20 if _smoke() else 120
    train_language_model(
        model,
        dataset.train,
        TrainingConfig(steps=steps, batch_size=8, sequence_length=25, learning_rate=1e-2, seed=0),
    )
    activations = collect_activation_stats(model, dataset.calibration)
    quantized = quantize_model(model, "awq", bits=4, activations=activations)
    harness = EvaluationHarness(
        dataset, num_task_examples=8 if _smoke() else 16, max_sequences=16
    )
    engine = WatermarkEngine(EngineConfig())

    base_config = EmMarkConfig.scaled_for_model(quantized, bits_per_layer=12)
    watermarked, key, _ = engine.insert(quantized, activations, config=base_config)
    fig2_subject = GauntletSubject(model=watermarked, key=key, harness=harness)

    capacity_subjects: Dict[str, GauntletSubject] = {}
    for payload in FIG3_PAYLOADS:
        config = base_config.with_overrides(bits_per_layer=payload)
        wm, cap_key, _ = engine.insert(quantized, activations, config=config)
        capacity_subjects[f"bits-{payload}"] = GauntletSubject(
            model=wm, key=cap_key, harness=harness
        )

    # GPTQ backend: same trained sim, error-compensated INT4 quantization.
    gptq_quantized = quantize_model(model, "gptq", bits=4, activations=activations)
    gptq_config = EmMarkConfig.scaled_for_model(gptq_quantized, bits_per_layer=12)
    gptq_wm, gptq_key, _ = engine.insert(gptq_quantized, activations, config=gptq_config)
    gptq_subject = GauntletSubject(model=gptq_wm, key=gptq_key, harness=harness)
    return dataset, engine, fig2_subject, capacity_subjects, gptq_subject


def _run_figure_grids(
    engine, fig2_subject, capacity_subjects, gptq_subject, dataset,
    max_workers: int, mode: str = "streaming", progress: bool = False,
) -> Tuple[float, List[str], Dict[str, float]]:
    """One Figure 2a + 2b + 3 + GPTQ pass; returns (seconds, digests, min-WERs)."""
    start = time.perf_counter()
    fig2a = run_gauntlet(
        {"fig2a": fig2_subject},
        [build_attack("overwrite")],
        strengths={"overwrite": FIG2A_SWEEP},
        engine=engine,
        max_workers=max_workers,
        seed=0,
        mode=mode,
        progress=progress,
    )
    fig2b = run_gauntlet(
        {"fig2b": fig2_subject},
        [build_attack("rewatermark", calibration_corpus=dataset.calibration)],
        strengths={"rewatermark": FIG2B_SWEEP},
        engine=engine,
        max_workers=max_workers,
        seed=0,
        mode=mode,
        progress=progress,
    )
    fig3 = run_gauntlet(
        capacity_subjects,
        [build_attack("none")],
        engine=engine,
        max_workers=max_workers,
        seed=0,
        mode=mode,
        progress=progress,
    )
    gptq_grid = run_gauntlet(
        {"gptq": gptq_subject},
        [
            build_attack("requantize"),
            build_attack("gptq-requantize", calibration_corpus=dataset.calibration),
        ],
        strengths={"requantize": GPTQ_RTN_SWEEP, "gptq-requantize": GPTQ_GPTQ_SWEEP},
        engine=engine,
        max_workers=max_workers,
        seed=0,
        mode=mode,
        progress=progress,
    )
    seconds = time.perf_counter() - start
    digests = [
        fig2a.decision_digest(),
        fig2b.decision_digest(),
        fig3.decision_digest(),
        gptq_grid.decision_digest(),
    ]
    min_wer = {
        **fig2a.min_wer_by_attack(),
        **fig2b.min_wer_by_attack(),
        "capacity": min(cell.wer_percent for cell in fig3.cells),
        **{f"gptq/{name}": wer for name, wer in gptq_grid.min_wer_by_attack().items()},
    }
    return seconds, digests, min_wer


def test_gauntlet_benchmark():
    smoke = _smoke()
    repeats = 1 if smoke else 3
    cpu_count = os.cpu_count() or 1
    dataset, engine, fig2_subject, capacity_subjects, gptq_subject = _build_substrate()

    # Warm-up pass (untimed): location plans of every key enter the shared
    # engine's cache, so both timed passes run against the same warm state.
    _, warm_digests, min_wer = _run_figure_grids(
        engine, fig2_subject, capacity_subjects, gptq_subject, dataset, max_workers=1
    )

    serial_best = float("inf")
    parallel_best = float("inf")
    process_best = float("inf")
    instrumented_best = float("inf")
    serial_digests: List[str] = []
    parallel_digests: List[str] = []
    process_digests: List[str] = []
    instrumented_digests: List[str] = []
    spans_recorded = 0
    for _ in range(repeats):
        seconds, serial_digests, _ = _run_figure_grids(
            engine, fig2_subject, capacity_subjects, gptq_subject, dataset,
            max_workers=1,
        )
        serial_best = min(serial_best, seconds)
        # Fully instrumented serial pass: tracing + live progress on.  Same
        # grid, same seed — the overhead ratio below is the price of the
        # telemetry layer, and the digests must not move.
        collector = TraceCollector()
        with tracing(collector):
            seconds, instrumented_digests, _ = _run_figure_grids(
                engine, fig2_subject, capacity_subjects, gptq_subject, dataset,
                max_workers=1, progress=True,
            )
        instrumented_best = min(instrumented_best, seconds)
        spans_recorded = max(spans_recorded, len(collector))
        seconds, parallel_digests, _ = _run_figure_grids(
            engine, fig2_subject, capacity_subjects, gptq_subject, dataset,
            max_workers=PARALLEL_WORKERS,
        )
        parallel_best = min(parallel_best, seconds)
        seconds, process_digests, _ = _run_figure_grids(
            engine, fig2_subject, capacity_subjects, gptq_subject, dataset,
            max_workers=PARALLEL_WORKERS, mode="process",
        )
        process_best = min(process_best, seconds)

    # Untimed reference pass: the batched pipeline must reach the exact same
    # decisions the streaming passes did.
    _, batched_digests, _ = _run_figure_grids(
        engine, fig2_subject, capacity_subjects, gptq_subject, dataset,
        max_workers=PARALLEL_WORKERS, mode="batched",
    )

    # -- decision-equivalence gates (always) -------------------------------
    assert serial_digests == warm_digests
    assert parallel_digests == warm_digests, (
        "parallel gauntlet produced different decisions than serial"
    )
    assert process_digests == warm_digests, (
        "process gauntlet produced different decisions than streaming"
    )
    assert batched_digests == warm_digests, (
        "batched gauntlet produced different decisions than streaming"
    )
    assert instrumented_digests == warm_digests, (
        "tracing/progress changed gauntlet decisions — telemetry must only measure"
    )

    speedup = serial_best / parallel_best if parallel_best else 0.0
    process_speedup = serial_best / process_best if process_best else 0.0
    telemetry_ratio = serial_best / instrumented_best if instrumented_best else 0.0
    # High-water marks over the whole run: the parent (holds the subjects +
    # the shared arena) and the pool workers (each O(attacked model), by the
    # shared-residency memory model).  ru_maxrss is KB on Linux.
    usage_self = resource.getrusage(resource.RUSAGE_SELF)
    usage_children = resource.getrusage(resource.RUSAGE_CHILDREN)
    gptq_cells = len(GPTQ_RTN_SWEEP) + len(GPTQ_GPTQ_SWEEP)
    num_cells = len(FIG2A_SWEEP) + len(FIG2B_SWEEP) + len(FIG3_PAYLOADS) + gptq_cells
    payload = {
        "benchmark": "gauntlet",
        "smoke": smoke,
        "mode": "streaming",
        "platform": platform.platform(),
        "cpu_count": cpu_count,
        "grid": {
            "figure2a_cells": len(FIG2A_SWEEP),
            "figure2b_cells": len(FIG2B_SWEEP),
            "figure3_cells": len(FIG3_PAYLOADS),
            "gptq_cells": gptq_cells,
            "total_cells": num_cells,
            "num_layers": fig2_subject.model.num_quantization_layers,
        },
        "repeats": repeats,
        "serial_seconds": serial_best,
        "parallel_seconds": parallel_best,
        "process_seconds": process_best,
        "parallel_workers": PARALLEL_WORKERS,
        "speedup": speedup,
        "process_speedup": process_speedup,
        "process_start_method": resolve_start_method(),
        "peak_rss_kb": {
            "parent": usage_self.ru_maxrss,
            "worker_max": usage_children.ru_maxrss,
        },
        "instrumented_seconds": instrumented_best,
        "telemetry_throughput_ratio": telemetry_ratio,
        "telemetry_spans_recorded": spans_recorded,
        "decision_digests_equal": True,
        "streaming_batched_digests_equal": True,
        "streaming_process_digests_equal": True,
        "telemetry_digests_equal": True,
        "decision_digests": warm_digests,
        "min_wer_by_attack": min_wer,
        "plan_cache": engine.cache_stats(),
    }
    results_dir = _results_dir()
    results_dir.mkdir(parents=True, exist_ok=True)
    out_path = results_dir / "BENCH_gauntlet.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2, sort_keys=True)}\n[written to {out_path}]")

    # Structural guarantees (always).
    assert serial_best > 0 and parallel_best > 0 and process_best > 0
    assert instrumented_best > 0 and spans_recorded > 0
    assert min_wer["overwrite"] > 90.0
    assert min_wer["rewatermark"] > 80.0
    assert min_wer["capacity"] == 100.0
    if not smoke and cpu_count >= PARALLEL_WORKERS:
        # The acceptance bars: 4 workers complete the figure grid ≥ 1.5×
        # faster than serial — on the thread pool and on the process pool.
        # Measured mode on a multi-core host only — a single-core container
        # cannot parallelize the work in any executor and a smoke run on a
        # noisy shared runner is not a fair timing.
        assert speedup >= 1.5, (
            f"parallel gauntlet speedup {speedup:.2f}× is below the 1.5× bar "
            f"(serial {serial_best:.2f}s, parallel {parallel_best:.2f}s)"
        )
        assert process_speedup >= 1.5, (
            f"process gauntlet speedup {process_speedup:.2f}× is below the "
            f"1.5× bar (serial {serial_best:.2f}s, process {process_best:.2f}s)"
        )
    if not smoke:
        # Telemetry-overhead bar: tracing + progress may cost at most 5% of
        # serial throughput.  Host-size independent — both passes are serial.
        assert telemetry_ratio >= 0.95, (
            f"instrumented gauntlet runs at {telemetry_ratio:.2f}× of "
            f"uninstrumented throughput, below the 0.95× bar "
            f"(serial {serial_best:.2f}s, instrumented {instrumented_best:.2f}s)"
        )
