"""Benchmark: Figure 3 — watermark capacity.

Increases the per-layer signature payload and reports quality, WER and the
per-layer watermark strength at each size (the paper sweeps 50-200 bits on
OPT-2.7B; the sim sweep keeps the same 1:2:3:4 geometry scaled to the
simulated layer sizes).
"""

from repro.experiments import figure3

from bench_utils import run_once, write_result


def test_figure3_capacity(benchmark, profile):
    def run():
        return figure3.run(profile=profile)

    result = run_once(benchmark, run)
    write_result("figure3_capacity", result.render())

    # Every payload in the sweep extracts fully (the paper's figure caption:
    # "All of the watermarks are successfully extracted").
    assert all(point.wer_percent == 100.0 for point in result.points)
    # Watermark strength improves (more negative log10) with payload.
    strengths = [point.log10_strength_per_layer for point in result.points]
    assert all(a > b for a, b in zip(strengths, strengths[1:]))
