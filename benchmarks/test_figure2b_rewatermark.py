"""Benchmark: Figure 2(b) — re-watermarking attack.

The adversary re-runs EmMark's insertion with his own hyper-parameters (α=1,
β=1.5, seed 22) and quantized-model activations, at increasing payloads.  The
benchmark reports the attacked model's quality, the owner's WER and the
attacker's WER at every strength.
"""

from repro.experiments import figure2b

from bench_utils import run_once, write_result


def test_figure2b_rewatermark(benchmark, profile):
    def run():
        return figure2b.run(profile=profile)

    result = run_once(benchmark, run)
    write_result("figure2b_rewatermark", result.render())

    # The owner's watermark survives (paper: > 95% WER across the sweep on
    # multi-million-weight layers).  The simulated layers are thousands of
    # weights, so the attacker's payload covers a much larger fraction of the
    # candidate region and the owner's WER floor scales down accordingly; the
    # moderate attack strengths still leave the owner comfortably above the
    # ownership threshold.
    assert result.points[0].wer_percent == 100.0
    assert all(p.wer_percent > 85.0 for p in result.points if p.attack_strength <= 200)
    assert result.minimum_owner_wer() > 70.0
    # The attacker does succeed in inserting his own signature — that is what
    # makes this a forging threat — but that never removes the owner's.
    assert result.attacker_wer[-1] > 90.0
