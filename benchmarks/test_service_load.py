"""Verification-service load benchmark — emits ``BENCH_service.json``.

Measures the serving stack end to end (HTTP + admission + micro-batching +
engine) the way ``llm-load-test`` measures LLM inference servers:

* closed-loop load at ≥ 2 concurrency levels, reporting throughput and
  p50/p95/p99 latency,
* cold-cache vs. warm-cache verification throughput (each cold run gets a
  brand-new server whose engine has an empty plan cache; the warm runs reuse
  a server whose cache already holds every key's location plans),
* a correctness gate: every ownership decision returned under concurrent
  mixed hit/miss load must be **bit-identical** to a direct
  ``WatermarkEngine.verify_fleet`` call on the same suspects and keys.

The fleet is intentionally non-trivial: three registered keys (one owner key
plus two unrelated keys with different secret seeds ``d``) and two suspects
(a watermarked deployment and a clean one), so every request sweeps 3 keys
and the hit/miss mix exercises both verdict paths.

Run modes
---------
``pytest benchmarks/test_service_load.py``
    Full measurement (more requests, best-of repeats).
``REPRO_BENCH_SMOKE=1 pytest benchmarks/test_service_load.py``
    Short structural run used by CI.

The JSON lands in ``benchmarks/results/BENCH_service.json`` (override the
directory with ``REPRO_BENCH_RESULTS``).
"""

from __future__ import annotations

import functools
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List

from repro.core.config import EmMarkConfig
from repro.data.wikitext import build_wikitext_sim
from repro.engine import EngineConfig, WatermarkEngine
from repro.models.activations import collect_activation_stats
from repro.models.config import ModelConfig
from repro.models.training import TrainingConfig, train_language_model
from repro.models.transformer import TransformerLM
from repro.quant.api import quantize_model
from repro.service import (
    LoadConfig,
    RequestTemplate,
    ServiceConfig,
    VerificationClient,
    VerificationServer,
    run_in_background,
    run_load,
)

CONCURRENCY_LEVELS = [2, 8]


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _results_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_RESULTS")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "results"


# ----------------------------------------------------------------------
# Fixture fleet: one model family, three keys, hit + miss suspects
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=1)
def _build_fleet():
    dataset = build_wikitext_sim(
        vocab_size=128,
        train_tokens=12_000,
        validation_tokens=3_000,
        calibration_tokens=2_000,
        seed=99,
    )
    model_config = ModelConfig(
        name="bench-serve-opt",
        vocab_size=128,
        d_model=64,
        n_layers=4,
        n_heads=4,
        d_ff=512,
        max_seq_len=32,
        norm_type="layernorm",
        activation="relu",
        family="opt",
        virtual_params_billions=0.35,
    )
    model = TransformerLM(model_config, seed=0)
    steps = 20 if _smoke() else 120
    train_language_model(
        model,
        dataset.train,
        TrainingConfig(steps=steps, batch_size=8, sequence_length=25, learning_rate=1e-2, seed=0),
    )
    activations = collect_activation_stats(model, dataset.calibration)
    quantized = quantize_model(model, "awq", bits=4, activations=activations)
    base_config = EmMarkConfig.scaled_for_model(quantized, bits_per_layer=8)
    insert_engine = WatermarkEngine(EngineConfig())
    keys = {}
    watermarked = None
    # Three independent owners: distinct secret seeds `d` give every key its
    # own location plans, so a cold sweep has 3 × num_layers plans to score.
    for index, seed_offset in enumerate((0, 7, 13)):
        config = base_config.with_overrides(
            seed=base_config.seed + seed_offset, signature_seed=index + 1
        )
        wm, key, _ = insert_engine.insert(quantized, activations, config=config)
        keys[key.fingerprint()] = key
        if index == 0:
            watermarked = wm  # the deployment carrying owner 0's watermark
    return quantized, watermarked, keys


def _start_server(keys, watermarked, clean):
    """Fresh server (empty plan cache) with keys registered + suspects uploaded."""
    server = VerificationServer(
        engine=WatermarkEngine(EngineConfig()),
        config=ServiceConfig(port=0, max_wait_ms=1.0, max_batch=32),
    )
    handle = run_in_background(server)
    with VerificationClient(port=handle.port) as client:
        for key_id, key in keys.items():
            client.register_key(key, owner=f"owner-{key_id[-6:]}")
        client.upload_suspect(watermarked, suspect_id="hit")
        client.upload_suspect(clean, suspect_id="miss")
    return handle


def _mixed_templates():
    return [
        RequestTemplate("hit", label="hit"),
        RequestTemplate("miss", label="miss"),
    ]


def _burst(port: int, concurrency: int, total_requests: int, collect: bool = False):
    return run_load(
        LoadConfig(
            port=port,
            concurrency=concurrency,
            total_requests=total_requests,
            templates=_mixed_templates(),
            collect_decisions=collect,
        )
    )


def test_service_load():
    smoke = _smoke()
    repeats = 1 if smoke else 4
    requests_cold = 16
    requests_level = 24 if smoke else 120
    clean, watermarked, keys = _build_fleet()

    # -- reference verdicts: the direct library path -----------------------
    direct = WatermarkEngine(EngineConfig()).verify_fleet(
        {"hit": watermarked, "miss": clean}, keys
    )
    direct_by_pair = {(p.suspect_id, p.key_id): p for p in direct.pairs}
    assert sum(pair.owned for pair in direct.pairs) == 1  # only (hit, owner-0)

    # -- cold vs. warm throughput (same request count, same concurrency) ---
    cold_concurrency = CONCURRENCY_LEVELS[0]
    cold_best = 0.0
    warm_best = 0.0
    handle = None
    try:
        # One cold and one warm sample per fresh server, so both sides of the
        # warm > cold gate are a best-of over the same number of runs.
        for _ in range(repeats):
            if handle is not None:
                handle.close()
            handle = _start_server(keys, watermarked, clean)  # empty plan cache
            cold = _burst(handle.port, cold_concurrency, requests_cold)
            assert cold.completed == requests_cold and cold.errors == 0
            cold_best = max(cold_best, cold.throughput_rps)
            warm = _burst(handle.port, cold_concurrency, requests_cold)
            assert warm.completed == requests_cold and warm.errors == 0
            warm_best = max(warm_best, warm.throughput_rps)

        # -- concurrency sweep on the warm server --------------------------
        levels: Dict[str, Dict[str, object]] = {}
        all_decisions: List[dict] = []
        for concurrency in CONCURRENCY_LEVELS:
            report = _burst(handle.port, concurrency, requests_level, collect=True)
            assert report.completed == requests_level
            assert report.errors == 0
            assert report.failed == 0
            assert report.throughput_rps > 0
            # Ramp behavior rides into BENCH_service.json: the per-second
            # time-series accounts for every completed request.
            assert sum(report.throughput_timeseries) == report.completed
            all_decisions.extend(report.decisions)
            levels[str(concurrency)] = report.to_dict()

        with VerificationClient(port=handle.port) as client:
            stats = client.stats()
    finally:
        if handle is not None:
            handle.close()

    # -- correctness gate: batched serving ≡ direct verify_fleet -----------
    assert all_decisions, "sweep collected no decisions"
    for record in all_decisions:
        for decision in record["decisions"]:
            reference = direct_by_pair[(record["suspect_id"], decision["key_id"])]
            assert decision["matched_bits"] == reference.matched_bits
            assert decision["total_bits"] == reference.total_bits
            assert decision["owned"] == reference.owned
            assert decision["wer_percent"] == reference.wer_percent

    payload: Dict[str, object] = {
        "benchmark": "service_load",
        "smoke": smoke,
        "platform": platform.platform(),
        "fleet": {
            "model": "bench-serve-opt",
            "num_keys": len(keys),
            "num_suspects": 2,
            "num_layers": clean.num_quantization_layers,
            "pairs_per_request": len(keys),
        },
        "requests_per_level": requests_level,
        "cold_requests": requests_cold,
        "repeats": repeats,
        "throughput_rps_cold": cold_best,
        "throughput_rps_warm": warm_best,
        "warm_over_cold_speedup": (warm_best / cold_best) if cold_best else 0.0,
        "concurrency_levels": levels,
        "server_stats": {
            "dispatcher": stats["dispatcher"],
            "plan_cache": stats["plan_cache"],
            "server": stats["server"],
        },
        "decisions_checked_against_direct_verify_fleet": sum(
            len(record["decisions"]) for record in all_decisions
        ),
    }
    results_dir = _results_dir()
    results_dir.mkdir(parents=True, exist_ok=True)
    out_path = results_dir / "BENCH_service.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2, sort_keys=True)}\n[written to {out_path}]")

    # Structural guarantees (always).
    assert payload["throughput_rps_cold"] > 0
    assert payload["throughput_rps_warm"] > 0
    assert stats["dispatcher"]["batches"] >= 1
    assert stats["plan_cache"]["hits"] > 0
    if not smoke:
        # The acceptance bar: a warm plan cache serves strictly more
        # verification throughput than a cold one at the same concurrency and
        # request count.  Measured mode only — like the engine benchmark's
        # perf gates, a single-repeat smoke run on a noisy shared CI runner
        # is not a fair timing comparison.
        assert warm_best > cold_best, (
            f"warm throughput {warm_best:.1f} req/s is not higher than "
            f"cold {cold_best:.1f} req/s"
        )


# ----------------------------------------------------------------------
# Async jobs: cancel mid-run, resume from checkpoint, digest identity
# ----------------------------------------------------------------------
def _register_slow_attack():
    """A sleepy identity attack so the cancel reliably lands mid-sweep."""
    from repro.robustness.attacks import (
        ATTACK_REGISTRY,
        AttackOutcome,
        AttackSpec,
        register_attack,
    )

    if "bench-slow" in ATTACK_REGISTRY:
        return

    @register_attack
    class BenchSlowAttack(AttackSpec):
        name = "bench-slow"
        strength_unit = "-"
        default_strengths = (0,)

        def apply(self, model, strength, rng):
            time.sleep(0.2)
            return AttackOutcome(model=model.clone())


def test_job_resume_digest():
    """Submit → stream → cancel → resume; the resumed sweep must replay the
    checkpointed cells and produce a decision digest bit-identical to an
    uninterrupted run of the same grid.  Emits ``BENCH_jobs.json``."""
    _register_slow_attack()
    smoke = _smoke()
    clean, watermarked, keys = _build_fleet()
    results_dir = _results_dir()
    checkpoint_dir = results_dir / "job_checkpoints"
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    for stale in checkpoint_dir.glob("*.jsonl"):
        stale.unlink()

    # Slow cells lead the grid so the cooperative cancel lands mid-sweep.
    attacks = [
        {"name": "bench-slow", "strengths": [0, 1]},
        {"name": "overwrite", "strengths": [0, 60]},
        {"name": "pruning", "strengths": [0.4]},
    ]
    total_cells = 5
    seed = 17

    owner_key_id = next(iter(keys))  # insertion order: owner 0's key first
    server = VerificationServer(
        engine=WatermarkEngine(EngineConfig()),
        config=ServiceConfig(port=0, max_wait_ms=1.0, checkpoint_dir=checkpoint_dir),
    )
    with run_in_background(server) as handle:
        with VerificationClient(port=handle.port) as client:
            for key_id, key in keys.items():
                client.register_key(key, owner=f"owner-{key_id[-6:]}")
            client.upload_suspect(watermarked, suspect_id="hit")

            # Uninterrupted reference via the synchronous endpoint (no
            # checkpoint involvement on this path).
            uninterrupted = client.robustness(
                "hit", key_id=owner_key_id, attacks=attacks, seed=seed,
                executor="serial",
            )["report"]["decision_digest"]

            victim = client.submit_robustness_job(
                "hit", key_id=owner_key_id, attacks=attacks, seed=seed,
                executor="serial",
            )
            stream = victim.events()
            next(stream)  # ≥1 cell checkpointed
            stream.close()
            victim.cancel()
            cancelled = victim.wait(timeout=120)
            assert cancelled["state"] == "cancelled"
            cancelled_after = int(cancelled["completed_cells"])
            assert 0 < cancelled_after < total_cells

            resumed = client.submit_robustness_job(
                "hit", key_id=owner_key_id, attacks=attacks, seed=seed,
                executor="serial",
            )
            events = list(resumed.events())
            cells = [event for event in events if event["kind"] == "cell"]
            replayed = sum(1 for event in cells if event["replayed"])
            fresh = len(cells) - replayed
            final = resumed.status()
            assert final["state"] == "succeeded"
            resumed_digest = resumed.report()["report"]["decision_digest"]

    payload: Dict[str, object] = {
        "benchmark": "service_jobs",
        "smoke": smoke,
        "platform": platform.platform(),
        "grid": {
            attack["name"]: list(attack["strengths"]) for attack in attacks
        },
        "total_cells": total_cells,
        "cancelled_after_cells": cancelled_after,
        "replayed_cells": replayed,
        "fresh_cells": fresh,
        "events_streamed": len(events),
        "uninterrupted_decision_digest": uninterrupted,
        "resumed_decision_digest": resumed_digest,
        "digest_match": resumed_digest == uninterrupted,
        "job_states": [cancelled["state"], final["state"]],
    }
    out_path = results_dir / "BENCH_jobs.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2, sort_keys=True)}\n[written to {out_path}]")

    # The resume bar holds in every mode (it is an exactness gate, never a
    # timing): replayed cells cover the pre-cancel work and the digest is
    # bit-identical to the uninterrupted sweep.
    assert payload["digest_match"] is True
    assert replayed >= 1
    assert replayed + fresh == total_cells
    assert list(checkpoint_dir.glob("*.jsonl")), "checkpoint artifact missing"
