#!/usr/bin/env python3
"""Validate ``BENCH_*.json`` artifacts and gate on regression thresholds.

Every benchmark in this directory emits a JSON report; CI uploads them as
artifacts and the ``bench-regression`` job feeds them back through this
script.  Two layers of checking run per report:

1. **Schema validation** — the fields downstream tooling (CI gates, the
   README tables, dashboards) reads must exist with the right types.  A
   benchmark refactor that silently renames ``speedup`` fails here instead
   of green-washing the gate.
2. **Regression gates** — decision-equivalence flags must hold in every
   mode, and the timing/speedup floors apply in measured mode (smoke runs
   on shared CI runners are not fair timings, exactly as the benchmarks
   themselves reason).

The thresholds live here — in versioned, unit-tested Python — rather than
inline in workflow YAML, so changing a bar is a reviewed diff and the bars
are testable (``tests/benchmarks/test_compare_bench.py``).

Usage::

    python benchmarks/compare_bench.py benchmarks/results/BENCH_gauntlet.json
    python benchmarks/compare_bench.py artifacts/          # dirs are globbed

Exit code 0 when every report validates and passes its gates, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "GAUNTLET_MIN_WER",
    "GAUNTLET_CAPACITY_WER",
    "MIN_SPEEDUP_MEASURED",
    "MIN_PROCESS_SPEEDUP_MEASURED",
    "MIN_TELEMETRY_THROUGHPUT_RATIO",
    "MIN_FLEET_SPEEDUP_MEASURED",
    "FLEET_SPEEDUP_SHARDS",
    "validate_schema",
    "check_gates",
    "evaluate_report",
    "collect_reports",
    "main",
]

# ----------------------------------------------------------------------
# Versioned thresholds (formerly hardcoded inline in ci.yml)
# ----------------------------------------------------------------------
#: Per-attack worst-case WER floors on the gauntlet's figure grids.  The
#: paper's headline claims: the watermark survives overwriting (>99% at real
#: scale; >90% on the scaled sims) and re-watermarking (>95% / >80% scaled).
GAUNTLET_MIN_WER: Dict[str, float] = {
    "overwrite": 90.0,
    "rewatermark": 80.0,
}
#: Untouched watermarked models (the Figure 3 capacity subjects) must
#: extract perfectly.
GAUNTLET_CAPACITY_WER = 100.0
#: Speedup floors applied in measured mode only: parallel gauntlet vs
#: serial, engine round-trip vs the seed pipeline, warm vs cold extraction,
#: and warm vs cold service throughput must never regress below parity.
MIN_SPEEDUP_MEASURED = 1.0
#: The process executor's acceptance bar: on a ≥ 4-core host in measured
#: mode, 4 worker processes over shared-memory residents must complete the
#: figure grids ≥ 1.5× faster than serial.  Only applied when the report's
#: ``cpu_count`` clears the worker width — a single-core runner cannot
#: parallelize the grid in any executor.
MIN_PROCESS_SPEEDUP_MEASURED = 1.5
#: The observability layer's overhead bar: a serial gauntlet pass with
#: tracing and live progress enabled must retain at least 95% of the
#: uninstrumented pass's throughput (measured mode only — smoke timings on
#: shared runners are noise).  Decision equivalence with telemetry on is
#: gated unconditionally via ``telemetry_digests_equal``.
MIN_TELEMETRY_THROUGHPUT_RATIO = 0.95
#: The sharded fleet's acceptance bar: on a ≥ 4-core host in measured mode,
#: a 4-shard fleet (consistent-hash routed, per-shard plan caches and
#: dispatchers) must sustain ≥ 1.5× the verify throughput of the 1-shard
#: baseline on identical scoped requests.  Decision and occupancy-audit
#: digest equality across shard counts is gated unconditionally — routing
#: must never change a verdict.
MIN_FLEET_SPEEDUP_MEASURED = 1.5
#: Shard width the fleet speedup bar is measured at (and the core count the
#: host must clear for the bar to apply).
FLEET_SPEEDUP_SHARDS = 4


class _Num:
    """Schema marker: a real number that is not a bool."""


#: field name -> expected type (dict/list checked structurally, _Num for
#: numbers — ``bool`` is an ``int`` in Python, so numbers get their own
#: marker that rejects it).
SCHEMAS: Dict[str, Dict[str, object]] = {
    "gauntlet": {
        "benchmark": str,
        "smoke": bool,
        "mode": str,
        "cpu_count": int,
        "grid": dict,
        "repeats": int,
        "serial_seconds": _Num,
        "parallel_seconds": _Num,
        "process_seconds": _Num,
        "parallel_workers": int,
        "speedup": _Num,
        "process_speedup": _Num,
        "process_start_method": str,
        "peak_rss_kb": dict,
        "instrumented_seconds": _Num,
        "telemetry_throughput_ratio": _Num,
        "telemetry_spans_recorded": int,
        "decision_digests_equal": bool,
        "streaming_batched_digests_equal": bool,
        "streaming_process_digests_equal": bool,
        "telemetry_digests_equal": bool,
        "decision_digests": list,
        "min_wer_by_attack": dict,
        "plan_cache": dict,
    },
    "engine_throughput": {
        "benchmark": str,
        "smoke": bool,
        "num_layers": int,
        "seed_roundtrip_seconds": _Num,
        "engine_roundtrip_seconds": _Num,
        "roundtrip_speedup_vs_seed": _Num,
        "insertions_per_sec": _Num,
        "extractions_per_sec_cold": _Num,
        "extractions_per_sec_warm": _Num,
        "warm_vs_cold_extraction_speedup": _Num,
        "plan_cache": dict,
    },
    "service_load": {
        "benchmark": str,
        "smoke": bool,
        "fleet": dict,
        "throughput_rps_cold": _Num,
        "throughput_rps_warm": _Num,
        "warm_over_cold_speedup": _Num,
        "concurrency_levels": dict,
        "decisions_checked_against_direct_verify_fleet": int,
    },
    "service_fleet": {
        "benchmark": str,
        "smoke": bool,
        "cpu_count": int,
        "fleet": dict,
        "shard_counts": list,
        "shard_levels": dict,
        "speedup_4_vs_1": _Num,
        "decision_digest_single": str,
        "decision_digests_by_shards": dict,
        "decision_digests_equal": bool,
        "audit_digests_by_shards": dict,
        "audit_digests_equal": bool,
        "registry_scale": dict,
        "registry_cold_start_key_loads_x1000": int,
        "registry_cold_start_resident_x1000": int,
    },
    "service_jobs": {
        "benchmark": str,
        "smoke": bool,
        "grid": dict,
        "total_cells": int,
        "cancelled_after_cells": int,
        "replayed_cells": int,
        "fresh_cells": int,
        "events_streamed": int,
        "uninterrupted_decision_digest": str,
        "resumed_decision_digest": str,
        "digest_match": bool,
        "job_states": list,
    },
}


def _type_ok(value: object, expected: object) -> bool:
    if expected is _Num:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


def _type_name(expected: object) -> str:
    return "number" if expected is _Num else getattr(expected, "__name__", str(expected))


def validate_schema(report: Dict[str, object]) -> List[str]:
    """Structural errors of ``report`` against its declared benchmark kind."""
    kind = report.get("benchmark")
    if kind not in SCHEMAS:
        return [f"unknown benchmark kind {kind!r}; known: {sorted(SCHEMAS)}"]
    errors = []
    for field, expected in SCHEMAS[kind].items():
        if field not in report:
            errors.append(f"missing required field {field!r}")
        elif not _type_ok(report[field], expected):
            errors.append(
                f"field {field!r} should be {_type_name(expected)}, "
                f"got {type(report[field]).__name__}"
            )
    return errors


# ----------------------------------------------------------------------
# Regression gates
# ----------------------------------------------------------------------
def _gate_gauntlet(report: Dict[str, object]) -> List[str]:
    failures = []
    if report["decision_digests_equal"] is not True:
        failures.append("serial and parallel gauntlet decisions differ")
    if report["streaming_batched_digests_equal"] is not True:
        failures.append("streaming and batched gauntlet decisions differ")
    if report["streaming_process_digests_equal"] is not True:
        failures.append("streaming and process gauntlet decisions differ")
    if report["telemetry_digests_equal"] is not True:
        failures.append("tracing/progress changed gauntlet decisions")
    if (
        not report["serial_seconds"] > 0
        or not report["parallel_seconds"] > 0
        or not report["process_seconds"] > 0
    ):
        failures.append("timings must be positive")
    min_wer = report["min_wer_by_attack"]
    for attack, floor in GAUNTLET_MIN_WER.items():
        observed = min_wer.get(attack)
        if observed is None:
            failures.append(f"min_wer_by_attack is missing attack {attack!r}")
        elif not observed > floor:
            failures.append(
                f"min WER under {attack} is {observed:.2f}%, needs > {floor}%"
            )
    capacity = min_wer.get("capacity")
    if capacity is None:
        failures.append("min_wer_by_attack is missing the capacity rows")
    elif capacity != GAUNTLET_CAPACITY_WER:
        failures.append(
            f"capacity-subject WER is {capacity:.2f}%, must be exactly "
            f"{GAUNTLET_CAPACITY_WER}%"
        )
    if not report["smoke"] and report["speedup"] < MIN_SPEEDUP_MEASURED:
        failures.append(
            f"parallel gauntlet speedup {report['speedup']:.2f}x regressed below "
            f"{MIN_SPEEDUP_MEASURED}x (measured mode)"
        )
    if (
        not report["smoke"]
        and report["cpu_count"] >= report["parallel_workers"]
        and report["process_speedup"] < MIN_PROCESS_SPEEDUP_MEASURED
    ):
        failures.append(
            f"process gauntlet speedup {report['process_speedup']:.2f}x is below "
            f"{MIN_PROCESS_SPEEDUP_MEASURED}x "
            f"(measured mode, {report['cpu_count']} cores)"
        )
    if (
        not report["smoke"]
        and report["telemetry_throughput_ratio"] < MIN_TELEMETRY_THROUGHPUT_RATIO
    ):
        failures.append(
            f"instrumented gauntlet retains only "
            f"{report['telemetry_throughput_ratio']:.2f}x of uninstrumented "
            f"throughput, below {MIN_TELEMETRY_THROUGHPUT_RATIO}x (measured mode)"
        )
    return failures


def _gate_engine(report: Dict[str, object]) -> List[str]:
    failures = []
    if not report["insertions_per_sec"] > 0:
        failures.append("insertions_per_sec must be positive")
    if not report["extractions_per_sec_warm"] > 0:
        failures.append("extractions_per_sec_warm must be positive")
    if not report["smoke"]:
        if report["roundtrip_speedup_vs_seed"] < MIN_SPEEDUP_MEASURED:
            failures.append(
                f"engine round-trip speedup vs seed {report['roundtrip_speedup_vs_seed']:.2f}x "
                f"regressed below {MIN_SPEEDUP_MEASURED}x (measured mode)"
            )
        if report["warm_vs_cold_extraction_speedup"] < MIN_SPEEDUP_MEASURED:
            failures.append(
                f"warm extraction speedup {report['warm_vs_cold_extraction_speedup']:.2f}x "
                f"regressed below {MIN_SPEEDUP_MEASURED}x (measured mode)"
            )
    return failures


def _gate_service(report: Dict[str, object]) -> List[str]:
    failures = []
    if not report["throughput_rps_cold"] > 0:
        failures.append("cold throughput must be positive")
    if not report["throughput_rps_warm"] > 0:
        failures.append("warm throughput must be positive")
    for level, result in report["concurrency_levels"].items():
        if not isinstance(result, dict) or not result.get("throughput_rps", 0) > 0:
            failures.append(f"concurrency level {level!r} reports no throughput")
    if not report["decisions_checked_against_direct_verify_fleet"] > 0:
        failures.append("no decisions were checked against direct verify_fleet")
    if not report["smoke"] and report["warm_over_cold_speedup"] < MIN_SPEEDUP_MEASURED:
        failures.append(
            f"warm-over-cold throughput {report['warm_over_cold_speedup']:.2f}x "
            f"regressed below {MIN_SPEEDUP_MEASURED}x (measured mode)"
        )
    return failures


def _gate_service_fleet(report: Dict[str, object]) -> List[str]:
    failures = []
    if report["decision_digests_equal"] is not True:
        failures.append("fleet decisions diverged from the unsharded server")
    for shards, digest in report["decision_digests_by_shards"].items():
        if digest != report["decision_digest_single"]:
            failures.append(
                f"{shards}-shard decision digest {digest!r} != unsharded "
                f"{report['decision_digest_single']!r}"
            )
    if report["audit_digests_equal"] is not True:
        failures.append("occupancy-audit digest changed with the shard count")
    if len(set(report["audit_digests_by_shards"].values())) > 1:
        failures.append("audit_digests_by_shards carries more than one digest")
    for level, result in report["shard_levels"].items():
        if not isinstance(result, dict) or not result.get("throughput_rps", 0) > 0:
            failures.append(f"shard level {level!r} reports no throughput")
    # Lazy residency is a structural claim, never a timing: re-opening a
    # registry over ×1000 persisted keys must read zero NPZ archives.
    if report["registry_cold_start_key_loads_x1000"] != 0:
        failures.append(
            f"registry startup performed "
            f"{report['registry_cold_start_key_loads_x1000']} bulk NPZ loads "
            "at x1000 scale (must be 0)"
        )
    if report["registry_cold_start_resident_x1000"] != 0:
        failures.append(
            f"registry startup left {report['registry_cold_start_resident_x1000']} "
            "keys resident at x1000 scale (must be 0)"
        )
    if (
        not report["smoke"]
        and report["cpu_count"] >= FLEET_SPEEDUP_SHARDS
        and report["speedup_4_vs_1"] < MIN_FLEET_SPEEDUP_MEASURED
    ):
        failures.append(
            f"4-shard fleet speedup {report['speedup_4_vs_1']:.2f}x is below "
            f"{MIN_FLEET_SPEEDUP_MEASURED}x "
            f"(measured mode, {report['cpu_count']} cores)"
        )
    return failures


def _gate_service_jobs(report: Dict[str, object]) -> List[str]:
    """The async-jobs resume bar, gated unconditionally (never a timing):
    a sweep cancelled mid-run and resumed from its checkpoint must replay
    the completed cells and land on a digest **bit-identical** to the
    uninterrupted run of the same grid."""
    failures = []
    if report["digest_match"] is not True:
        failures.append("resumed job digest differs from the uninterrupted run")
    if not report["uninterrupted_decision_digest"]:
        failures.append("uninterrupted_decision_digest is empty")
    if report["resumed_decision_digest"] != report["uninterrupted_decision_digest"]:
        failures.append(
            "resumed_decision_digest does not equal uninterrupted_decision_digest"
        )
    if not report["replayed_cells"] >= 1:
        failures.append("resume replayed no checkpointed cells")
    if report["replayed_cells"] + report["fresh_cells"] != report["total_cells"]:
        failures.append("replayed + fresh cells must cover the whole grid")
    if not report["events_streamed"] > report["total_cells"]:
        failures.append(
            "event stream must carry every cell verdict plus the end record"
        )
    return failures


_GATES = {
    "gauntlet": _gate_gauntlet,
    "engine_throughput": _gate_engine,
    "service_load": _gate_service,
    "service_fleet": _gate_service_fleet,
    "service_jobs": _gate_service_jobs,
}


def check_gates(report: Dict[str, object]) -> List[str]:
    """Regression-gate failures (assumes the schema already validated)."""
    return _GATES[report["benchmark"]](report)


def evaluate_report(report: Dict[str, object]) -> List[str]:
    """All problems with one report: schema errors, then (if clean) gates."""
    errors = validate_schema(report)
    if errors:
        return errors
    return check_gates(report)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def collect_reports(paths: List[str]) -> List[Path]:
    """Expand files/directories into the BENCH_*.json files they contain."""
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.rglob("BENCH_*.json")))
        else:
            found.append(path)
    return found


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+",
                        help="BENCH_*.json files, or directories to glob")
    args = parser.parse_args(argv)
    files = collect_reports(args.paths)
    if not files:
        print("error: no BENCH_*.json reports found", file=sys.stderr)
        return 2
    exit_code = 0
    for path in files:
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {path}: unreadable report ({exc})")
            exit_code = 1
            continue
        if not isinstance(report, dict):
            print(f"FAIL {path}: report must be a JSON object")
            exit_code = 1
            continue
        problems = evaluate_report(report)
        if problems:
            print(f"FAIL {path} ({report.get('benchmark', '?')}):")
            for problem in problems:
                print(f"  - {problem}")
            exit_code = 1
        else:
            mode = "smoke" if report.get("smoke") else "measured"
            print(f"OK   {path} ({report['benchmark']}, {mode} mode)")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
