"""Benchmark: Table 1 — fidelity of watermarked embedded LLMs.

Regenerates the paper's fidelity table (perplexity, zero-shot accuracy, WER
for w/o WM / SpecMark / RandomWM / EmMark) on the simulated OPT and LLaMA-2
families at INT8 and INT4.  By default a four-model subset is used; set
``REPRO_FULL_TABLE1=1`` to sweep all nine models of the paper.
"""

import os

from repro.experiments import table1

from bench_utils import run_once, write_result


def _model_list():
    if os.environ.get("REPRO_FULL_TABLE1") == "1":
        return list(table1.FULL_MODEL_LIST)
    return list(table1.DEFAULT_MODEL_SUBSET)


def test_table1_fidelity(benchmark, profile):
    models = _model_list()

    def run():
        return table1.run(model_names=models, precisions=(8, 4), profile=profile)

    result = run_once(benchmark, run)
    write_result("table1_fidelity", result.render())

    # Invariants the paper reports, independent of absolute metric values:
    for bits in (8, 4):
        for row in result.rows_for(bits, "EmMark"):
            assert row.wer_percent == 100.0, f"EmMark must fully extract ({row.model_name})"
        for row in result.rows_for(bits, "SpecMark"):
            assert row.wer_percent <= 5.0, "SpecMark must fail on quantized weights"
        for row in result.rows_for(bits, "RandomWM"):
            assert row.wer_percent >= 99.0
        # EmMark's average quality degradation stays within noise of zero.
        assert abs(result.average_degradation(bits, "EmMark", "perplexity")) < 0.5
        assert abs(result.average_degradation(bits, "EmMark", "zero_shot")) < 2.0
