"""Engine throughput benchmark — emits ``BENCH_engine.json``.

Tracks the performance trajectory of the unified watermarking engine from
PR 1 onward:

* ``insertions_per_sec`` / ``extractions_per_sec_{cold,warm}`` on the default
  test model,
* cold vs. warm-cache verification latency (the plan cache's whole point),
* an honest comparison against a **seed-equivalent reference pipeline**
  (full ``np.argsort`` scoring, ``+inf``-based exclusion masks, serial
  layers, no plan reuse between insertion and extraction — the pre-engine
  code path re-implemented here verbatim).

Run modes
---------
``pytest benchmarks/test_engine_throughput.py``
    Full measurement (several repeats, best-of timing).
``REPRO_BENCH_SMOKE=1 pytest benchmarks/test_engine_throughput.py``
    Single-repeat structural check used by CI.

The JSON lands in ``benchmarks/results/BENCH_engine.json`` (override the
directory with ``REPRO_BENCH_RESULTS``).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Dict

import numpy as np

from repro.core.config import EmMarkConfig
from repro.core.scoring import combined_score
from repro.core.signature import generate_signature, split_signature_per_layer
from repro.data.wikitext import build_wikitext_sim
from repro.engine import EngineConfig, WatermarkEngine
from repro.models.activations import collect_activation_stats
from repro.models.config import ModelConfig
from repro.models.training import TrainingConfig, train_language_model
from repro.models.transformer import TransformerLM
from repro.quant.api import quantize_model
from repro.utils.rng import new_rng


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _results_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_RESULTS")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "results"


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs (robust against scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Seed-equivalent reference pipeline (pre-engine code path)
# ----------------------------------------------------------------------
def _seed_select_locations(layer, channel_activations, bits_needed, config):
    """The seed's per-layer selection: full argsort over an inf-masked matrix."""
    scores = combined_score(
        layer, channel_activations, config.alpha, config.beta,
        exclude_saturated=config.exclude_saturated,
    )
    flat = scores.reshape(-1)
    finite = np.flatnonzero(np.isfinite(flat))
    pool_size = min(config.candidate_pool_size(layer.num_weights), finite.size)
    order = np.argsort(flat[finite], kind="stable")
    candidates = finite[order[:pool_size]]
    rng = new_rng(config.seed, "selection", layer.name)
    return np.asarray(
        rng.choice(candidates, size=bits_needed, replace=False), dtype=np.int64
    )


def _seed_roundtrip(model, activations, config):
    """Serial insert + extract with per-call rescoring (the seed behaviour)."""
    layer_names = model.layer_names()
    signature = generate_signature(config.total_bits(len(layer_names)), config.signature_seed)
    per_layer = split_signature_per_layer(signature, layer_names, config.bits_per_layer)
    watermarked = model.clone()
    for name in layer_names:
        layer = watermarked.get_layer(name)
        locations = _seed_select_locations(
            layer, activations.channel_saliency(name), per_layer[name].size, config
        )
        layer.add_to_weights(locations, per_layer[name])
    # Extraction re-runs the entire scoring pipeline from the reference model.
    matched = 0
    for name in layer_names:
        reference_layer = model.get_layer(name)
        locations = _seed_select_locations(
            reference_layer, activations.channel_saliency(name), per_layer[name].size, config
        )
        delta = (
            watermarked.get_layer(name).weight_int.reshape(-1)[locations]
            - reference_layer.weight_int.reshape(-1)[locations]
        )
        matched += int(np.sum(delta == per_layer[name]))
    assert matched == signature.size
    return watermarked


# ----------------------------------------------------------------------
# Benchmark fixture model (mirrors the tier-1 test model)
# ----------------------------------------------------------------------
def _build_subject():
    dataset = build_wikitext_sim(
        vocab_size=128,
        train_tokens=12_000,
        validation_tokens=3_000,
        calibration_tokens=2_000,
        seed=99,
    )
    model_config = ModelConfig(
        name="bench-tiny-opt",
        vocab_size=128,
        d_model=32,
        n_layers=2,
        n_heads=2,
        d_ff=64,
        max_seq_len=32,
        norm_type="layernorm",
        activation="relu",
        family="opt",
        virtual_params_billions=0.125,
    )
    model = TransformerLM(model_config, seed=0)
    steps = 20 if _smoke() else 160
    train_language_model(
        model,
        dataset.train,
        TrainingConfig(steps=steps, batch_size=8, sequence_length=25, learning_rate=1e-2, seed=0),
    )
    activations = collect_activation_stats(model, dataset.calibration)
    quantized = quantize_model(model, "awq", bits=4, activations=activations)
    return quantized, activations


def test_engine_throughput():
    repeats = 1 if _smoke() else 5
    quantized, activations = _build_subject()
    config = EmMarkConfig.scaled_for_model(quantized, bits_per_layer=8)
    num_layers = quantized.num_quantization_layers

    # -- seed-equivalent reference ---------------------------------------
    seed_roundtrip = _best_of(lambda: _seed_roundtrip(quantized, activations, config), repeats)

    # -- engine: cold round-trip (fresh cache every run) ------------------
    def engine_cold_roundtrip():
        engine = WatermarkEngine(EngineConfig())
        watermarked, key, _ = engine.insert(quantized, activations, config=config)
        result = engine.extract(watermarked, key)
        assert result.wer_percent == 100.0

    engine_roundtrip = _best_of(engine_cold_roundtrip, repeats)

    # -- engine: steady-state insertion / extraction throughput ----------
    engine = WatermarkEngine(EngineConfig())
    watermarked, key, first_report = engine.insert(quantized, activations, config=config)
    cold_verification = first_report.wall_clock_seconds + engine.extract(
        watermarked, key
    ).wall_clock_seconds

    insertion_time = _best_of(
        lambda: engine.insert(quantized, activations, config=config), repeats
    )
    warm_extraction_time = _best_of(lambda: engine.extract(watermarked, key), repeats)

    def cold_extraction():
        fresh = WatermarkEngine(EngineConfig())
        fresh.extract(watermarked, key)

    cold_extraction_time = _best_of(cold_extraction, repeats)

    cache = engine.cache_info()
    payload: Dict[str, object] = {
        "benchmark": "engine_throughput",
        "smoke": _smoke(),
        "model": quantized.config.name,
        "bits": quantized.bits,
        "num_layers": num_layers,
        "bits_per_layer": config.bits_per_layer,
        "workers": engine.workers,
        "repeats": repeats,
        "platform": platform.platform(),
        "seed_roundtrip_seconds": seed_roundtrip,
        "engine_roundtrip_seconds": engine_roundtrip,
        "roundtrip_speedup_vs_seed": seed_roundtrip / engine_roundtrip if engine_roundtrip else 0.0,
        "insertions_per_sec": 1.0 / insertion_time if insertion_time else 0.0,
        "extractions_per_sec_cold": 1.0 / cold_extraction_time if cold_extraction_time else 0.0,
        "extractions_per_sec_warm": 1.0 / warm_extraction_time if warm_extraction_time else 0.0,
        "verification_latency_cold_seconds": cold_verification,
        "verification_latency_warm_seconds": warm_extraction_time,
        "warm_vs_cold_extraction_speedup": (
            cold_extraction_time / warm_extraction_time if warm_extraction_time else 0.0
        ),
        "plan_cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "evictions": cache.evictions,
            "hit_rate": cache.hit_rate,
        },
    }
    results_dir = _results_dir()
    results_dir.mkdir(parents=True, exist_ok=True)
    out_path = results_dir / "BENCH_engine.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2, sort_keys=True)}\n[written to {out_path}]")

    # Structural guarantees (always); performance guarantees (measured mode).
    assert payload["extractions_per_sec_warm"] > 0
    if not _smoke():
        # The acceptance bar: the engine round-trip beats the seed pipeline.
        assert engine_roundtrip < seed_roundtrip, (
            f"engine round-trip {engine_roundtrip:.4f}s is not faster than "
            f"seed-equivalent {seed_roundtrip:.4f}s"
        )
        # Warm-cache extraction must beat a cold-cache extraction.
        assert warm_extraction_time < cold_extraction_time
