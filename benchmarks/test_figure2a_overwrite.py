"""Benchmark: Figure 2(a) — parameter overwriting attack.

Sweeps the number of overwritten weights per quantized layer of the
watermarked OPT-2.7B-sim (AWQ INT4) and reports perplexity, zero-shot
accuracy and WER at every attack strength, mirroring the paper's figure.
"""

from repro.experiments import figure2a

from bench_utils import run_once, write_result


def test_figure2a_parameter_overwriting(benchmark, profile):
    def run():
        return figure2a.run(profile=profile)

    result = run_once(benchmark, run)
    write_result("figure2a_overwrite", result.render())

    # The paper's claim: the watermark survives every attack strength that
    # leaves the model remotely usable (WER > 99% up to 500 overwrites/layer on
    # multi-million-weight layers).  On the simulated layers (10^3-10^4
    # weights) the same absolute attack strength touches a far larger fraction
    # of the layer, so the WER floor scales accordingly: the expected loss is
    # roughly the overwritten fraction of the layer.
    assert result.points[0].wer_percent == 100.0
    assert result.points[1].wer_percent > 95.0       # 100 overwrites/layer
    assert result.minimum_wer() > 85.0               # even at 500/layer
    # Quality degrades with attack strength: the strongest attack must be no
    # better than the untouched model.
    assert result.points[-1].perplexity >= result.points[0].perplexity - 0.05
