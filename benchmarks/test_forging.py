"""Benchmark: forging attacks (Section 5.3).

Measures both forging settings — counterfeit locations and counterfeit
re-watermarking — from the point of view of a neutral verifier, plus the
signature-collision probabilities of Equation 8.
"""

from repro.experiments import forging

from bench_utils import run_once, write_result


def test_forging_attacks(benchmark, profile):
    def run():
        return forging.run(profile=profile)

    result = run_once(benchmark, run)
    write_result("forging", result.render())

    assert not result.fake_location_outcome.accepted
    assert result.owner_on_attacked.accepted
    assert not result.attacker_on_original.accepted
    # Collision probability for the whole model is astronomically small
    # (paper: 9.09e-13 per layer, raised to the n-th power).
    assert result.log10_model_collision_probability < -40
