"""Pytest fixtures for the benchmark suite (see ``bench_utils`` for helpers)."""

import pytest

from bench_utils import bench_profile


@pytest.fixture(scope="session")
def profile() -> str:
    """Training profile used by the benchmark suite."""
    return bench_profile()
