"""Pytest fixtures for the benchmark suite (see ``bench_utils`` for helpers)."""

import sys
from pathlib import Path

import pytest

# Under ``--import-mode=importlib`` (the repo-wide pytest configuration) the
# benchmark directory is not added to ``sys.path`` automatically, so the
# sibling ``bench_utils`` helper module must be made importable explicitly.
_BENCH_DIR = str(Path(__file__).resolve().parent)
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)

from bench_utils import bench_profile  # noqa: E402


@pytest.fixture(scope="session")
def profile() -> str:
    """Training profile used by the benchmark suite."""
    return bench_profile()
