"""Micro-benchmarks of the core watermarking operations.

Unlike the table/figure benchmarks (which run a whole experiment once), these
measure the steady-state cost of the two operations a deployment pipeline
calls repeatedly — watermark insertion and watermark extraction — with proper
multi-round statistics from pytest-benchmark.
"""

import pytest

from repro.core import EmMark
from repro.experiments.common import prepare_context

from bench_utils import bench_profile

MODEL = "opt-2.7b-sim"


@pytest.fixture(scope="module")
def context():
    return prepare_context(MODEL, 4, profile=bench_profile())


@pytest.fixture(scope="module")
def emmark(context):
    return EmMark(context.emmark_config)


def test_insertion_speed(benchmark, context, emmark):
    quantized = context.fresh_quantized()

    def insert():
        return emmark.insert_with_key(quantized, context.activations)

    _, key, report = benchmark(insert)
    assert report.total_bits == key.total_bits


def test_extraction_speed(benchmark, context, emmark):
    watermarked, key, _ = emmark.insert_with_key(context.fresh_quantized(), context.activations)

    def extract():
        return emmark.extract_with_key(watermarked, key)

    result = benchmark(extract)
    assert result.wer_percent == 100.0


def test_scoring_speed(benchmark, context):
    """Cost of scoring one quantization layer (the inner loop of insertion)."""
    from repro.core.scoring import select_candidates

    name = context.quantized.layer_names()[0]
    layer = context.quantized.get_layer(name)
    activations = context.activations.channel_saliency(name)
    pool = context.emmark_config.candidate_pool_size(layer.num_weights)

    result = benchmark(
        select_candidates, layer, activations, 0.5, 0.5, pool
    )
    assert result.num_candidates == pool
