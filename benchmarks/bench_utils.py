"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper on the simulated
substrate, prints the rendered rows and also writes them to
``benchmarks/results/<name>.txt`` so they can be inspected after a
``pytest benchmarks/ --benchmark-only`` run and copied into EXPERIMENTS.md.

Environment knobs
-----------------
``REPRO_FULL_TABLE1=1``
    Run Table 1 over all nine sim models instead of the four-model subset.
``REPRO_BENCH_PROFILE``
    Override the training profile used by the benchmarks (default
    ``"default"``; set to ``"smoke"`` for a fast structural check).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_profile() -> str:
    """Training profile used by the benchmark suite."""
    return os.environ.get("REPRO_BENCH_PROFILE", "default")


def write_result(name: str, content: str) -> Path:
    """Print and persist a rendered experiment table."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    print(f"\n{content}\n[written to {path}]")
    return path


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiment harnesses are deterministic and expensive (they train and
    evaluate simulated LLMs), so a single round is both sufficient and the
    only affordable choice.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
