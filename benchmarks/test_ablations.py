"""Benchmark: additional ablations called out in DESIGN.md.

* Candidate-pool ratio sweep — secrecy / quality trade-off of ``|B_c|·n/|B|``.
* Saliency-source ablation — how much of the owner's location set an
  adversary scoring with *quantized* activations would recover (the gap is
  what defeats re-watermarking and forging).
"""

from repro.experiments.ablations import run_pool_ratio_ablation, run_saliency_source_ablation

from bench_utils import run_once, write_result


def test_ablation_pool_ratio(benchmark, profile):
    def run():
        return run_pool_ratio_ablation(profile=profile)

    result = run_once(benchmark, run)
    write_result("ablation_pool_ratio", result.render())

    assert all(point.wer_percent == 100.0 for point in result.points)
    sizes = [point.mean_pool_size for point in result.points]
    assert all(a <= b for a, b in zip(sizes, sizes[1:]))


def test_ablation_saliency_source(benchmark, profile):
    def run():
        return run_saliency_source_ablation(profile=profile)

    result = run_once(benchmark, run)
    write_result("ablation_saliency_source", result.render())

    # The adversary's quantized-activation scoring must not reproduce the
    # owner's locations exactly — that gap is the secrecy margin.
    assert result.mean_overlap < 0.9
