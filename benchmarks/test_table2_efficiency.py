"""Benchmark: Table 2 — watermark insertion efficiency.

Measures the average per-layer insertion time and the GPU memory footprint
(structurally zero: the whole pipeline is CPU NumPy) on the simulated OPT
family, for INT8 and INT4 quantization.
"""

from repro.experiments import table2

from bench_utils import run_once, write_result


def test_table2_efficiency(benchmark, profile):
    def run():
        return table2.run(profile=profile)

    result = run_once(benchmark, run)
    write_result("table2_efficiency", result.render())

    for row in result.rows:
        # The paper reports < 0.4 s per quantization layer on real LLM layers;
        # the simulated layers are far smaller, so sub-second is a safe bound.
        assert row.mean_seconds_per_layer < 1.0
        assert row.gpu_memory_gb == 0.0
