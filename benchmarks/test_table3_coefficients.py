"""Benchmark: Table 3 — effectiveness of the insertion coefficients (α, β).

Inserts the same payload with (1, 0), (0.5, 0.5) and (0, 1) and reports the
watermarked model's quality and WER for each setting.
"""

from repro.experiments import table3

from bench_utils import run_once, write_result


def test_table3_coefficients(benchmark, profile):
    def run():
        return table3.run(profile=profile)

    result = run_once(benchmark, run)
    write_result("table3_coefficients", result.render())

    # Every coefficient setting extracts fully (paper: 100% WER in all rows).
    assert all(row.wer_percent == 100.0 for row in result.rows)
    # Quality stays essentially untouched in every setting; the paper sees the
    # (0, 1) row trail slightly, which at sim scale is within noise.
    baseline = min(row.perplexity for row in result.rows)
    assert all(row.perplexity <= baseline * 1.05 for row in result.rows)
