"""Benchmark: Table 4 — watermark integrity.

Extracts the owner's signature from the watermarked model and from four
independently produced non-watermarked models (plain AWQ, Alpaca-sim
fine-tune + AWQ, WikiText-sim fine-tune + AWQ, GPTQ) and reports the WER of
each — only the watermarked model may verify.
"""

from repro.experiments import table4

from bench_utils import run_once, write_result


def test_table4_integrity(benchmark, profile):
    def run():
        return table4.run(profile=profile)

    result = run_once(benchmark, run)
    write_result("table4_integrity", result.render())

    assert result.wer_by_model["WM"] == 100.0
    assert result.wer_by_model["non-WM 1"] == 0.0
    # Independently produced models stay far below any ownership threshold.
    # (The paper reports 0%; at sim scale accidental ±1 collisions leave a
    # small residue for the fine-tuned/GPTQ variants — see EXPERIMENTS.md.)
    assert result.max_false_positive_wer() < 60.0
