"""Sharded-fleet benchmark: shard scaling, decision identity, registry scale.

Three claims ride in one report (``BENCH_fleet.json``):

1. **Shard scaling** — verify throughput of a 1-, 2- and 4-shard fleet
   (consistent-hash placement, client-side routing, per-shard latency
   percentiles).  The 4-vs-1 speedup is gated at ≥ 1.5× by
   ``compare_bench.py`` in measured mode on ≥ 4-core hosts only; shards run
   in one process (per-shard dispatcher threads), so single-core smoke
   timings are not a fair scaling measurement.
2. **Decision bit-identity** — every suspect verified through the fleet
   router (any shard count) must produce decisions bit-identical to a
   single unsharded :class:`VerificationServer` over the same keys; the
   occupancy-audit digest must likewise be invariant to the shard count.
   Both are digest-gated unconditionally.
3. **Registry scale-up** — a registry re-opened over ×100 and ×1000
   synthetic persisted keys must index records only: zero NPZ loads and
   zero resident keys at startup (gated unconditionally at ×1000), with
   lazy per-key load + bounded-LRU residency measured afterwards.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import shutil
import tempfile
import time
from functools import lru_cache
from pathlib import Path
from typing import Dict, List

from repro.core.config import EmMarkConfig
from repro.data.wikitext import build_wikitext_sim
from repro.engine import EngineConfig, WatermarkEngine
from repro.models.activations import collect_activation_stats
from repro.models.config import ModelConfig
from repro.models.transformer import TransformerLM
from repro.quant.api import quantize_model
from repro.service import (
    FleetClient,
    FleetConfig,
    KeyRegistry,
    LoadConfig,
    RequestTemplate,
    ServiceConfig,
    VerificationClient,
    VerificationServer,
    launch_fleet,
    run_in_background,
    run_load,
)

SHARD_COUNTS = [1, 2, 4]
CONCURRENCY = 8


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _results_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_RESULTS")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "results"


# ----------------------------------------------------------------------
# Substrate: several independent model families so the ring has keys to
# spread — one family per (name, seed), each carrying one watermark.
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def _build_families():
    num_families = 4 if _smoke() else 8
    dataset = build_wikitext_sim(
        vocab_size=128,
        train_tokens=4_000,
        validation_tokens=1_000,
        calibration_tokens=1_000,
        seed=99,
    )
    families = []
    for index in range(num_families):
        config = ModelConfig(
            name=f"fleet-bench-{index}",
            vocab_size=128,
            d_model=48,
            n_layers=2,
            n_heads=2,
            d_ff=96,
            max_seq_len=32,
            norm_type="layernorm",
            activation="relu",
            family="opt",
            virtual_params_billions=0.125,
        )
        model = TransformerLM(config, seed=index)
        activations = collect_activation_stats(model, dataset.calibration)
        quantized = quantize_model(model, "awq", bits=4, activations=activations)
        emmark = EmMarkConfig.scaled_for_model(quantized, bits_per_layer=8)
        watermarked, key, _ = WatermarkEngine(EngineConfig()).insert(
            quantized, activations, config=emmark
        )
        families.append((watermarked, key))
    return families


def _decision_digest(responses: List[Dict[str, object]]) -> str:
    """Order-independent digest over every (suspect, key) decision tuple."""
    rows = []
    for response in responses:
        for decision in response["decisions"]:
            rows.append(
                {
                    "suspect_id": response["suspect_id"],
                    "key_id": decision["key_id"],
                    "matched_bits": decision["matched_bits"],
                    "total_bits": decision["total_bits"],
                    "owned": decision["owned"],
                    "wer_percent": decision["wer_percent"],
                }
            )
    rows.sort(key=lambda row: (row["suspect_id"], row["key_id"]))
    canonical = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return "dec-" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


def _measure_fleet(families, num_shards: int, total_requests: int):
    """One fleet at ``num_shards``: identity digests through the router,
    then a client-side-routed load burst with per-shard breakdown."""
    with launch_fleet(FleetConfig(num_shards=num_shards, max_wait_ms=1.0)) as fleet:
        # Register + upload THROUGH the router: it derives every placement
        # itself (and learns suspect ids), so the identity pass also proves
        # the router's routing.  The returned shard labels seed the
        # client-side templates — FleetClient's ring must agree with them.
        fleet_client = FleetClient(fleet.addresses)
        router_client = VerificationClient(port=fleet.port)
        templates = []
        for index, (watermarked, key) in enumerate(families):
            record = router_client.register_key(key, owner=f"owner-{index}")
            uploaded = router_client.upload_suspect(watermarked, suspect_id=f"sus-{index}")
            assert uploaded["shard"] == record["shard"]
            shard_index = fleet.labels.index(uploaded["shard"])
            assert fleet_client.shard_for(key.model_fingerprint()) == shard_index
            # Scoped to the suspect's own key: every request costs the same
            # (suspect, key) sweep at every shard count — otherwise an
            # unscoped verify against a 1-shard registry checks all N keys
            # while a 4-shard one checks its local subset, and both the
            # decision digest and the speedup would measure topology, not
            # routing.
            templates.append(
                RequestTemplate(
                    f"sus-{index}",
                    key_ids=(key.fingerprint(),),
                    label=f"sus-{index}",
                    shard=shard_index,
                )
            )
        fleet_client.close()

        # Identity pass through the ROUTER: placement decisions included.
        responses = [
            router_client.verify(suspect_id=f"sus-{index}", key_ids=[key.fingerprint()])
            for index, (_, key) in enumerate(families)
        ]
        audit_digest = router_client._request("GET", "/v1/fleet/audit")["audit"]["digest"]
        router_client.close()

        # Warm-up, then the measured burst, client-side routed (no router hop).
        run_load(
            LoadConfig(
                fleet=fleet.addresses,
                concurrency=CONCURRENCY,
                total_requests=max(len(templates) * 2, 16),
                templates=templates,
                collect_decisions=False,
            )
        )
        report = run_load(
            LoadConfig(
                fleet=fleet.addresses,
                concurrency=CONCURRENCY,
                total_requests=total_requests,
                templates=templates,
                collect_decisions=False,
            )
        )
    assert report.completed == total_requests and report.failed == 0
    assert sum(report.throughput_timeseries) == report.completed
    spread = {label: sum(series) for label, series in report.shard_timeseries.items()}
    assert sum(spread.values()) == report.completed
    return _decision_digest(responses), audit_digest, report


def _synthetic_keys(base_key, count: int):
    """``count`` distinct synthetic keys: the same bulk arrays under new
    model names, so each gets its own fingerprint pair without paying an
    engine insertion per key."""
    keys = []
    for index in range(count):
        keys.append(dataclasses.replace(base_key, model_name=f"synth-{index:04d}"))
    return keys


def _measure_registry_scale(base_key, count: int) -> Dict[str, object]:
    root = Path(tempfile.mkdtemp(prefix=f"fleet-registry-x{count}-"))
    try:
        writer = KeyRegistry(root, max_resident_keys=32)
        persist_started = time.perf_counter()
        key_ids = [
            writer.register(key, owner=f"owner-{i}").key_id
            for i, key in enumerate(_synthetic_keys(base_key, count))
        ]
        persist_seconds = time.perf_counter() - persist_started
        assert len(set(key_ids)) == count

        # The claim under test: re-opening over N persisted keys indexes
        # records only — no NPZ archive is read until a key is asked for.
        reopen_started = time.perf_counter()
        registry = KeyRegistry(root, max_resident_keys=32)
        startup_seconds = time.perf_counter() - reopen_started
        stats = registry.stats()
        cold_key_loads = stats["key_loads"]
        cold_resident = stats["resident"]
        assert stats["keys"] == count

        # Lazy path: first touch loads exactly one archive (mmap), the
        # second touch is resident.
        first_touch_started = time.perf_counter()
        registry.get_key(key_ids[0])
        first_touch_ms = (time.perf_counter() - first_touch_started) * 1000.0
        assert registry.stats()["key_loads"] == cold_key_loads + 1
        resident_touch_started = time.perf_counter()
        registry.get_key(key_ids[0])
        resident_touch_ms = (time.perf_counter() - resident_touch_started) * 1000.0
        assert registry.stats()["key_loads"] == cold_key_loads + 1

        # Bounded residency: touching every key cannot exceed the LRU cap.
        sample = key_ids if count <= 100 else key_ids[:100]
        for key_id in sample:
            registry.get_key(key_id)
        after = registry.stats()
        assert after["resident"] <= 32
        assert after["evictions"] >= len(sample) - 32
        return {
            "keys": count,
            "persist_seconds": persist_seconds,
            "startup_seconds": startup_seconds,
            "cold_start_key_loads": cold_key_loads,
            "cold_start_resident": cold_resident,
            "first_touch_ms": first_touch_ms,
            "resident_touch_ms": resident_touch_ms,
            "max_resident_keys": 32,
            "resident_after_sweep": after["resident"],
            "evictions_after_sweep": after["evictions"],
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_service_fleet():
    smoke = _smoke()
    total_requests = 48 if smoke else 240
    families = _build_families()

    # -- the unsharded baseline: one plain VerificationServer --------------
    server = VerificationServer(
        engine=WatermarkEngine(EngineConfig()),
        config=ServiceConfig(port=0, max_wait_ms=1.0),
    )
    with run_in_background(server) as handle:
        with VerificationClient(port=handle.port) as client:
            for index, (watermarked, key) in enumerate(families):
                client.register_key(key, owner=f"owner-{index}")
                client.upload_suspect(watermarked, suspect_id=f"sus-{index}")
            # Same scoped requests as the fleet pass (see _measure_fleet).
            single_responses = [
                client.verify(suspect_id=f"sus-{index}", key_ids=[key.fingerprint()])
                for index, (_, key) in enumerate(families)
            ]
    digest_single = _decision_digest(single_responses)

    # -- fleets at every shard count ---------------------------------------
    shard_levels: Dict[str, Dict[str, object]] = {}
    decision_digests: Dict[str, str] = {}
    audit_digests: Dict[str, str] = {}
    for num_shards in SHARD_COUNTS:
        digest, audit_digest, report = _measure_fleet(families, num_shards, total_requests)
        decision_digests[str(num_shards)] = digest
        audit_digests[str(num_shards)] = audit_digest
        shard_levels[str(num_shards)] = report.to_dict()

    speedup = (
        shard_levels["4"]["throughput_rps"] / shard_levels["1"]["throughput_rps"]
        if shard_levels["1"]["throughput_rps"]
        else 0.0
    )
    digests_equal = all(d == digest_single for d in decision_digests.values())
    audits_equal = len(set(audit_digests.values())) == 1

    # -- registry scale-up --------------------------------------------------
    base_key = families[0][1]
    registry_scale = {
        "x100": _measure_registry_scale(base_key, 100),
        "x1000": _measure_registry_scale(base_key, 1000),
    }

    payload: Dict[str, object] = {
        "benchmark": "service_fleet",
        "smoke": smoke,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "fleet": {
            "model_families": len(families),
            "keys": len(families),
            "suspects": len(families),
            "concurrency": CONCURRENCY,
            "requests_per_level": total_requests,
        },
        "shard_counts": SHARD_COUNTS,
        "shard_levels": shard_levels,
        "speedup_4_vs_1": speedup,
        "decision_digest_single": digest_single,
        "decision_digests_by_shards": decision_digests,
        "decision_digests_equal": digests_equal,
        "audit_digests_by_shards": audit_digests,
        "audit_digests_equal": audits_equal,
        "registry_scale": registry_scale,
        "registry_cold_start_key_loads_x1000": registry_scale["x1000"]["cold_start_key_loads"],
        "registry_cold_start_resident_x1000": registry_scale["x1000"]["cold_start_resident"],
    }
    results_dir = _results_dir()
    results_dir.mkdir(parents=True, exist_ok=True)
    out_path = results_dir / "BENCH_fleet.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(payload, indent=2, sort_keys=True)}\n[written to {out_path}]")

    # Structural guarantees (always); the timing gates live in
    # compare_bench.py and apply in measured mode on >= 4 cores.
    assert digests_equal, "fleet decisions diverged from the unsharded server"
    assert audits_equal, "occupancy-audit digest changed with the shard count"
    assert payload["registry_cold_start_key_loads_x1000"] == 0
    assert payload["registry_cold_start_resident_x1000"] == 0
    for level, result in shard_levels.items():
        assert result["throughput_rps"] > 0, f"no throughput at {level} shard(s)"
