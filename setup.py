"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can also be installed in fully offline environments where
PEP 517 build isolation cannot download build requirements::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
