#!/usr/bin/env python3
"""Scenario: auditing watermark resilience before deployment.

A security team wants to know how much abuse a watermarked INT4 model can take
before the ownership signal degrades — and how much the abuse costs the
attacker in model quality.  The script runs the full robustness gauntlet:
every attack in the registry — parameter overwriting, re-watermarking,
magnitude pruning, LoRA fine-tuning, RTN and GPTQ re-quantization, scale
tampering, outlier-column rewrites, structured head/row pruning, the
adaptive (algorithm-aware) attacker and model souping — is swept on the
streaming pipeline: each attacked model is verified against the shared
key-plan session and released the moment its worker finishes, so the grid
size is bounded by CPU, not memory.

Run with:  python examples/attack_resilience_study.py [--profile smoke|default]
"""

from __future__ import annotations

import argparse

from repro import EmMark, EmMarkConfig, quantize_model
from repro.eval import EvaluationHarness
from repro.models import collect_activation_stats
from repro.models.registry import get_pretrained_model_and_data
from repro.robustness import GauntletSubject, build_attack, run_gauntlet
from repro.utils.logging import configure


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=["smoke", "default"])
    parser.add_argument("--model", default="opt-2.7b-sim")
    parser.add_argument("--workers", type=int, default=None,
                        help="gauntlet worker-pool width (default: auto)")
    args = parser.parse_args()
    configure()

    print(f"preparing watermarked {args.model} (AWQ INT4, {args.profile} profile)...")
    model, dataset = get_pretrained_model_and_data(args.model, profile=args.profile)
    activations = collect_activation_stats(model, dataset.calibration)
    quantized = quantize_model(model, "awq", bits=4, activations=activations)
    emmark = EmMark(EmMarkConfig.scaled_for_model(quantized))
    watermarked, key, _ = emmark.insert_with_key(quantized, activations)
    harness = EvaluationHarness(dataset, num_task_examples=16)

    attacks = [
        build_attack("none"),
        build_attack("overwrite"),
        build_attack("rewatermark", calibration_corpus=dataset.calibration),
        build_attack("pruning"),
        build_attack("lora-finetune", calibration_corpus=dataset.calibration),
        build_attack("requantize"),
        build_attack("gptq-requantize", calibration_corpus=dataset.calibration),
        build_attack("scale-tamper"),
        build_attack("outlier-rewrite"),
        build_attack("structured-prune"),
        build_attack("adaptive-overwrite", calibration_corpus=dataset.calibration),
        build_attack("adaptive-oracle", calibration_corpus=dataset.calibration),
        # True two-clone soup: a second owner watermarks the same virgin base.
        build_attack("soup", base_model=quantized, base_activations=activations),
    ]
    strengths = {
        "overwrite": (100, 300, 500),
        "rewatermark": (50, 150, 300),
        "pruning": (0.3, 0.6, 0.9),
        "lora-finetune": (20,),
        "requantize": (4,),
        "gptq-requantize": (4,),
        "scale-tamper": (0.1, 0.3),
        "outlier-rewrite": (1.0,),
        "structured-prune": (0.25, 0.5),
        "adaptive-overwrite": (100, 300),
        "adaptive-oracle": (0.5, 1.0),
        "soup": (0.5, 1.0),
    }
    print(f"running the gauntlet: {sum(len(s) for s in strengths.values()) + 1} cells...")
    report = run_gauntlet(
        {args.model: GauntletSubject(model=watermarked, key=key, harness=harness)},
        attacks,
        strengths=strengths,
        max_workers=args.workers,
        seed=7,
    )

    print()
    print(report.render())
    print("\nQuality-vs-WER frontier (what removal costs the attacker):")
    for entry in report.frontier():
        print(f"  WER {entry['wer_percent']:6.2f}%  PPL {entry['perplexity']:8.2f}  "
              f"acc {entry['zero_shot_accuracy']:5.2f}%  ← {entry['attack']}"
              f"@{entry['strength']:g}")
    print("\nReading: every attack strong enough to dent the WER has already cost the "
          "attacker far more model quality than the watermark cost the owner (none).")


if __name__ == "__main__":
    main()
