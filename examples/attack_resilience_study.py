#!/usr/bin/env python3
"""Scenario: auditing watermark resilience before deployment.

A security team wants to know how much abuse a watermarked INT4 model can take
before the ownership signal degrades — and how much the abuse costs the
attacker in model quality.  The script sweeps the two removal attacks of the
paper (parameter overwriting, Figure 2a; re-watermarking, Figure 2b) plus
magnitude pruning, and prints WER / perplexity / accuracy at every strength.

Run with:  python examples/attack_resilience_study.py [--profile smoke|default]
"""

from __future__ import annotations

import argparse

from repro import EmMark, EmMarkConfig, quantize_model
from repro.attacks.overwrite import OverwriteAttackConfig, parameter_overwrite_attack
from repro.attacks.pruning import PruningAttackConfig, magnitude_pruning_attack
from repro.attacks.rewatermark import RewatermarkAttackConfig, rewatermark_attack
from repro.eval import EvaluationHarness
from repro.models import collect_activation_stats
from repro.models.registry import get_pretrained_model_and_data
from repro.utils.logging import configure
from repro.utils.tables import Table, format_float


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=["smoke", "default"])
    parser.add_argument("--model", default="opt-2.7b-sim")
    args = parser.parse_args()
    configure()

    print(f"preparing watermarked {args.model} (AWQ INT4, {args.profile} profile)...")
    model, dataset = get_pretrained_model_and_data(args.model, profile=args.profile)
    activations = collect_activation_stats(model, dataset.calibration)
    quantized = quantize_model(model, "awq", bits=4, activations=activations)
    emmark = EmMark(EmMarkConfig.scaled_for_model(quantized))
    watermarked, key, _ = emmark.insert_with_key(quantized, activations)
    harness = EvaluationHarness(dataset, num_task_examples=16)

    def measure(candidate):
        quality = harness.evaluate(candidate)
        extraction = emmark.extract_with_key(candidate, key)
        return quality, extraction

    table = Table(
        title=f"Attack resilience of EmMark on {args.model} (AWQ INT4)",
        columns=["Attack", "Strength", "PPL", "Zero-shot Acc (%)", "Owner WER (%)"],
    )
    baseline_quality, baseline_extraction = measure(watermarked)
    table.add_row(["(none)", "-", format_float(baseline_quality.perplexity),
                   format_float(baseline_quality.zero_shot_accuracy),
                   format_float(baseline_extraction.wer_percent)])

    print("sweeping parameter-overwriting attack...")
    for strength in (100, 300, 500):
        attacked = parameter_overwrite_attack(
            watermarked, OverwriteAttackConfig(weights_per_layer=strength, seed=7)
        )
        quality, extraction = measure(attacked)
        table.add_row(["overwrite", f"{strength}/layer", format_float(quality.perplexity),
                       format_float(quality.zero_shot_accuracy),
                       format_float(extraction.wer_percent)])

    print("sweeping re-watermarking attack (attacker alpha=1, beta=1.5, seed=22)...")
    for strength in (50, 150, 300):
        attacked, _ = rewatermark_attack(
            watermarked,
            RewatermarkAttackConfig(bits_per_layer=strength),
            calibration_corpus=dataset.calibration,
        )
        quality, extraction = measure(attacked)
        table.add_row(["re-watermark", f"{strength}/layer", format_float(quality.perplexity),
                       format_float(quality.zero_shot_accuracy),
                       format_float(extraction.wer_percent)])

    print("sweeping magnitude pruning...")
    for sparsity in (0.3, 0.6, 0.9):
        attacked = magnitude_pruning_attack(watermarked, PruningAttackConfig(sparsity=sparsity))
        quality, extraction = measure(attacked)
        table.add_row(["pruning", f"{int(sparsity * 100)}%", format_float(quality.perplexity),
                       format_float(quality.zero_shot_accuracy),
                       format_float(extraction.wer_percent)])

    print()
    print(table.render())
    print("\nReading: every attack strong enough to dent the WER has already cost the "
          "attacker far more model quality than the watermark cost the owner (none).")


if __name__ == "__main__":
    main()
