"""End-to-end demo of the watermark verification service.

The full owner story, in one script:

1. train + quantize a small simulated LLM and watermark it (the "release"),
2. start the verification server with a persistent key registry,
3. register the owner's key and upload two deployment snapshots — one that
   carries the watermark and one clean rebuild,
4. fire concurrent verification traffic at the server (closed-loop load
   generator with a hit/miss mix),
5. read back the ownership verdicts, the micro-batching behaviour and the
   plan-cache efficiency from ``/stats``,
6. run a robustness sweep as a **background job**: submit (202 + job id),
   stream the per-cell NDJSON events live, cancel it mid-run, then resubmit
   the identical request — the completed cells replay from the on-disk
   checkpoint and the final decision digest is bit-identical to an
   uninterrupted run.

Run with::

    PYTHONPATH=src python examples/serve_verification.py
"""

import tempfile
from pathlib import Path

from repro.core.config import EmMarkConfig
from repro.data.wikitext import build_wikitext_sim
from repro.engine import EngineConfig, WatermarkEngine
from repro.models.activations import collect_activation_stats
from repro.models.config import ModelConfig
from repro.models.training import TrainingConfig, train_language_model
from repro.models.transformer import TransformerLM
from repro.quant.api import quantize_model
from repro.service import (
    AuditLog,
    KeyRegistry,
    LoadConfig,
    RequestTemplate,
    ServiceConfig,
    ServiceError,
    VerificationClient,
    VerificationServer,
    run_in_background,
    run_load,
)


def build_release():
    """Train, quantize and watermark the model the owner ships."""
    print("== 1. building + watermarking the release model ==")
    dataset = build_wikitext_sim(
        vocab_size=128, train_tokens=12_000, validation_tokens=3_000,
        calibration_tokens=2_000, seed=7,
    )
    config = ModelConfig(
        name="demo-opt", vocab_size=128, d_model=32, n_layers=2, n_heads=2,
        d_ff=64, max_seq_len=32, family="opt", virtual_params_billions=0.125,
    )
    model = TransformerLM(config, seed=0)
    train_language_model(
        model, dataset.train,
        TrainingConfig(steps=60, batch_size=8, sequence_length=25, learning_rate=1e-2, seed=0),
    )
    activations = collect_activation_stats(model, dataset.calibration)
    quantized = quantize_model(model, "awq", bits=4, activations=activations)
    emmark = EmMarkConfig.scaled_for_model(quantized, bits_per_layer=8)
    watermarked, key, report = WatermarkEngine().insert(quantized, activations, config=emmark)
    print(f"   inserted {report.total_bits} bits into {report.num_layers} layers "
          f"in {report.wall_clock_seconds * 1000:.1f}ms")
    return quantized, watermarked, key


def main():
    clean, watermarked, key = build_release()

    with tempfile.TemporaryDirectory() as tmp:
        registry_dir = Path(tmp) / "registry"
        audit_path = Path(tmp) / "audit.jsonl"
        server = VerificationServer(
            registry=KeyRegistry(registry_dir),
            audit=AuditLog(audit_path),
            config=ServiceConfig(
                port=0, max_wait_ms=2.0, checkpoint_dir=Path(tmp) / "checkpoints"
            ),
        )
        print("\n== 2. starting the verification server ==")
        with run_in_background(server) as handle:
            print(f"   listening on 127.0.0.1:{handle.port}, registry at {registry_dir}")

            print("\n== 3. registering the key + uploading deployment snapshots ==")
            with VerificationClient(port=handle.port) as client:
                record = client.register_key(
                    key, owner="acme-ml", metadata={"release": "v1.0"}
                )
                print(f"   key {record['key_id']} registered to {record['owner']!r}")
                client.upload_suspect(watermarked, suspect_id="prod-deployment")
                client.upload_suspect(clean, suspect_id="competitor-rebuild")

                print("\n== 4. single verifications ==")
                for suspect_id in ("prod-deployment", "competitor-rebuild"):
                    decision = client.verify(suspect_id=suspect_id)["decisions"][0]
                    verdict = "OWNED" if decision["owned"] else "not owned"
                    print(f"   {suspect_id}: WER {decision['wer_percent']:.1f}%, "
                          f"P_c {decision['false_claim_probability']:.2e} → {verdict}")

            print("\n== 5. concurrent load (closed loop, hit/miss mix) ==")
            report = run_load(LoadConfig(
                port=handle.port,
                concurrency=4,
                total_requests=80,
                templates=[
                    RequestTemplate("prod-deployment", label="hit"),
                    RequestTemplate("competitor-rebuild", label="miss"),
                ],
                collect_decisions=False,
            ))
            print(f"   {report.summary()}")

            with VerificationClient(port=handle.port) as client:
                stats = client.stats()
            dispatcher = stats["dispatcher"]
            cache = stats["plan_cache"]
            print("\n== 6. serving statistics ==")
            print(f"   micro-batching: {dispatcher['jobs_dispatched']} requests in "
                  f"{dispatcher['batches']} engine sweeps "
                  f"(mean batch {dispatcher['mean_batch_size']:.1f}, "
                  f"largest {dispatcher['largest_batch']})")
            print(f"   plan cache: {cache['hits']} hits / {cache['misses']} misses "
                  f"({100 * cache['hit_rate']:.1f}% — misses happen once per key, "
                  f"then every verification is pure lookups)")
            print(f"   audit log: {stats['audit']['entries']} ownership decisions "
                  f"recorded at {audit_path.name}")

            print("\n== 7. background robustness job: submit -> stream -> resume ==")
            attacks = [{"name": "overwrite", "strengths": [0, 40, 80]},
                       {"name": "pruning", "strengths": [0.3, 0.5]}]
            with VerificationClient(port=handle.port) as client:
                job = client.submit_robustness_job(
                    "prod-deployment", attacks=attacks, seed=11, executor="serial"
                )
                print(f"   job {job.job_id} accepted "
                      f"({job.last_status['total_cells']} cells, "
                      f"checkpoint {Path(job.last_status['checkpoint']).name})")
                stream = job.events()
                first = next(stream)       # live verdict while the sweep runs
                print(f"   first streamed cell: {first['cell_id']} "
                      f"(owned={first['cell']['owned']})")
                stream.close()
                try:
                    job.cancel()           # cooperative: stops at a cell boundary
                except ServiceError:
                    pass                   # tiny demo grids can outrun the cancel
                interrupted = job.wait()
                print(f"   {interrupted['state']} after "
                      f"{interrupted['completed_cells']} of "
                      f"{interrupted['total_cells']} cells (all checkpointed)")

                # Identical request -> same grid fingerprint -> resume from disk.
                resumed = client.submit_robustness_job(
                    "prod-deployment", attacks=attacks, seed=11, executor="serial"
                )
                replayed = sum(1 for event in resumed.events()
                               if event["kind"] == "cell" and event["replayed"])
                report = resumed.report()["report"]
                print(f"   resumed: {replayed} cells replayed from the checkpoint, "
                      f"{report['num_cells'] - replayed} computed fresh")
                print(f"   decision digest {report['decision_digest'][:16]}… "
                      f"(bit-identical to an uninterrupted sweep)")
        print("\ndone — server stopped, registry persisted for the next start.")


if __name__ == "__main__":
    main()
