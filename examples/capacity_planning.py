#!/usr/bin/env python3
"""Scenario: planning the watermark payload for a model family.

Before shipping, an IP owner must decide how many signature bits to embed per
quantization layer.  More bits mean a stronger ownership claim (Equation 8 of
the paper) but also more weight perturbations.  This example:

1. computes the false-claim probability as a function of payload size
   (the paper's watermarking-strength analysis),
2. answers the inverse question — how many bits are needed for a target
   strength such as 1e-12 per layer or 1e-80 for a whole model, and
3. empirically sweeps payload sizes on a simulated INT4 model (Figure 3) to
   confirm quality is preserved and extraction stays at 100%.

Run with:  python examples/capacity_planning.py [--profile smoke|default]
"""

from __future__ import annotations

import argparse

from repro import EmMark, EmMarkConfig, quantize_model
from repro.core.strength import (
    false_claim_probability,
    log10_watermark_strength,
    required_bits_for_strength,
)
from repro.eval import EvaluationHarness
from repro.models import collect_activation_stats
from repro.models.registry import get_pretrained_model_and_data
from repro.utils.logging import configure
from repro.utils.tables import Table, format_float


def analytical_strength_table() -> Table:
    """Equation 8 for the payload sizes the paper discusses."""
    table = Table(
        title="Watermark strength vs payload (Equation 8, full extraction)",
        columns=["Bits/layer", "P_c per layer", "log10 P_c for 192 layers (OPT-2.7B)"],
    )
    for bits in (20, 40, 100, 200, 300):
        table.add_row([
            bits,
            f"{false_claim_probability(bits, bits):.3e}",
            format_float(log10_watermark_strength(bits, 192), 1),
        ])
    return table


def inverse_planning_table() -> Table:
    """How many bits are needed to reach a target strength."""
    table = Table(
        title="Required payload for a target false-claim probability",
        columns=["Target probability", "Layers", "Bits/layer needed"],
    )
    for target, layers in [(1e-6, 1), (1e-12, 1), (1e-12, 12), (1e-80, 192)]:
        table.add_row([f"{target:.0e}", layers, required_bits_for_strength(target, layers)])
    return table


def empirical_capacity_sweep(profile: str, model_name: str) -> Table:
    """Figure-3-style sweep on the simulated model."""
    model, dataset = get_pretrained_model_and_data(model_name, profile=profile)
    activations = collect_activation_stats(model, dataset.calibration)
    quantized = quantize_model(model, "awq", bits=4, activations=activations)
    harness = EvaluationHarness(dataset, num_task_examples=16)
    baseline = harness.evaluate(quantized)

    table = Table(
        title=f"Empirical capacity sweep on {model_name} (AWQ INT4); "
              f"non-watermarked PPL {baseline.perplexity:.2f}",
        columns=["Bits/layer", "PPL", "Zero-shot Acc (%)", "WER (%)"],
    )
    for payload in (8, 16, 32, 48):
        emmark = EmMark(EmMarkConfig.scaled_for_model(quantized, bits_per_layer=payload))
        watermarked, key, _ = emmark.insert_with_key(quantized, activations)
        quality = harness.evaluate(watermarked)
        extraction = emmark.extract_with_key(watermarked, key)
        table.add_row([
            payload,
            format_float(quality.perplexity),
            format_float(quality.zero_shot_accuracy),
            format_float(extraction.wer_percent),
        ])
    return table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=["smoke", "default"])
    parser.add_argument("--model", default="opt-2.7b-sim")
    args = parser.parse_args()
    configure()

    print(analytical_strength_table().render())
    print()
    print(inverse_planning_table().render())
    print()
    print("running the empirical sweep (this trains / evaluates a simulated model)...")
    print(empirical_capacity_sweep(args.profile, args.model).render())


if __name__ == "__main__":
    main()
