#!/usr/bin/env python3
"""Scenario: protecting an embedded LLM shipped to edge devices.

This example plays out the paper's motivating story with three parties:

* **Vendor** — compresses an LLM for edge deployment (SmoothQuant INT8 for an
  OPT-style model), watermarks it with EmMark and ships it to customers'
  devices, keeping the watermark key private.
* **Pirate** — an end-user with full local access who copies the deployed
  weights, tries to launder them (parameter overwriting + LoRA fine-tuning)
  and redistributes the result as their own product.
* **Honest competitor** — independently fine-tunes and quantizes the same
  base architecture; their model must NOT trigger the vendor's ownership
  claim.

The script shows the vendor proving ownership of the pirated copy while the
competitor's model stays clear — fidelity, robustness and integrity in one
workflow.

Run with:  python examples/edge_deployment_ip_protection.py [--profile smoke|default]
"""

from __future__ import annotations

import argparse

from repro import EmMark, EmMarkConfig, quantize_model
from repro.attacks.finetune_attack import lora_finetune_attack
from repro.attacks.overwrite import OverwriteAttackConfig, parameter_overwrite_attack
from repro.data.alpaca import load_alpaca_sim
from repro.eval import EvaluationHarness
from repro.finetune.full import FineTuneConfig, fine_tune_full_precision
from repro.finetune.lora import LoRAConfig
from repro.models import collect_activation_stats
from repro.models.registry import get_pretrained_model_and_data
from repro.utils.logging import configure
from repro.utils.tables import Table, format_float


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=["smoke", "default"])
    parser.add_argument("--model", default="opt-1.3b-sim")
    args = parser.parse_args()
    configure()

    # ------------------------------------------------------------------
    # Vendor: compress, watermark, deploy.
    # ------------------------------------------------------------------
    print("=== Vendor: preparing the embedded model ===")
    base_model, dataset = get_pretrained_model_and_data(args.model, profile=args.profile)
    activations = collect_activation_stats(base_model, dataset.calibration)
    deployed = quantize_model(base_model, "smoothquant", bits=8, activations=activations)

    emmark = EmMark(EmMarkConfig.scaled_for_model(deployed))
    watermarked, vendor_key, report = emmark.insert_with_key(deployed, activations)
    harness = EvaluationHarness(dataset, num_task_examples=16)
    print(f"watermarked {vendor_key.total_bits} bits in {report.total_seconds:.3f}s; "
          f"quality: PPL {harness.evaluate(watermarked).perplexity:.2f} "
          f"(non-watermarked: {harness.evaluate(deployed).perplexity:.2f})")

    # ------------------------------------------------------------------
    # Pirate: copy the deployed weights and try to launder them.
    # ------------------------------------------------------------------
    print("\n=== Pirate: laundering the stolen copy ===")
    stolen = watermarked.clone()
    stolen = parameter_overwrite_attack(stolen, OverwriteAttackConfig(weights_per_layer=40, seed=13))
    lora_result = lora_finetune_attack(
        stolen, dataset.train, LoRAConfig(steps=8, batch_size=4, rank=2)
    )
    pirated = lora_result.attacked_model
    print(f"pirate overwrote 40 weights/layer and LoRA-fine-tuned "
          f"(quantized weights untouched: {lora_result.quantized_weights_unchanged})")

    # ------------------------------------------------------------------
    # Honest competitor: independent fine-tune + quantization.
    # ------------------------------------------------------------------
    print("\n=== Competitor: building an independent model ===")
    alpaca = load_alpaca_sim(dataset.vocabulary)
    competitor_full, _ = fine_tune_full_precision(
        base_model, alpaca.as_corpus(), FineTuneConfig(steps=60, batch_size=6)
    )
    competitor_stats = collect_activation_stats(competitor_full, dataset.calibration)
    competitor = quantize_model(competitor_full, "smoothquant", bits=8, activations=competitor_stats)
    print("competitor fine-tuned the base model on their own instruction data and re-quantized")

    # ------------------------------------------------------------------
    # Dispute resolution: the vendor runs extraction against every model.
    # ------------------------------------------------------------------
    print("\n=== Ownership verification ===")
    table = Table(
        title="Vendor key vs. candidate models",
        columns=["Candidate", "WER (%)", "False-claim probability", "Ownership asserted"],
    )
    for label, candidate in [
        ("Deployed (vendor's own)", watermarked),
        ("Pirated + laundered copy", pirated),
        ("Competitor's independent model", competitor),
        ("Original non-watermarked", deployed),
    ]:
        extraction = emmark.extract_with_key(candidate, vendor_key)
        table.add_row([
            label,
            format_float(extraction.wer_percent),
            f"{extraction.false_claim_probability:.2e}",
            emmark.verify(candidate, vendor_key),
        ])
    print(table.render())
    print("\nThe pirated copy is attributed to the vendor; independent models are not.")


if __name__ == "__main__":
    main()
