#!/usr/bin/env python3
"""Quickstart: watermark a quantized LLM and prove ownership.

The shortest end-to-end tour of the library:

1. load a pre-trained simulated LLM (OPT-2.7B-sim) and its evaluation data,
2. collect full-precision calibration activations,
3. quantize the model to INT4 with AWQ (the paper's low-bit setting),
4. insert an EmMark watermark and keep the owner's key,
5. extract the watermark from the deployed model (100% WER expected),
6. show that the same key does NOT verify against the non-watermarked model,
7. persist the key to disk and load it back.

Run with:  python examples/quickstart.py  [--profile default|smoke]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import EmMark, EmMarkConfig, WatermarkKey, quantize_model
from repro.eval import EvaluationHarness
from repro.models import collect_activation_stats
from repro.models.registry import get_pretrained_model_and_data
from repro.utils.logging import configure


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile",
        default="smoke",
        choices=["smoke", "default"],
        help="training profile of the sim model (smoke = fast, default = paper-quality)",
    )
    parser.add_argument("--model", default="opt-2.7b-sim", help="registry name of the sim model")
    args = parser.parse_args()
    configure()

    print(f"[1/7] loading pre-trained {args.model} ({args.profile} profile)")
    model, dataset = get_pretrained_model_and_data(args.model, profile=args.profile)

    print("[2/7] collecting full-precision calibration activations")
    activations = collect_activation_stats(model, dataset.calibration)

    print("[3/7] quantizing to INT4 with AWQ")
    quantized = quantize_model(model, "awq", bits=4, activations=activations)
    harness = EvaluationHarness(dataset, num_task_examples=16)
    baseline = harness.evaluate(quantized)
    print(f"      quantized model: PPL {baseline.perplexity:.2f}, "
          f"zero-shot acc {baseline.zero_shot_accuracy:.1f}%")

    print("[4/7] inserting the EmMark watermark")
    config = EmMarkConfig.scaled_for_model(quantized)
    emmark = EmMark(config)
    watermarked, key, report = emmark.insert_with_key(quantized, activations)
    print(f"      inserted {key.total_bits} bits "
          f"({config.bits_per_layer}/layer x {key.num_layers} layers) "
          f"in {report.total_seconds:.3f}s on the CPU")
    quality = harness.evaluate(watermarked)
    print(f"      watermarked model: PPL {quality.perplexity:.2f}, "
          f"zero-shot acc {quality.zero_shot_accuracy:.1f}%")

    print("[5/7] extracting the watermark from the deployed model")
    extraction = emmark.extract_with_key(watermarked, key)
    print(f"      {extraction.summary()}")

    print("[6/7] checking integrity against the non-watermarked model")
    innocent = emmark.extract_with_key(quantized, key)
    print(f"      non-watermarked model: WER {innocent.wer_percent:.2f}% "
          f"-> ownership asserted: {emmark.verify(quantized, key)}")

    print("[7/7] persisting and reloading the watermark key")
    with tempfile.TemporaryDirectory() as tmp:
        key_dir = Path(tmp) / "owner-key"
        key.save(key_dir)
        restored = WatermarkKey.load(key_dir)
        again = emmark.extract_with_key(watermarked, restored)
        print(f"      reloaded key extracts {again.wer_percent:.1f}% WER "
              f"({key_dir.name}: watermark_key.json + watermark_key.npz)")

    print("\nDone. The owner's key (signature, seed, reference weights, activations, "
          "alpha/beta) is everything needed to later prove ownership in court.")


if __name__ == "__main__":
    main()
