"""Pytest root conftest.

Makes the test and benchmark suites runnable straight from a source checkout:
if the ``repro`` package has not been installed (for example in an offline
environment where editable installs are awkward), the ``src`` layout directory
is added to ``sys.path`` so that ``import repro`` resolves to the checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

# Lock-order witness (opt-in: --lock-witness / REPRO_LOCK_WITNESS=1).  The
# sys.path insertion above runs at import, before pytest reads this attribute,
# so the plugin module resolves from the source checkout.
pytest_plugins = ["repro.analysis.pytest_plugin"]
