"""Tests for the LRU plan cache and the plan fingerprinting."""

import numpy as np
import pytest

from repro.core.config import EmMarkConfig
from repro.engine.cache import PlanCache
from repro.engine.plan import LocationPlan, plan_fingerprint
from repro.quant.base import QuantizationGrid, QuantizedLinear


def make_plan(name: str) -> LocationPlan:
    return LocationPlan(
        layer_name=name,
        fingerprint=name,
        candidate_indices=np.arange(8),
        locations=np.arange(4),
        pool_size=8,
        num_weights=64,
    )


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", make_plan("a"))
        assert cache.get("a").layer_name == "a"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_get_or_compute_runs_factory_once(self):
        cache = PlanCache(max_entries=4)
        calls = []

        def factory():
            calls.append(1)
            return make_plan("a")

        first = cache.get_or_compute("a", factory)
        second = cache.get_or_compute("a", factory)
        assert first is second
        assert len(calls) == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(max_entries=2)
        cache.put("a", make_plan("a"))
        cache.put("b", make_plan("b"))
        # Touch "a" so "b" becomes the least recently used entry.
        assert cache.get("a") is not None
        cache.put("c", make_plan("c"))
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_capacity_bound_holds(self):
        cache = PlanCache(max_entries=3)
        for index in range(10):
            cache.put(str(index), make_plan(str(index)))
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_stats_snapshot_and_delta(self):
        cache = PlanCache(max_entries=4)
        cache.get("missing")
        before = cache.stats()
        cache.put("a", make_plan("a"))
        cache.get("a")
        cache.get("a")
        delta = cache.stats().delta(before)
        assert delta.hits == 2
        assert delta.misses == 0
        assert before.hit_rate == 0.0
        assert cache.stats().hit_rate == pytest.approx(2 / 3)

    def test_clear_preserves_counters(self):
        cache = PlanCache(max_entries=4)
        cache.put("a", make_plan("a"))
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)


def fingerprint_of(layer, activations, config, bits_needed=4):
    return plan_fingerprint(
        layer_name=layer.name,
        grid_bits=layer.grid.bits,
        weight_int=layer.weight_int,
        outlier_columns=layer.outlier_columns,
        channel_activations=activations,
        alpha=config.alpha,
        beta=config.beta,
        seed=config.seed,
        exclude_saturated=config.exclude_saturated,
        pool_size=config.candidate_pool_size(layer.num_weights),
        bits_needed=bits_needed,
    )


class TestPlanFingerprint:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.weight = rng.integers(-6, 7, size=(8, 8))
        self.layer = QuantizedLinear(
            name="probe",
            weight_int=self.weight,
            scale=np.ones((8, 1)),
            grid=QuantizationGrid(4),
        )
        self.activations = rng.random(8) + 0.5
        self.config = EmMarkConfig(bits_per_layer=4)

    def test_deterministic(self):
        assert fingerprint_of(self.layer, self.activations, self.config) == fingerprint_of(
            self.layer, self.activations, self.config
        )

    def test_sensitive_to_every_scoring_input(self):
        base = fingerprint_of(self.layer, self.activations, self.config)
        assert base != fingerprint_of(
            self.layer, self.activations, self.config.with_overrides(seed=101)
        )
        assert base != fingerprint_of(
            self.layer, self.activations, self.config.with_overrides(alpha=0.7)
        )
        assert base != fingerprint_of(
            self.layer, self.activations, self.config.with_overrides(exclude_saturated=False)
        )
        assert base != fingerprint_of(self.layer, self.activations, self.config, bits_needed=5)
        assert base != fingerprint_of(self.layer, self.activations * 1.01, self.config)
        perturbed = QuantizedLinear(
            name="probe",
            weight_int=np.where(self.weight == 1, 2, self.weight),
            scale=np.ones((8, 1)),
            grid=QuantizationGrid(4),
        )
        assert base != fingerprint_of(perturbed, self.activations, self.config)
        renamed = QuantizedLinear(
            name="probe2",
            weight_int=self.weight,
            scale=np.ones((8, 1)),
            grid=QuantizationGrid(4),
        )
        assert base != fingerprint_of(renamed, self.activations, self.config)

    def test_insensitive_to_scales_and_signature_seed(self):
        """Quantization scales and signature seeds cannot change locations."""
        base = fingerprint_of(self.layer, self.activations, self.config)
        rescaled = QuantizedLinear(
            name="probe",
            weight_int=self.weight,
            scale=np.full((8, 1), 3.5),
            grid=QuantizationGrid(4),
        )
        assert base == fingerprint_of(rescaled, self.activations, self.config)
        assert base == fingerprint_of(
            self.layer, self.activations, self.config.with_overrides(signature_seed=999)
        )
