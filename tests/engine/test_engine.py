"""Tests for the unified watermark engine.

Covers the ISSUE-1 acceptance points: cache-hit determinism (locations are
identical cold / warm / parallel), zero rescoring on warm-cache extraction,
plan-cache eviction behaviour inside the engine, and the batch serving APIs
(``verify_fleet`` over mixed suspects, ``insert_batch``).
"""

import numpy as np
import pytest

from repro.attacks.overwrite import OverwriteAttackConfig, parameter_overwrite_attack
from repro.core.config import EmMarkConfig
from repro.core.extraction import extract_watermark, reproduce_locations
from repro.core.insertion import insert_watermark
from repro.engine import EngineConfig, PlanCache, WatermarkEngine, get_default_engine
from repro.quant.api import quantize_model


@pytest.fixture()
def config(quantized_awq4):
    return EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8)


def serial_engine() -> WatermarkEngine:
    return WatermarkEngine(EngineConfig(max_workers=1))


def parallel_engine(workers: int = 4) -> WatermarkEngine:
    return WatermarkEngine(EngineConfig(max_workers=workers))


class TestEngineConfig:
    def test_explicit_workers_resolved(self):
        assert EngineConfig(max_workers=3).resolved_workers() == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "5")
        assert EngineConfig().resolved_workers() == 5

    def test_invalid_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_WORKERS", "many")
        assert EngineConfig().resolved_workers() >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(max_workers=0)
        with pytest.raises(ValueError):
            EngineConfig(plan_cache_entries=0)


class TestDeterminism:
    def test_locations_identical_cold_warm_and_parallel(
        self, quantized_awq4, activation_stats, config
    ):
        cold = serial_engine()
        _, key, _ = cold.insert(quantized_awq4, activation_stats, config=config)
        cold_locations = cold.reproduce_locations(key)          # warm lookup
        fresh = serial_engine()
        fresh_locations = fresh.reproduce_locations(key)        # cold recompute
        threaded = parallel_engine()
        parallel_locations = threaded.reproduce_locations(key)  # cold, parallel
        for name in key.layer_names:
            np.testing.assert_array_equal(cold_locations[name], fresh_locations[name])
            np.testing.assert_array_equal(cold_locations[name], parallel_locations[name])

    def test_serial_and_parallel_insertion_agree(
        self, quantized_awq4, activation_stats, config
    ):
        serial_model, _, _ = serial_engine().insert(
            quantized_awq4, activation_stats, config=config
        )
        parallel_model, _, _ = parallel_engine().insert(
            quantized_awq4, activation_stats, config=config
        )
        for name in serial_model.layer_names():
            np.testing.assert_array_equal(
                serial_model.get_layer(name).weight_int,
                parallel_model.get_layer(name).weight_int,
            )

    def test_eviction_does_not_change_results(
        self, quantized_awq4, activation_stats, config
    ):
        """A pathologically small cache thrashes but stays correct."""
        tiny = WatermarkEngine(
            EngineConfig(max_workers=1), cache=PlanCache(max_entries=1)
        )
        watermarked, key, _ = tiny.insert(quantized_awq4, activation_stats, config=config)
        result = tiny.extract(watermarked, key)
        assert result.wer_percent == 100.0
        assert tiny.cache.evictions > 0

    def test_functional_api_accepts_engine(self, quantized_awq4, activation_stats, config):
        engine = serial_engine()
        watermarked, key, _ = insert_watermark(
            quantized_awq4, activation_stats, config=config, engine=engine
        )
        assert extract_watermark(watermarked, key, engine=engine).wer_percent == 100.0
        locations = reproduce_locations(key, engine=engine)
        assert set(locations) == set(key.layer_names)


class TestWarmCache:
    def test_extraction_after_insertion_performs_zero_rescoring(
        self, quantized_awq4, activation_stats, config
    ):
        engine = parallel_engine()
        watermarked, key, report = engine.insert(
            quantized_awq4, activation_stats, config=config
        )
        assert report.cache_misses == report.num_layers  # cold insertion scores once
        before = engine.cache_info()
        result = engine.extract(watermarked, key)
        traffic = engine.cache_info().delta(before)
        assert result.wer_percent == 100.0
        assert traffic.misses == 0
        assert traffic.hits == len(key.layer_names)

    def test_repeat_verification_stays_warm(self, quantized_awq4, activation_stats, config):
        engine = serial_engine()
        watermarked, key, _ = engine.insert(quantized_awq4, activation_stats, config=config)
        assert engine.verify(watermarked, key)
        before = engine.cache_info()
        # A previously-verified key: every later screening is pure lookups.
        assert engine.verify(watermarked, key)
        assert not engine.verify(quantized_awq4, key)
        assert engine.cache_info().delta(before).misses == 0

    def test_repeated_insertion_hits_cache(self, quantized_awq4, activation_stats, config):
        engine = serial_engine()
        _, _, first = engine.insert(quantized_awq4, activation_stats, config=config)
        _, _, second = engine.insert(quantized_awq4, activation_stats, config=config)
        assert first.cache_misses == first.num_layers
        assert second.cache_misses == 0
        assert second.cache_hits == second.num_layers

    def test_config_change_invalidates_plans(self, quantized_awq4, activation_stats, config):
        engine = serial_engine()
        engine.insert(quantized_awq4, activation_stats, config=config)
        before = engine.cache_info()
        engine.insert(
            quantized_awq4, activation_stats, config=config.with_overrides(seed=config.seed + 1)
        )
        assert engine.cache_info().delta(before).misses == len(quantized_awq4.layers)


class TestInsertionReportTiming:
    def test_wall_clock_and_cpu_seconds_reported(
        self, quantized_awq4, activation_stats, config
    ):
        engine = parallel_engine()
        _, _, report = engine.insert(quantized_awq4, activation_stats, config=config)
        assert report.wall_clock_seconds > 0
        assert report.total_seconds == pytest.approx(sum(report.per_layer_seconds))
        assert report.cpu_seconds == report.total_seconds
        assert report.parallel_workers == 4
        assert report.parallel_speedup > 0


class TestVerifyFleet:
    @pytest.fixture()
    def fleet(self, quantized_awq4, activation_stats, config):
        engine = parallel_engine()
        watermarked, key, _ = engine.insert(quantized_awq4, activation_stats, config=config)
        attacked = parameter_overwrite_attack(
            watermarked, OverwriteAttackConfig(weights_per_layer=3, style="resample", seed=1)
        )
        return engine, watermarked, attacked, key

    def test_mixed_suspects(self, fleet, quantized_awq4, trained_model):
        engine, watermarked, attacked, key = fleet
        # An unrelated deployment: same architecture, independently quantized
        # with a different framework, never watermarked.
        unrelated = quantize_model(trained_model, "rtn", bits=8)
        report = engine.verify_fleet(
            {
                "watermarked": watermarked,
                "original": quantized_awq4,
                "attacked": attacked,
                "unrelated": unrelated,
            },
            {"owner": key},
        )
        matrix = report.ownership_matrix()
        assert matrix["watermarked"]["owner"] is True
        assert matrix["original"]["owner"] is False
        assert matrix["unrelated"]["owner"] is False
        # A light overwrite attack cannot dislodge the watermark (Figure 2a).
        assert matrix["attacked"]["owner"] is True
        assert report.num_pairs == 4
        assert {pair.suspect_id for pair in report.owned_pairs()} == {"watermarked", "attacked"}

    def test_fleet_scores_each_key_once(self, fleet, quantized_awq4):
        engine, watermarked, attacked, key = fleet
        before = engine.cache_info()
        report = engine.verify_fleet(
            [watermarked, quantized_awq4, attacked], {"owner": key}
        )
        traffic = engine.cache_info().delta(before)
        # Insertion already planned this key: the whole sweep re-scores
        # nothing, and the key's locations are reproduced exactly once (one
        # cache lookup per layer) no matter how many suspects are screened.
        assert traffic.misses == 0
        assert traffic.hits == len(key.layer_names)
        assert report.cache_misses == 0

    def test_sequence_suspects_are_auto_named(self, fleet):
        engine, watermarked, _, key = fleet
        report = engine.verify_fleet([watermarked], [key])
        assert report.pairs[0].suspect_id == "suspect-0"
        assert report.pairs[0].key_id == "key-0"
        assert report.pairs[0].summary()

    def test_report_evidence_is_retained(self, fleet):
        engine, watermarked, _, key = fleet
        report = engine.verify_fleet({"wm": watermarked}, {"owner": key})
        pair = report.for_suspect("wm")[0]
        assert pair.total_bits == key.total_bits
        assert pair.matched_bits == key.total_bits
        assert pair.false_claim_probability < 1e-20
        assert report.for_key("owner") == report.pairs
        assert "wm" in report.summary()


class TestInsertBatch:
    def test_batch_round_trip(self, quantized_awq4, activation_stats, config):
        engine = parallel_engine()
        result = engine.insert_batch(
            {"a": quantized_awq4.clone(), "b": quantized_awq4.clone()},
            activation_stats,
            config=config,
        )
        assert result.num_models == 2
        assert result.total_bits == 2 * config.total_bits(len(quantized_awq4.layers))
        for model_id, key in result.keys().items():
            extraction = engine.extract(result.models()[model_id], key)
            assert extraction.wer_percent == 100.0

    def test_identical_models_share_plans(self, quantized_awq4, activation_stats, config):
        engine = serial_engine()
        result = engine.insert_batch(
            [quantized_awq4.clone(), quantized_awq4.clone()],
            activation_stats,
            config=config,
        )
        reports = [item.report for item in result.items]
        assert reports[0].cache_misses == reports[0].num_layers
        assert reports[1].cache_misses == 0

    def test_activation_sequence_must_align(self, quantized_awq4, activation_stats):
        engine = serial_engine()
        with pytest.raises(ValueError):
            engine.insert_batch(
                [quantized_awq4.clone(), quantized_awq4.clone()],
                [activation_stats],
            )


class TestDefaultEngine:
    def test_functional_api_routes_through_default_engine(
        self, quantized_awq4, activation_stats, config
    ):
        engine = get_default_engine()
        watermarked, key, _ = insert_watermark(quantized_awq4, activation_stats, config=config)
        before = engine.cache_info()
        result = extract_watermark(watermarked, key)
        assert result.wer_percent == 100.0
        assert engine.cache_info().delta(before).misses == 0
