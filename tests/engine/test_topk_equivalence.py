"""Property tests: the fused argpartition top-k equals a full stable argsort.

The engine's ranking kernel (:func:`repro.core.scoring.topk_argsort_stable`)
must reproduce ``np.argsort(values, kind="stable")[:k]`` exactly — including
tie-breaking by original index — because the watermark locations derived from
the ranking are part of the ownership proof.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.scoring import (
    fused_scores,
    select_candidates,
    topk_argsort_stable,
)
from repro.quant.base import QuantizationGrid, QuantizedLinear


def reference_topk(values: np.ndarray, k: int) -> np.ndarray:
    """The seed implementation: full stable argsort, truncated."""
    return np.argsort(values, kind="stable")[:k]


@settings(max_examples=200, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    size=st.integers(1, 200),
    distinct=st.integers(1, 8),
    k=st.integers(1, 220),
)
def test_topk_matches_stable_argsort_with_heavy_ties(seed, size, distinct, k):
    """Few distinct values force ties at every pool boundary."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, distinct, size=size).astype(np.float64)
    np.testing.assert_array_equal(
        topk_argsort_stable(values, k), reference_topk(values, min(k, size))
    )


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), size=st.integers(1, 300), k=st.integers(1, 300))
def test_topk_matches_stable_argsort_continuous(seed, size, k):
    rng = np.random.default_rng(seed)
    values = rng.random(size)
    np.testing.assert_array_equal(
        topk_argsort_stable(values, k), reference_topk(values, min(k, size))
    )


def make_layer(rng, rows, cols, bits=4):
    weight = rng.integers(-(2 ** (bits - 1) - 1), 2 ** (bits - 1), size=(rows, cols))
    return QuantizedLinear(
        name="probe",
        weight_int=weight,
        scale=np.ones((rows, 1)),
        grid=QuantizationGrid(bits),
    )


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    rows=st.integers(2, 10),
    cols=st.integers(2, 10),
    pool=st.integers(1, 40),
    alpha=st.floats(0.0, 2.0),
    beta=st.floats(0.0, 2.0),
)
def test_select_candidates_matches_argsort_reference(seed, rows, cols, pool, alpha, beta):
    """End-to-end: the candidate pool equals the seed's full-argsort pool.

    Integer weights make heavy score ties the norm, exercising the
    tie-breaking path of the partition-based kernel.
    """
    if alpha == 0 and beta == 0:
        alpha = 1.0
    rng = np.random.default_rng(seed)
    layer = make_layer(rng, rows, cols)
    activations = rng.random(cols) + 0.1
    flat_scores, flat_valid = fused_scores(layer, activations, alpha, beta)
    finite = np.flatnonzero(flat_valid)
    if finite.size == 0:
        return  # select_candidates raises for fully excluded layers (tested elsewhere)
    expected_pool = min(pool, finite.size)
    reference = finite[reference_topk(flat_scores[finite], expected_pool)]
    result = select_candidates(layer, activations, alpha, beta, pool_size=pool)
    np.testing.assert_array_equal(result.candidate_indices, reference)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    rows=st.integers(2, 8),
    cols=st.integers(2, 8),
    pool=st.integers(1, 30),
)
def test_select_candidates_jitter_path_matches_reference(seed, rows, cols, pool):
    """The random tie-breaking (jitter) path is argsort-equivalent too.

    Both the kernel and the reference consume an identical RNG stream, so the
    jittered rankings must coincide exactly.
    """
    rng = np.random.default_rng(seed)
    layer = make_layer(rng, rows, cols)
    activations = rng.random(cols) + 0.1
    flat_scores, flat_valid = fused_scores(layer, activations, 0.5, 0.5)
    finite = np.flatnonzero(flat_valid)
    if finite.size == 0:
        return
    jitter_seed = 1234 + seed % 1000
    reference_rng = np.random.default_rng(jitter_seed)
    jittered = flat_scores[finite] + reference_rng.random(finite.size) * 1e-12
    expected_pool = min(pool, finite.size)
    reference = finite[reference_topk(jittered, expected_pool)]
    result = select_candidates(
        layer, activations, 0.5, 0.5, pool_size=pool, rng=np.random.default_rng(jitter_seed)
    )
    np.testing.assert_array_equal(result.candidate_indices, reference)
