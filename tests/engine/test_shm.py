"""Shared-memory arena guarantees: zero-copy restore, write guards, unlink-once.

The process-pool gauntlet's memory model rests on :mod:`repro.engine.shm`:
models and keys published once, restored in workers as read-only views over
the same pages, and the segment unlinked exactly once no matter how the run
ends.  These tests pin each of those properties in-process (the cross-process
behaviour is covered by ``tests/robustness/test_procpool.py``).
"""

from __future__ import annotations

import glob
import pickle

import numpy as np
import pytest

from repro.core.config import EmMarkConfig
from repro.engine import WatermarkEngine
from repro.engine.shm import (
    SHM_NAME_PREFIX,
    SharedArena,
    share_key,
    share_model,
)


def _stale_segments():
    return glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}*")


@pytest.fixture(scope="module")
def watermarked_pair(quantized_awq4, activation_stats):
    engine = WatermarkEngine()
    config = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8)
    model, key, _ = engine.insert(quantized_awq4, activation_stats, config=config)
    return model, key, engine


class TestModelRoundTrip:
    def test_restored_model_is_bit_identical_and_zero_copy(self, watermarked_pair):
        model, _, _ = watermarked_pair
        with SharedArena() as arena:
            handle = share_model(arena, model, "m")
            arena_handle = arena.seal()
            view = arena_handle.attach()
            restored = handle.restore(view)
            assert restored.layer_names() == model.layer_names()
            assert restored.method == model.method and restored.bits == model.bits
            for name in model.layers:
                original = model.layers[name]
                mirrored = restored.layers[name]
                np.testing.assert_array_equal(mirrored.weight_int, original.weight_int)
                np.testing.assert_array_equal(mirrored.scale, original.scale)
                # Zero-copy: the restored array is a view over the shared
                # block, not a copy of it.
                assert np.shares_memory(mirrored.weight_int, view.array(f"m/layer/{name}/weight_int"))
            for state_key, value in model.full_precision_state.items():
                np.testing.assert_array_equal(
                    restored.full_precision_state[state_key], value
                )
            view.close()

    def test_restored_model_is_frozen_but_clonable(self, watermarked_pair):
        model, _, _ = watermarked_pair
        with SharedArena() as arena:
            handle = share_model(arena, model, "m")
            view = arena.seal().attach()
            restored = handle.restore(view)
            layer = next(iter(restored.layers.values()))
            with pytest.raises(ValueError, match="read-only"):
                layer.add_to_weights(np.array([0]), np.array([1]))
            clone = restored.clone()
            cloned_layer = next(iter(clone.layers.values()))
            cloned_layer.add_to_weights(np.array([0]), np.array([1]))  # writable again
            view.close()

    def test_handles_survive_pickling(self, watermarked_pair):
        model, _, _ = watermarked_pair
        with SharedArena() as arena:
            handle = share_model(arena, model, "m")
            arena_handle = arena.seal()
            arena_handle2, handle2 = pickle.loads(pickle.dumps((arena_handle, handle)))
            view = arena_handle2.attach()
            restored = handle2.restore(view)
            name = model.layer_names()[0]
            np.testing.assert_array_equal(
                restored.layers[name].weight_int, model.layers[name].weight_int
            )
            view.close()

    def test_materialize_works_on_frozen_views(self, watermarked_pair):
        model, _, _ = watermarked_pair
        with SharedArena() as arena:
            handle = share_model(arena, model, "m")
            view = arena.seal().attach()
            restored = handle.restore(view)
            materialized = restored.materialize()
            reference = model.materialize()
            batch = np.arange(8, dtype=np.int64).reshape(1, -1)
            np.testing.assert_allclose(
                materialized.forward(batch), reference.forward(batch)
            )
            view.close()


class TestKeyRoundTrip:
    def test_restored_key_reproduces_identical_locations(self, watermarked_pair):
        model, key, engine = watermarked_pair
        with SharedArena() as arena:
            handle = share_key(arena, key, "k")
            view = arena.seal().attach()
            restored = handle.restore(view)
            assert restored.fingerprint() == key.fingerprint()
            original_locations = engine.reproduce_locations(key)
            restored_locations = WatermarkEngine().reproduce_locations(restored)
            assert set(original_locations) == set(restored_locations)
            for name in original_locations:
                np.testing.assert_array_equal(
                    restored_locations[name], original_locations[name]
                )
            # And the verdict machinery accepts the restored key wholesale.
            assert WatermarkEngine().verify(model, restored)
            view.close()

    def test_restored_key_arrays_are_views(self, watermarked_pair):
        _, key, _ = watermarked_pair
        with SharedArena() as arena:
            handle = share_key(arena, key, "k")
            view = arena.seal().attach()
            restored = handle.restore(view)
            name = key.layer_names[0]
            assert np.shares_memory(
                restored.reference_weights[name], view.array(f"k/weights/{name}")
            )
            assert not restored.reference_weights[name].flags.writeable
            view.close()


class TestArenaLifecycle:
    def test_segment_unlinked_exactly_once(self, watermarked_pair):
        model, _, _ = watermarked_pair
        arena = SharedArena()
        share_model(arena, model, "m")
        arena.seal()
        assert glob.glob(f"/dev/shm/{arena.name}")
        arena.close()
        assert not glob.glob(f"/dev/shm/{arena.name}")
        arena.close()  # idempotent — no error, nothing to double-unlink

    def test_no_stale_segments_after_context_exit(self, watermarked_pair):
        model, _, _ = watermarked_pair
        with SharedArena() as arena:
            share_model(arena, model, "m")
            arena.seal()
        assert not _stale_segments()

    def test_atexit_sweep_collects_leaked_arena(self, watermarked_pair):
        from repro.engine import shm as shm_module

        model, _, _ = watermarked_pair
        arena = SharedArena()
        share_model(arena, model, "m")
        arena.seal()
        assert glob.glob(f"/dev/shm/{arena.name}")
        # Simulate the owner dying without close(): only the sweep runs.
        shm_module._sweep_live_segments()
        assert not glob.glob(f"/dev/shm/{arena.name}")
        arena.close()  # still safe afterwards

    def test_stage_after_seal_rejected(self):
        arena = SharedArena()
        arena.stage("a", np.arange(4))
        arena.seal()
        try:
            with pytest.raises(RuntimeError, match="sealed"):
                arena.stage("b", np.arange(4))
        finally:
            arena.close()

    def test_duplicate_name_rejected(self):
        arena = SharedArena()
        arena.stage("a", np.arange(4))
        with pytest.raises(ValueError, match="staged twice"):
            arena.stage("a", np.arange(4))
        arena.close()

    def test_unknown_array_name_rejected(self):
        arena = SharedArena()
        arena.stage("a", np.arange(4))
        view = arena.seal().attach()
        try:
            with pytest.raises(KeyError, match="no array named"):
                view.array("missing")
        finally:
            view.close()
            arena.close()
