"""Multi-owner watermark coexistence on the engine's slot-allocation layer.

The acceptance bar of the multi-owner refactor:

* two owners inserted into the same RTN-INT8 model each extract at 100% WER,
* decisions are bit-identical to a single-owner insertion when the
  occupancy set is empty, and
* every owner verifies independently through extraction and the fleet
  verification session, from the key material alone.
"""

import numpy as np
import pytest

from repro.core.config import EmMarkConfig
from repro.core.insertion import insert_watermark, insert_watermark_multi
from repro.core.keys import WatermarkKey
from repro.engine import SlotAllocator, WatermarkEngine
from repro.quant.api import quantize_model


@pytest.fixture(scope="module")
def rtn_int8(trained_model, activation_stats):
    """The RTN-INT8 base named by the acceptance criteria."""
    return quantize_model(trained_model, "rtn", bits=8, activations=activation_stats)


@pytest.fixture(scope="module")
def multi_result(rtn_int8, activation_stats):
    """Two owners co-resident in one RTN-INT8 model."""
    return WatermarkEngine().insert_multi(rtn_int8, activation_stats, 2)


class TestTwoOwnersOnRtnInt8:
    def test_both_owners_extract_at_100_percent(self, multi_result):
        engine = WatermarkEngine()
        for owner_id, key in multi_result.keys().items():
            result = engine.extract(multi_result.model, key, strict_layout=False)
            assert result.wer_percent == 100.0, owner_id
            assert result.false_claim_probability < 1e-6

    def test_slot_pools_are_disjoint(self, multi_result):
        engine = WatermarkEngine()
        keys = multi_result.keys()
        locations = {oid: engine.reproduce_locations(key) for oid, key in keys.items()}
        for name in multi_result.model.layer_names():
            overlap = np.intersect1d(
                locations["owner-0"][name], locations["owner-1"][name]
            )
            assert overlap.size == 0, name

    def test_allocator_accounts_for_every_bit(self, multi_result):
        total_bits = sum(item.report.total_bits for item in multi_result.items)
        assert multi_result.allocator.total_slots == total_bits
        assert set(multi_result.allocator.owners()) == {"owner-0", "owner-1"}

    def test_keys_record_co_residency(self, multi_result):
        keys = multi_result.keys()
        assert keys["owner-0"].co_residents == ["owner-1"]
        assert keys["owner-1"].co_residents == ["owner-0"]
        # Owner-0 planned on a virgin model; owner-1 under owner-0's slots.
        assert keys["owner-0"].occupied_slots == {}
        occupied = keys["owner-1"].occupied_slots
        assert sum(len(v) for v in occupied.values()) == keys["owner-0"].total_bits

    def test_fleet_session_verifies_each_owner_independently(self, multi_result):
        report = WatermarkEngine().verify_fleet(
            {"deployment": multi_result.model}, multi_result.keys()
        )
        assert report.ownership_matrix() == {
            "deployment": {"owner-0": True, "owner-1": True}
        }
        for pair in report.pairs:
            assert pair.wer_percent == 100.0

    def test_key_fingerprints_are_distinct(self, multi_result):
        ids = [key.fingerprint() for key in multi_result.keys().values()]
        assert len(set(ids)) == 2

    def test_keys_survive_save_load_with_occupancy(self, multi_result, tmp_path):
        key = multi_result.key_for("owner-1")
        key.save(tmp_path)
        loaded = WatermarkKey.load(tmp_path)
        assert loaded.fingerprint() == key.fingerprint()
        assert loaded.occupied_slots == key.occupied_slots
        assert loaded.co_residents == key.co_residents
        result = WatermarkEngine().extract(multi_result.model, loaded, strict_layout=False)
        assert result.wer_percent == 100.0


class TestEmptyOccupancyBitIdentical:
    def test_insert_with_empty_allocator_matches_plain_insert(
        self, rtn_int8, activation_stats
    ):
        config = EmMarkConfig.scaled_for_model(rtn_int8)
        plain_model, plain_key, _ = WatermarkEngine().insert(
            rtn_int8, activation_stats, config=config
        )
        allocator = SlotAllocator()
        occupied_model, occupied_key, _ = WatermarkEngine().insert(
            rtn_int8, activation_stats, config=config, occupied=allocator, owner="solo"
        )
        for name in rtn_int8.layer_names():
            np.testing.assert_array_equal(
                plain_model.get_layer(name).weight_int,
                occupied_model.get_layer(name).weight_int,
            )
        assert plain_key.fingerprint() == occupied_key.fingerprint()
        assert occupied_key.occupied_slots == {}

    def test_owner_zero_of_multi_matches_single_owner_plan(
        self, rtn_int8, activation_stats, multi_result
    ):
        config = EmMarkConfig.scaled_for_model(rtn_int8)
        _, single_key, _ = WatermarkEngine().insert(
            rtn_int8, activation_stats, config=config
        )
        engine = WatermarkEngine()
        single = engine.reproduce_locations(single_key)
        first = engine.reproduce_locations(multi_result.key_for("owner-0"))
        for name in single:
            np.testing.assert_array_equal(single[name], first[name])

    def test_empty_occupancy_shares_cache_entries_with_plain_plans(
        self, rtn_int8, activation_stats
    ):
        # One engine: a plain insert warms the cache; re-planning through an
        # empty allocator must be pure hits (identical fingerprints).
        engine = WatermarkEngine()
        config = EmMarkConfig.scaled_for_model(rtn_int8)
        engine.insert(rtn_int8, activation_stats, config=config)
        before = engine.cache_info()
        engine.insert(
            rtn_int8, activation_stats, config=config, occupied=SlotAllocator()
        )
        traffic = engine.cache_info().delta(before)
        assert traffic.misses == 0
        assert traffic.hits == rtn_int8.num_quantization_layers


class TestOccupancyPlanning:
    def test_plain_mapping_accepted_as_occupancy(self, rtn_int8, activation_stats):
        engine = WatermarkEngine()
        config = EmMarkConfig.scaled_for_model(rtn_int8)
        _, first_key, _ = engine.insert(rtn_int8, activation_stats, config=config)
        occupied = {
            name: locs for name, locs in engine.reproduce_locations(first_key).items()
        }
        watermarked, second_key, _ = engine.insert(
            rtn_int8, activation_stats, config=config, occupied=occupied
        )
        second = engine.reproduce_locations(second_key)
        for name, taken in occupied.items():
            assert np.intersect1d(second[name], taken).size == 0

    def test_occupied_plans_rerank_to_the_next_best_free_slots(
        self, rtn_int8, activation_stats
    ):
        # The re-ranked pool must be the best *free* positions: every
        # occupied candidate is replaced by the next position in score order,
        # never by an arbitrary one.
        engine = WatermarkEngine()
        config = EmMarkConfig.scaled_for_model(rtn_int8)
        layer = next(rtn_int8.iter_layers())
        saliency = activation_stats.channel_saliency(layer.name)
        free = engine.plan_for_layer(layer, saliency, config.bits_per_layer, config)
        occupied = free.candidate_indices[:5]
        blocked = engine.plan_for_layer(
            layer, saliency, config.bits_per_layer, config, occupied=occupied
        )
        assert np.intersect1d(blocked.candidate_indices, occupied).size == 0
        # The surviving prefix of the virgin ranking is preserved in order.
        survivors = [c for c in free.candidate_indices if c not in set(occupied)]
        np.testing.assert_array_equal(
            blocked.candidate_indices[: len(survivors)], survivors
        )

    def test_insufficient_free_candidates_raise(self, rtn_int8, activation_stats):
        engine = WatermarkEngine()
        config = EmMarkConfig.scaled_for_model(rtn_int8)
        layer = next(rtn_int8.iter_layers())
        saliency = activation_stats.channel_saliency(layer.name)
        # Occupy every eligible position: planning must fail loudly.
        everything = np.arange(layer.num_weights, dtype=np.int64)
        with pytest.raises(ValueError, match="candidate positions"):
            engine.plan_for_layer(
                layer, saliency, config.bits_per_layer, config, occupied=everything
            )

    def test_functional_facades_roundtrip(self, rtn_int8, activation_stats):
        result = insert_watermark_multi(
            rtn_int8, activation_stats, 3, engine=WatermarkEngine()
        )
        assert result.num_owners == 3
        engine = WatermarkEngine()
        for key in result.keys().values():
            extraction = engine.extract(result.model, key, strict_layout=False)
            assert extraction.wer_percent == 100.0
        allocator = SlotAllocator()
        _, key, _ = insert_watermark(
            rtn_int8, activation_stats, engine=WatermarkEngine(),
            occupied=allocator, owner="facade",
        )
        assert allocator.owners() == ["facade"]
        assert allocator.total_slots == key.total_bits

    def test_insert_multi_validates_owner_arguments(self, rtn_int8, activation_stats):
        engine = WatermarkEngine()
        with pytest.raises(ValueError, match="owner count"):
            engine.insert_multi(rtn_int8, activation_stats, 0)
        with pytest.raises(ValueError, match="at least one owner"):
            engine.insert_multi(rtn_int8, activation_stats, [])

    def test_resuming_allocation_from_issued_keys(self, rtn_int8, activation_stats):
        # A later custody stage: rebuild the occupancy from the shipped keys
        # alone, then add a third owner without disturbing the first two.
        engine = WatermarkEngine()
        result = engine.insert_multi(rtn_int8, activation_stats, 2)
        allocator = SlotAllocator.from_keys(result.keys(), engine=engine)
        base = EmMarkConfig.scaled_for_model(rtn_int8)
        from dataclasses import replace

        third_config = replace(base, seed=base.seed + 99, signature_seed=base.signature_seed + 99)
        model3, key3, _ = engine.insert(
            result.model, activation_stats, config=third_config,
            occupied=allocator, owner="owner-2",
        )
        verifier = WatermarkEngine()
        for key in [*result.keys().values(), key3]:
            assert verifier.extract(model3, key, strict_layout=False).wer_percent == 100.0
