"""SlotAllocator: claims, collisions, serialization, reconstruction."""

import threading

import numpy as np
import pytest

from repro.engine import SlotAllocator, SlotCollisionError, WatermarkEngine


class TestClaims:
    def test_empty_allocator(self):
        allocator = SlotAllocator()
        assert allocator.is_empty
        assert allocator.total_slots == 0
        assert len(allocator) == 0
        assert allocator.occupied_for("layer") is None
        assert allocator.snapshot() == {}

    def test_claim_and_read_back_sorted(self):
        allocator = SlotAllocator()
        allocator.claim("blocks.0.attn.q_proj", [5, 1, 9], owner="acme")
        occupied = allocator.occupied_for("blocks.0.attn.q_proj")
        np.testing.assert_array_equal(occupied, [1, 5, 9])
        assert allocator.total_slots == 3
        assert allocator.owners() == ["acme"]
        assert allocator.holder_of("blocks.0.attn.q_proj", 5) == "acme"
        assert allocator.holder_of("blocks.0.attn.q_proj", 2) is None

    def test_claims_accept_arrays_and_iterables(self):
        allocator = SlotAllocator()
        allocator.claim("a", np.asarray([3, 1]))
        allocator.claim("a", (x for x in [7, 2]))
        np.testing.assert_array_equal(allocator.occupied_for("a"), [1, 2, 3, 7])

    def test_collision_raises_with_holder(self):
        allocator = SlotAllocator()
        allocator.claim("layer", [1, 2, 3], owner="acme")
        with pytest.raises(SlotCollisionError, match="held by 'acme'"):
            allocator.claim("layer", [3, 4], owner="globex")
        # The failed claim must not have partially landed.
        assert allocator.holder_of("layer", 4) is None

    def test_double_claim_by_same_owner_is_still_an_error(self):
        allocator = SlotAllocator()
        allocator.claim("layer", [1], owner="acme")
        with pytest.raises(SlotCollisionError):
            allocator.claim("layer", [1], owner="acme")

    def test_same_index_in_different_layers_is_fine(self):
        allocator = SlotAllocator()
        allocator.claim("a", [1], owner="x")
        allocator.claim("b", [1], owner="y")
        assert allocator.total_slots == 2

    def test_claim_locations_maps_whole_footprint(self):
        allocator = SlotAllocator()
        allocator.claim_locations({"a": np.asarray([1, 2]), "b": np.asarray([0])}, owner="acme")
        assert allocator.total_slots == 3
        assert allocator.owners() == ["acme"]


class TestSerialization:
    def test_metadata_roundtrip(self):
        allocator = SlotAllocator()
        allocator.claim("a", [4, 2], owner="acme")
        allocator.claim("b", [7], owner="globex")
        meta = allocator.to_metadata()
        assert meta == {"a": [2, 4], "b": [7]}
        rebuilt = SlotAllocator.from_metadata(meta)
        assert rebuilt.total_slots == 3
        np.testing.assert_array_equal(rebuilt.occupied_for("a"), [2, 4])

    def test_snapshot_is_a_copy(self):
        allocator = SlotAllocator()
        allocator.claim("a", [1])
        snapshot = allocator.snapshot()
        snapshot["a"] = np.asarray([99])
        np.testing.assert_array_equal(allocator.occupied_for("a"), [1])


class TestFromKeys:
    def test_rebuilds_occupancy_from_issued_keys(
        self, quantized_awq4, activation_stats
    ):
        engine = WatermarkEngine()
        result = engine.insert_multi(quantized_awq4, activation_stats, 2)
        rebuilt = SlotAllocator.from_keys(result.keys(), engine=engine)
        assert rebuilt.total_slots == result.allocator.total_slots
        assert set(rebuilt.owners()) == {"owner-0", "owner-1"}
        for name, indices in result.allocator.snapshot().items():
            np.testing.assert_array_equal(rebuilt.occupied_for(name), indices)

    def test_overlapping_keys_surface_as_collisions(
        self, quantized_awq4, activation_stats
    ):
        # Two *uncoordinated* insertions (no allocator) of the same config
        # pick the same slots — exactly the clobbering from_keys must expose.
        engine = WatermarkEngine()
        _, key_a, _ = engine.insert(quantized_awq4, activation_stats)
        _, key_b, _ = engine.insert(quantized_awq4, activation_stats)
        with pytest.raises(SlotCollisionError):
            SlotAllocator.from_keys({"a": key_a, "b": key_b}, engine=engine)


class TestThreadSafety:
    def test_concurrent_claims_on_distinct_layers(self):
        allocator = SlotAllocator()
        errors = []

        def claim(layer):
            try:
                for start in range(0, 100, 10):
                    allocator.claim(layer, range(start, start + 10), owner=layer)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=claim, args=(f"layer-{i}",)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert allocator.total_slots == 800
        assert len(allocator.owners()) == 8
