"""Tests for the Alpaca-sim instruction dataset."""

import numpy as np

from repro.data.alpaca import build_alpaca_sim, load_alpaca_sim
from repro.data.tokenizer import Vocabulary


class TestBuildAlpacaSim:
    def test_pair_count(self):
        data = build_alpaca_sim(Vocabulary(64), num_pairs=10)
        assert len(data) == 10

    def test_pair_shapes(self):
        data = build_alpaca_sim(Vocabulary(64), num_pairs=5, instruction_length=6, response_length=9)
        for instruction, response in data.pairs:
            assert instruction.size == 6
            assert response.size == 9

    def test_deterministic(self):
        a = build_alpaca_sim(Vocabulary(64), num_pairs=4, seed=3)
        b = build_alpaca_sim(Vocabulary(64), num_pairs=4, seed=3)
        np.testing.assert_array_equal(a.pairs[0][0], b.pairs[0][0])

    def test_as_corpus_layout(self):
        vocab = Vocabulary(64)
        data = build_alpaca_sim(vocab, num_pairs=3, instruction_length=4, response_length=5)
        corpus = data.as_corpus()
        # Each pair contributes <bos> + instruction + response + <eos>.
        assert len(corpus) == 3 * (1 + 4 + 5 + 1)
        assert corpus.tokens[0] == vocab.bos_id

    def test_statistics_differ_from_base_corpus_seed(self):
        vocab = Vocabulary(64)
        data = build_alpaca_sim(vocab, num_pairs=20, seed=1)
        other = build_alpaca_sim(vocab, num_pairs=20, seed=2)
        assert not np.array_equal(data.as_corpus().tokens, other.as_corpus().tokens)


class TestLoadAlpacaSim:
    def test_matches_vocabulary_size(self):
        vocab = Vocabulary(64)
        data = load_alpaca_sim(vocab, num_pairs=8)
        assert data.vocabulary is vocab
        assert len(data) == 8

    def test_cache_reuse_across_equal_vocab_sizes(self):
        a = load_alpaca_sim(Vocabulary(64), num_pairs=8)
        b = load_alpaca_sim(Vocabulary(64), num_pairs=8)
        np.testing.assert_array_equal(a.pairs[0][0], b.pairs[0][0])
