"""Tests for the Zipf–Markov corpus generator."""

import numpy as np
import pytest

from repro.data.corpus import MarkovCorpusGenerator, TokenCorpus
from repro.data.tokenizer import Vocabulary


@pytest.fixture(scope="module")
def vocab():
    return Vocabulary(64)


@pytest.fixture(scope="module")
def generator(vocab):
    return MarkovCorpusGenerator(vocab, seed=5)


class TestTokenCorpus:
    def test_length(self, vocab):
        corpus = TokenCorpus(np.arange(4, 20), vocab, "x")
        assert len(corpus) == 16

    def test_rejects_out_of_range_ids(self, vocab):
        with pytest.raises(ValueError):
            TokenCorpus(np.array([0, 1, 200]), vocab)

    def test_rejects_non_1d(self, vocab):
        with pytest.raises(ValueError):
            TokenCorpus(np.zeros((2, 2), dtype=int), vocab)

    def test_batches_non_overlapping(self, vocab):
        corpus = TokenCorpus(np.arange(4, 36), vocab)
        batches = list(corpus.batches(8))
        assert len(batches) == 4
        np.testing.assert_array_equal(np.concatenate(batches), corpus.tokens)

    def test_batches_respects_max_sequences(self, vocab):
        corpus = TokenCorpus(np.arange(4, 36), vocab)
        assert len(list(corpus.batches(8, max_sequences=2))) == 2

    def test_batches_requires_min_length(self, vocab):
        corpus = TokenCorpus(np.arange(4, 12), vocab)
        with pytest.raises(ValueError):
            list(corpus.batches(1))

    def test_as_matrix_shape(self, vocab):
        corpus = TokenCorpus(np.arange(4, 36), vocab)
        assert corpus.as_matrix(8).shape == (4, 8)

    def test_as_matrix_empty(self, vocab):
        corpus = TokenCorpus(np.arange(4, 8), vocab)
        assert corpus.as_matrix(16).shape == (0, 16)

    def test_split_fractions(self, vocab):
        corpus = TokenCorpus(np.arange(4, 24), vocab, "c")
        first, second = corpus.split(0.75)
        assert len(first) + len(second) == len(corpus)
        assert len(first) == 15

    def test_split_rejects_bad_fraction(self, vocab):
        corpus = TokenCorpus(np.arange(4, 24), vocab)
        with pytest.raises(ValueError):
            corpus.split(1.5)


class TestMarkovCorpusGenerator:
    def test_generation_deterministic(self, generator):
        a = generator.generate(500, seed_offset=0)
        b = generator.generate(500, seed_offset=0)
        np.testing.assert_array_equal(a.tokens, b.tokens)

    def test_seed_offsets_give_different_streams(self, generator):
        a = generator.generate(500, seed_offset=0)
        b = generator.generate(500, seed_offset=1)
        assert not np.array_equal(a.tokens, b.tokens)

    def test_tokens_are_regular(self, generator, vocab):
        corpus = generator.generate(500)
        assert corpus.tokens.min() >= vocab.first_regular_id
        assert corpus.tokens.max() < len(vocab)

    def test_minimum_length_enforced(self, generator):
        with pytest.raises(ValueError):
            generator.generate(1)

    def test_invalid_coherence_rejected(self, vocab):
        with pytest.raises(ValueError):
            MarkovCorpusGenerator(vocab, coherence=1.5)

    def test_invalid_order_rejected(self, vocab):
        with pytest.raises(ValueError):
            MarkovCorpusGenerator(vocab, order=3)

    def test_transition_probabilities_sum_to_one(self, generator, vocab):
        probs = generator.transition_probabilities(vocab.first_regular_id + 3, vocab.first_regular_id + 5)
        assert probs.shape == (vocab.num_regular_tokens,)
        assert np.isclose(probs.sum(), 1.0)

    def test_transition_probabilities_reject_special_tokens(self, generator, vocab):
        with pytest.raises(ValueError):
            generator.transition_probabilities(vocab.pad_id)

    def test_token_group_range(self, generator, vocab):
        groups = {generator.token_group(t) for t in range(vocab.first_regular_id, len(vocab))}
        assert min(groups) >= 0
        assert max(groups) < generator.num_groups

    def test_order1_state_is_token(self, vocab):
        gen = MarkovCorpusGenerator(vocab, order=1, seed=2)
        probs_a = gen.transition_probabilities(vocab.first_regular_id + 1)
        probs_b = gen.transition_probabilities(vocab.first_regular_id + 2)
        assert not np.allclose(probs_a, probs_b)

    def test_unigram_distribution_is_skewed(self, generator, vocab):
        corpus = generator.generate(4000)
        counts = np.bincount(corpus.tokens - vocab.first_regular_id, minlength=vocab.num_regular_tokens)
        sorted_counts = np.sort(counts)[::-1]
        # Zipf-like: the top decile should hold several times the bottom decile.
        top = sorted_counts[: len(sorted_counts) // 10].sum()
        bottom = sorted_counts[-len(sorted_counts) // 10 :].sum()
        assert top > 3 * max(bottom, 1)

    def test_preferred_successors_are_overrepresented(self, generator, vocab):
        """The generated stream must actually follow the chain statistics."""
        corpus = generator.generate(6000, seed_offset=3)
        offset = vocab.first_regular_id
        hits = 0
        total = 0
        tokens = corpus.tokens
        for i in range(2, len(tokens)):
            probs = generator.transition_probabilities(int(tokens[i - 2]), int(tokens[i - 1]))
            top_successors = np.argsort(probs)[::-1][:generator.branching]
            total += 1
            if int(tokens[i]) - offset in top_successors:
                hits += 1
        # With coherence 0.9 the preferred successors should dominate.
        assert hits / total > 0.6
