"""Tests for the synthetic zero-shot task suite."""

import numpy as np
import pytest

from repro.data.corpus import MarkovCorpusGenerator
from repro.data.tasks import (
    DEFAULT_TASK_SPECS,
    MultipleChoiceExample,
    TaskSpec,
    build_task,
    build_task_suite,
)
from repro.data.tokenizer import Vocabulary


@pytest.fixture(scope="module")
def generator():
    return MarkovCorpusGenerator(Vocabulary(64), seed=11)


class TestMultipleChoiceExample:
    def test_label_bounds_checked(self):
        with pytest.raises(ValueError):
            MultipleChoiceExample(
                context=np.array([4, 5]), choices=[np.array([4]), np.array([5])], label=2
            )

    def test_requires_at_least_two_choices(self):
        with pytest.raises(ValueError):
            MultipleChoiceExample(context=np.array([4]), choices=[np.array([4])], label=0)


class TestBuildTask:
    def test_example_count(self, generator):
        spec = TaskSpec("mini", num_examples=10, context_length=6, continuation_length=2, num_choices=3)
        task = build_task(spec, generator, seed=1)
        assert len(task) == 10

    def test_choice_count_and_lengths(self, generator):
        spec = TaskSpec("mini", num_examples=5, context_length=6, continuation_length=3, num_choices=4)
        task = build_task(spec, generator, seed=1)
        for example in task:
            assert len(example.choices) == 4
            assert example.context.size == 6
            assert all(choice.size == 3 for choice in example.choices)

    def test_labels_within_range(self, generator):
        spec = TaskSpec("mini", num_examples=20, context_length=4, continuation_length=1, num_choices=4)
        task = build_task(spec, generator, seed=2)
        assert all(0 <= ex.label < 4 for ex in task)

    def test_deterministic(self, generator):
        spec = TaskSpec("mini", num_examples=5, context_length=4, continuation_length=2, num_choices=2)
        a = build_task(spec, generator, seed=3)
        b = build_task(spec, generator, seed=3)
        for ex_a, ex_b in zip(a, b):
            np.testing.assert_array_equal(ex_a.context, ex_b.context)
            assert ex_a.label == ex_b.label

    def test_correct_choice_follows_chain(self, generator):
        """The labelled continuation's first token must be likely under the chain."""
        spec = TaskSpec("mini", num_examples=30, context_length=6, continuation_length=1, num_choices=2)
        task = build_task(spec, generator, seed=4)
        offset = generator.vocabulary.first_regular_id
        plausible = 0
        for example in task:
            probs = generator.transition_probabilities(
                int(example.context[-2]), int(example.context[-1])
            )
            correct_first = int(example.choices[example.label][0]) - offset
            # "Likely" = within the chain's preferred-successor mass.
            top = set(np.argsort(probs)[::-1][: generator.branching].tolist())
            if correct_first in top:
                plausible += 1
        assert plausible / len(task) > 0.5


class TestBuildTaskSuite:
    def test_default_suite_has_four_tasks(self, generator):
        tasks = build_task_suite(generator, seed=1)
        assert len(tasks) == 4
        assert {t.name for t in tasks} == set(DEFAULT_TASK_SPECS)

    def test_tasks_are_nonempty(self, generator):
        for task in build_task_suite(generator, seed=1):
            assert len(task) > 0
