"""Tests for the WikiText-sim dataset builder."""

import numpy as np

from repro.data.wikitext import build_wikitext_sim, load_wikitext_sim


class TestBuildWikiTextSim:
    def test_split_sizes(self):
        data = build_wikitext_sim(
            vocab_size=64, train_tokens=2000, validation_tokens=500, calibration_tokens=300, seed=1
        )
        assert len(data.train) == 2000
        assert len(data.validation) == 500
        assert len(data.calibration) == 300

    def test_shared_vocabulary(self):
        data = build_wikitext_sim(vocab_size=64, train_tokens=500, validation_tokens=200,
                                  calibration_tokens=200, seed=1)
        assert data.train.vocabulary is data.vocabulary
        assert data.validation.vocabulary is data.vocabulary

    def test_deterministic(self):
        a = build_wikitext_sim(vocab_size=64, train_tokens=500, validation_tokens=200,
                               calibration_tokens=200, seed=5)
        b = build_wikitext_sim(vocab_size=64, train_tokens=500, validation_tokens=200,
                               calibration_tokens=200, seed=5)
        np.testing.assert_array_equal(a.train.tokens, b.train.tokens)

    def test_splits_do_not_repeat_each_other(self):
        data = build_wikitext_sim(vocab_size=64, train_tokens=500, validation_tokens=500,
                                  calibration_tokens=500, seed=5)
        assert not np.array_equal(data.train.tokens[:500], data.validation.tokens)

    def test_splits_property(self):
        data = build_wikitext_sim(vocab_size=64, train_tokens=500, validation_tokens=200,
                                  calibration_tokens=200, seed=1)
        assert set(data.splits) == {"train", "validation", "calibration"}


class TestLoadWikiTextSim:
    def test_caching_returns_same_object(self):
        a = load_wikitext_sim(vocab_size=64, train_tokens=500, validation_tokens=200,
                              calibration_tokens=200, seed=2)
        b = load_wikitext_sim(vocab_size=64, train_tokens=500, validation_tokens=200,
                              calibration_tokens=200, seed=2)
        assert a is b

    def test_different_parameters_different_objects(self):
        a = load_wikitext_sim(vocab_size=64, train_tokens=500, validation_tokens=200,
                              calibration_tokens=200, seed=2)
        b = load_wikitext_sim(vocab_size=64, train_tokens=500, validation_tokens=200,
                              calibration_tokens=200, seed=3)
        assert a is not b
