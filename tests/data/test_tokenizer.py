"""Tests for the vocabulary / tokenizer."""

import pytest

from repro.data.tokenizer import SPECIAL_TOKENS, Vocabulary


class TestVocabularyConstruction:
    def test_size(self):
        assert len(Vocabulary(64)) == 64

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            Vocabulary(4)

    def test_special_tokens_occupy_first_ids(self):
        vocab = Vocabulary(32)
        assert vocab.pad_id == 0
        assert vocab.bos_id == 1
        assert vocab.eos_id == 2
        assert vocab.unk_id == 3

    def test_num_regular_tokens(self):
        vocab = Vocabulary(32)
        assert vocab.num_regular_tokens == 32 - len(SPECIAL_TOKENS)
        assert vocab.first_regular_id == len(SPECIAL_TOKENS)


class TestConversions:
    def test_round_trip(self):
        vocab = Vocabulary(32)
        token = vocab.id_to_token(10)
        assert vocab.token_to_id(token) == 10

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary(32)
        assert vocab.token_to_id("not-a-token") == vocab.unk_id

    def test_id_out_of_range_raises(self):
        vocab = Vocabulary(32)
        with pytest.raises(IndexError):
            vocab.id_to_token(32)

    def test_encode_with_bos(self):
        vocab = Vocabulary(32)
        tokens = [vocab.id_to_token(5), vocab.id_to_token(6)]
        assert vocab.encode(tokens, add_bos=True)[0] == vocab.bos_id

    def test_decode_skips_special_tokens(self):
        vocab = Vocabulary(32)
        decoded = vocab.decode([vocab.bos_id, 5, vocab.eos_id])
        assert decoded == [vocab.id_to_token(5)]

    def test_decode_keeps_special_when_requested(self):
        vocab = Vocabulary(32)
        decoded = vocab.decode([vocab.bos_id, 5], skip_special=False)
        assert len(decoded) == 2

    def test_contains(self):
        vocab = Vocabulary(32)
        assert vocab.id_to_token(7) in vocab
        assert "nope" not in vocab
