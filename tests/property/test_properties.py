"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import EmMarkConfig
from repro.core.scoring import combined_score, select_candidates
from repro.core.signature import bits_to_signature, generate_signature, signature_to_bits
from repro.core.strength import false_claim_probability, log10_watermark_strength
from repro.quant.base import QuantizationGrid, QuantizedLinear, dequantize_tensor, quantize_tensor
from repro.utils.rng import derive_seed


# ----------------------------------------------------------------------
# Quantization grid / round-trip properties
# ----------------------------------------------------------------------
@given(bits=st.integers(min_value=2, max_value=16))
def test_grid_is_symmetric(bits):
    grid = QuantizationGrid(bits)
    assert grid.qmin == -grid.qmax
    assert grid.num_levels == 2 * grid.qmax + 1


@given(
    bits=st.integers(min_value=2, max_value=8),
    rows=st.integers(min_value=1, max_value=6),
    cols=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
    scale=st.floats(min_value=0.01, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_quantization_round_trip_error_bound(bits, rows, cols, seed, scale):
    """|dequant(quant(W)) - W| <= Δ/2 element-wise, for any weight matrix."""
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(rows, cols)) * scale
    grid = QuantizationGrid(bits)
    weight_int, step = quantize_tensor(weight, grid)
    restored = dequantize_tensor(weight_int, step)
    assert np.all(np.abs(restored - weight) <= 0.5 * step + 1e-9)


@given(
    bits=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_quantized_levels_always_within_grid(bits, seed):
    rng = np.random.default_rng(seed)
    weight = rng.normal(size=(4, 8)) * rng.uniform(0.1, 50)
    grid = QuantizationGrid(bits)
    weight_int, _ = quantize_tensor(weight, grid)
    assert weight_int.max() <= grid.qmax
    assert weight_int.min() >= grid.qmin


# ----------------------------------------------------------------------
# Signature properties
# ----------------------------------------------------------------------
@given(length=st.integers(min_value=1, max_value=512), seed=st.integers(min_value=0, max_value=2**20))
@settings(max_examples=60, deadline=None)
def test_signature_round_trip_and_alphabet(length, seed):
    signature = generate_signature(length, seed)
    assert signature.size == length
    assert set(np.unique(signature)) <= {-1, 1}
    np.testing.assert_array_equal(bits_to_signature(signature_to_bits(signature)), signature)


@given(seed=st.integers(min_value=0, max_value=2**20), length=st.integers(min_value=1, max_value=128))
@settings(max_examples=30, deadline=None)
def test_signature_is_pure_function_of_seed(seed, length):
    np.testing.assert_array_equal(generate_signature(length, seed), generate_signature(length, seed))


# ----------------------------------------------------------------------
# Strength (Equation 8) properties
# ----------------------------------------------------------------------
@given(total=st.integers(min_value=1, max_value=200), data=st.data())
@settings(max_examples=60, deadline=None)
def test_false_claim_probability_is_a_probability_and_monotone(total, data):
    k = data.draw(st.integers(min_value=0, max_value=total))
    value = false_claim_probability(total, k)
    assert 0.0 <= value <= 1.0
    if k > 0:
        assert false_claim_probability(total, k - 1) >= value


@given(bits=st.integers(min_value=1, max_value=400), layers=st.integers(min_value=1, max_value=300))
@settings(max_examples=60, deadline=None)
def test_log10_strength_scales_linearly_in_layers(bits, layers):
    single = log10_watermark_strength(bits, 1)
    multi = log10_watermark_strength(bits, layers)
    assert np.isclose(multi, layers * single, rtol=1e-9, atol=1e-9)
    assert multi <= 0.0


# ----------------------------------------------------------------------
# Scoring / candidate-selection properties
# ----------------------------------------------------------------------
def _random_layer(rng, rows, cols, bits=4):
    grid = QuantizationGrid(bits)
    weight_int = rng.integers(grid.qmin, grid.qmax + 1, size=(rows, cols))
    return QuantizedLinear(
        name="prop",
        weight_int=weight_int,
        scale=np.ones((rows, 1)),
        grid=grid,
    )


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    rows=st.integers(min_value=2, max_value=8),
    cols=st.integers(min_value=2, max_value=8),
    alpha=st.floats(min_value=0.0, max_value=2.0),
    beta=st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=60, deadline=None)
def test_combined_score_excludes_saturated_and_is_nonnegative(seed, rows, cols, alpha, beta):
    if alpha == 0.0 and beta == 0.0:
        alpha = 0.5
    rng = np.random.default_rng(seed)
    layer = _random_layer(rng, rows, cols)
    activations = rng.uniform(0.1, 5.0, size=cols)
    scores = combined_score(layer, activations, alpha, beta)
    saturated = layer.saturated_mask()
    assert np.all(np.isinf(scores[saturated]))
    finite = np.isfinite(scores)
    assert np.all(scores[finite] >= 0)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    pool=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=60, deadline=None)
def test_candidates_are_unique_finite_and_within_bounds(seed, pool):
    rng = np.random.default_rng(seed)
    layer = _random_layer(rng, 6, 8)
    activations = rng.uniform(0.1, 5.0, size=8)
    try:
        result = select_candidates(layer, activations, 0.5, 0.5, pool_size=pool)
    except ValueError:
        # Legal outcome when every position is excluded.
        return
    indices = result.candidate_indices
    assert len(set(indices.tolist())) == indices.size
    assert indices.min() >= 0 and indices.max() < layer.num_weights
    assert np.all(np.isfinite(result.scores.reshape(-1)[indices]))


# ----------------------------------------------------------------------
# Config / seed-derivation properties
# ----------------------------------------------------------------------
@given(
    bits_per_layer=st.integers(min_value=1, max_value=500),
    ratio=st.floats(min_value=1.0, max_value=100.0),
    fraction=st.floats(min_value=0.01, max_value=1.0),
    layer_size=st.integers(min_value=1, max_value=100_000),
)
@settings(max_examples=80, deadline=None)
def test_candidate_pool_size_invariants(bits_per_layer, ratio, fraction, layer_size):
    config = EmMarkConfig(
        bits_per_layer=bits_per_layer,
        candidate_pool_ratio=ratio,
        max_candidate_fraction=fraction,
    )
    pool = config.candidate_pool_size(layer_size)
    assert pool <= layer_size
    assert pool >= min(bits_per_layer, layer_size)
    assert pool <= max(bits_per_layer, int(round(ratio * bits_per_layer)))


@given(
    base=st.integers(min_value=0, max_value=2**31 - 1),
    label_a=st.text(max_size=12),
    label_b=st.text(max_size=12),
)
@settings(max_examples=80, deadline=None)
def test_derive_seed_depends_on_labels(base, label_a, label_b):
    seed_a = derive_seed(base, label_a)
    seed_b = derive_seed(base, label_b)
    assert 0 <= seed_a < 2**32
    if label_a == label_b:
        assert seed_a == seed_b
