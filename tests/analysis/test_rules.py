"""Good/bad fixture pairs for every ``repro check`` rule.

Each rule gets at least one failing fixture (the invariant violated — the
check must fire) and one passing fixture (the sanctioned spelling — the
check must stay silent).  REP002's failing fixture reproduces the PR-7
``TraceCollector`` truthiness bug verbatim in miniature.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import CheckConfig, all_rules, run_checks


def src(body: str) -> str:
    return textwrap.dedent(body).lstrip("\n")


def test_catalog_has_at_least_eight_rules():
    rules = all_rules()
    assert len(rules) >= 8
    ids = [rule.rule_id for rule in rules]
    assert len(ids) == len(set(ids))
    for rule in rules:
        assert rule.description, f"{rule.rule_id} has no description"
        assert rule.hint, f"{rule.rule_id} has no fix hint"


def test_violations_carry_location_rule_id_and_hint(check_snippet):
    bad = src(
        """
        import numpy as np

        def sample():
            return np.random.rand(4)
        """
    )
    violations = check_snippet(bad, "REP001")
    assert len(violations) == 1
    v = violations[0]
    assert v.path == "mod.py"
    assert v.line == 4
    assert v.rule_id == "REP001"
    assert "np.random.rand" in v.message
    assert v.hint
    assert "mod.py:4" in v.render()


def test_unparseable_file_reports_rep000(check_tree):
    violations = check_tree({"broken.py": "def oops(:\n"}, "REP001")
    assert [v.rule_id for v in violations] == ["REP000"]


class TestRep001UnseededRng:
    def test_bad_numpy_module_state(self, check_snippet):
        bad = src(
            """
            import numpy as np

            def sample():
                np.random.seed(0)
                return np.random.normal(size=3)
            """
        )
        hits = check_snippet(bad, "REP001")
        assert len(hits) == 2

    def test_bad_stdlib_random(self, check_snippet):
        bad = src(
            """
            import random

            def pick(items):
                return random.choice(items)
            """
        )
        assert len(check_snippet(bad, "REP001")) == 1

    def test_bad_from_random_import(self, check_snippet):
        bad = "from random import shuffle\n"
        assert len(check_snippet(bad, "REP001")) == 1

    def test_good_seeded_generator(self, check_snippet):
        good = src(
            """
            import numpy as np
            from random import Random

            def sample(seed):
                rng = np.random.default_rng(seed)
                local = Random(seed)
                return rng.normal(size=3), local.random()
            """
        )
        assert check_snippet(good, "REP001") == []

    def test_good_test_fixture_is_exempt(self, check_tree):
        bad_but_test = src(
            """
            import numpy as np

            def fixture():
                return np.random.rand(4)
            """
        )
        assert check_tree({"tests/test_mod.py": bad_but_test}, "REP001") == []


class TestRep002ContainerTruthiness:
    def test_bad_pr7_trace_collector_repro(self, check_snippet):
        # The PR-7 bug in miniature: a fresh TraceCollector is *falsy*
        # (``__len__`` == 0), so ``if collector:`` silently means "has
        # events already", not "tracing enabled" — workers never traced.
        bad = src(
            """
            from typing import Optional

            def record(collector: "Optional[TraceCollector]", span):
                if collector:
                    collector.add(span)
            """
        )
        hits = check_snippet(bad, "REP002")
        assert len(hits) == 1
        assert "TraceCollector" in hits[0].message

    def test_bad_constructor_assignment(self, check_snippet):
        bad = src(
            """
            cache = PlanCache(max_entries=64)
            if not cache:
                rebuild()
            """
        )
        hits = check_snippet(bad, "REP002")
        assert len(hits) == 1
        assert "PlanCache" in hits[0].message

    def test_bad_self_attribute(self, check_snippet):
        bad = src(
            """
            class Service:
                def __init__(self):
                    self.registry = KeyRegistry("dir")

                def ready(self):
                    return bool(self.registry) if self.registry else None
            """
        )
        assert check_snippet(bad, "REP002")

    def test_good_is_not_none(self, check_snippet):
        good = src(
            """
            from typing import Optional

            def record(collector: "Optional[TraceCollector]", span):
                if collector is not None:
                    collector.add(span)
            """
        )
        assert check_snippet(good, "REP002") == []

    def test_good_unrelated_truthiness(self, check_snippet):
        good = src(
            """
            def decide(items, flag):
                if items and flag:
                    return items[0]
            """
        )
        assert check_snippet(good, "REP002") == []

    def test_configurable_class_list(self, check_snippet, check_tree, tmp_path):
        source = src(
            """
            thing = CustomPool()
            if thing:
                pass
            """
        )
        # Not in the default list: silent.
        assert check_snippet(source, "REP002") == []
        # In a custom list: caught.
        root = tmp_path / "custom"
        root.mkdir()
        (root / "mod.py").write_text(source, encoding="utf-8")
        rules = [r for r in all_rules() if r.rule_id == "REP002"]
        config = CheckConfig(truthiness_classes=("CustomPool",))
        result = run_checks([root], rules=rules, config=config)
        assert len(result.violations) == 1


class TestRep003TelemetryPurity:
    def test_bad_obs_imports_engine(self, check_tree):
        bad = "from repro.engine.engine import WatermarkEngine\n"
        hits = check_tree({"repro/obs/peek.py": bad}, "REP003")
        assert len(hits) == 1
        assert "decision code" in hits[0].message

    def test_bad_instrument_mutation_in_digest_path(self, check_snippet):
        bad = src(
            """
            class Report:
                def decision_digest(self):
                    self.cells_counter.inc()
                    return hash(tuple(c.decision_fields() for c in self.cells))
            """
        )
        hits = check_snippet(bad, "REP003")
        assert len(hits) == 1
        assert "inc" in hits[0].message

    def test_good_obs_stdlib_only(self, check_tree):
        good = src(
            """
            import json
            import threading
            from repro.utils.logging import get_logger
            """
        )
        assert check_tree({"repro/obs/clean.py": good}, "REP003") == []

    def test_good_metrics_outside_digest_path(self, check_snippet):
        good = src(
            """
            class Runner:
                def record(self):
                    self.cells_counter.inc()

                def decision_digest(self):
                    return hash(tuple(c.decision_fields() for c in self.cells))
            """
        )
        assert check_snippet(good, "REP003") == []


class TestRep004ShmDiscipline:
    def test_bad_create_outside_blessed_module(self, check_tree):
        bad = src(
            """
            from multiprocessing import shared_memory

            def grab(n):
                return shared_memory.SharedMemory(create=True, size=n)
            """
        )
        hits = check_tree({"repro/robustness/rogue.py": bad}, "REP004")
        assert len(hits) == 1
        assert "blessed" in hits[0].message

    def test_bad_create_unregistered_inside_blessed_module(self, check_tree):
        bad = src(
            """
            from multiprocessing import shared_memory

            _LIVE_SEGMENTS = {}

            def seal(n):
                return shared_memory.SharedMemory(create=True, size=n)
            """
        )
        hits = check_tree({"repro/engine/shm.py": bad}, "REP004")
        assert len(hits) == 1
        assert "_LIVE_SEGMENTS" in hits[0].message

    def test_bad_raw_unlink_outside_blessed_module(self, check_tree):
        bad = src(
            """
            from multiprocessing import shared_memory

            def nuke(segment):
                segment.unlink()
            """
        )
        hits = check_tree({"repro/robustness/sweeper.py": bad}, "REP004")
        assert len(hits) == 1

    def test_good_registered_create_in_blessed_module(self, check_tree):
        good = src(
            """
            from multiprocessing import shared_memory

            _LIVE_SEGMENTS = {}

            def seal(name, n):
                segment = shared_memory.SharedMemory(create=True, size=n)
                _LIVE_SEGMENTS[name] = segment
                return segment
            """
        )
        assert check_tree({"repro/engine/shm.py": good}, "REP004") == []

    def test_good_attach_only_module(self, check_tree):
        good = src(
            """
            from multiprocessing import shared_memory

            def attach(name):
                return shared_memory.SharedMemory(name=name)
            """
        )
        assert check_tree({"repro/robustness/worker.py": good}, "REP004") == []


class TestRep005BlockingAsync:
    def test_bad_sleep_in_handler(self, check_snippet):
        bad = src(
            """
            import time

            async def handle(request):
                time.sleep(0.1)
                return respond(request)
            """
        )
        hits = check_snippet(bad, "REP005")
        assert len(hits) == 1
        assert "time.sleep" in hits[0].message

    def test_bad_sync_open_in_handler(self, check_snippet):
        bad = src(
            """
            async def handle(request):
                with open("audit.log") as handle:
                    return handle.read()
            """
        )
        assert len(check_snippet(bad, "REP005")) == 1

    def test_good_asyncio_sleep(self, check_snippet):
        good = src(
            """
            import asyncio

            async def handle(request):
                await asyncio.sleep(0.1)
                return respond(request)
            """
        )
        assert check_snippet(good, "REP005") == []

    def test_good_blocking_work_in_executor_lambda(self, check_snippet):
        # The server's real pattern: blocking work wrapped in a lambda and
        # shipped to a thread via run_in_executor does NOT run on the loop.
        good = src(
            """
            import time

            async def handle(loop, request):
                return await loop.run_in_executor(None, lambda: time.sleep(0.1))
            """
        )
        assert check_snippet(good, "REP005") == []


class TestRep006LockAcrossAwait:
    def test_bad_await_under_lock(self, check_snippet):
        bad = src(
            """
            async def resolve(self, suspect_id):
                with self._suspects_lock:
                    return await self._fetch(suspect_id)
            """
        )
        hits = check_snippet(bad, "REP006")
        assert len(hits) == 1
        assert "_suspects_lock" in hits[0].message

    def test_bad_nested_await_under_lock(self, check_snippet):
        bad = src(
            """
            async def drain(self):
                with self.lock:
                    for job in self.jobs:
                        await job.finish()
            """
        )
        assert len(check_snippet(bad, "REP006")) == 1

    def test_good_lock_released_before_await(self, check_snippet):
        good = src(
            """
            async def resolve(self, suspect_id):
                with self._suspects_lock:
                    suspect = self._suspects[suspect_id]
                return await self._verify(suspect)
            """
        )
        assert check_snippet(good, "REP006") == []

    def test_good_await_in_nested_function_under_lock(self, check_snippet):
        good = src(
            """
            async def schedule(self):
                with self.lock:
                    async def later():
                        await task()
                    self.pending = later
            """
        )
        assert check_snippet(good, "REP006") == []


class TestRep007ForkReset:
    def test_bad_module_lock_without_reset(self, check_snippet):
        bad = src(
            """
            import threading

            _CACHE_LOCK = threading.Lock()
            """
        )
        hits = check_snippet(bad, "REP007")
        assert len(hits) == 1
        assert "register_at_fork" in hits[0].hint

    def test_bad_module_executor_without_reset(self, check_snippet):
        bad = src(
            """
            from concurrent.futures import ThreadPoolExecutor

            _POOL = ThreadPoolExecutor(max_workers=4)
            """
        )
        assert len(check_snippet(bad, "REP007")) == 1

    def test_good_lock_with_fork_reset(self, check_snippet):
        good = src(
            """
            import os
            import threading

            _CACHE_LOCK = threading.Lock()

            def _reset_after_fork():
                global _CACHE_LOCK
                _CACHE_LOCK = threading.Lock()

            os.register_at_fork(after_in_child=_reset_after_fork)
            """
        )
        assert check_snippet(good, "REP007") == []

    def test_good_instance_level_lock(self, check_snippet):
        good = src(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
            """
        )
        assert check_snippet(good, "REP007") == []


class TestRep008DecisionFields:
    def test_bad_uncovered_field(self, check_snippet):
        bad = src(
            """
            from dataclasses import dataclass

            @dataclass
            class CellResult:
                wer_percent: float
                sneaky_extra: float

                def decision_fields(self):
                    return (self.wer_percent,)
            """
        )
        hits = check_snippet(bad, "REP008")
        assert len(hits) == 1
        assert "sneaky_extra" in hits[0].message

    def test_good_informational_marker(self, check_snippet):
        good = src(
            """
            from dataclasses import dataclass, field

            @dataclass
            class CellResult:
                wer_percent: float
                attack_seconds: float = field(
                    default=0.0, metadata={"informational": True}
                )

                def decision_fields(self):
                    return (self.wer_percent,)
            """
        )
        assert check_snippet(good, "REP008") == []

    def test_good_informational_fields_class_attr(self, check_snippet):
        good = src(
            """
            from dataclasses import dataclass

            @dataclass
            class CellResult:
                INFORMATIONAL_FIELDS = ("notes",)
                wer_percent: float
                notes: str = ""

                def decision_fields(self):
                    return (self.wer_percent,)
            """
        )
        assert check_snippet(good, "REP008") == []

    def test_good_indirect_coverage_via_property(self, check_snippet):
        # The real GauntletCellResult shape: decision_fields references
        # self.cell_id, whose property body reads model_id/attack/strength.
        good = src(
            """
            from dataclasses import dataclass

            @dataclass
            class CellResult:
                model_id: str
                attack: str

                @property
                def cell_id(self):
                    return f"{self.model_id}/{self.attack}"

                def decision_fields(self):
                    return (self.cell_id,)
            """
        )
        assert check_snippet(good, "REP008") == []

    def test_good_plain_dataclass_without_digest(self, check_snippet):
        good = src(
            """
            from dataclasses import dataclass

            @dataclass
            class Plain:
                anything: str
            """
        )
        assert check_snippet(good, "REP008") == []


class TestRealTree:
    def test_repo_src_is_clean(self, repo_src):
        """The acceptance gate: ``repro check src/`` finds nothing."""
        result = run_checks([repo_src])
        assert result.ok, "\n" + result.render()
        assert len(result.rules_run) >= 8
        assert result.files_checked > 50

    @pytest.mark.parametrize(
        "relpath, rule_id",
        [
            ("repro/engine/shm.py", "REP007"),
            ("repro/robustness/report.py", "REP008"),
            ("repro/engine/engine.py", "REP002"),
            ("repro/service/server.py", "REP006"),
            ("repro/obs/trace.py", "REP003"),
        ],
    )
    def test_previously_fixed_sites_stay_clean(self, repo_src, relpath, rule_id):
        rules = [rule for rule in all_rules() if rule.rule_id == rule_id]
        result = run_checks([repo_src / relpath], rules=rules)
        assert result.ok, "\n" + result.render()
