"""Baseline (grandfathering) workflow for ``repro check``."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import Baseline, all_rules, run_checks

BAD = textwrap.dedent(
    """
    import numpy as np

    def sample():
        return np.random.rand(4)
    """
).lstrip("\n")


@pytest.fixture
def bad_tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "mod.py").write_text(BAD, encoding="utf-8")
    return root


def _rep001():
    return [rule for rule in all_rules() if rule.rule_id == "REP001"]


def test_baseline_suppresses_known_violations(bad_tree, tmp_path):
    first = run_checks([bad_tree], rules=_rep001())
    assert len(first.violations) == 1
    baseline_path = tmp_path / "baseline.json"
    Baseline.from_violations(first.violations).write(baseline_path)

    second = run_checks(
        [bad_tree], rules=_rep001(), baseline=Baseline.load(baseline_path)
    )
    assert second.ok
    assert len(second.suppressed) == 1


def test_fingerprint_survives_unrelated_edits(bad_tree, tmp_path):
    first = run_checks([bad_tree], rules=_rep001())
    baseline = Baseline.from_violations(first.violations)
    # Shift the offending line down: line numbers change, content does not.
    (bad_tree / "mod.py").write_text(
        "# leading comment\n# another\n" + BAD, encoding="utf-8"
    )
    second = run_checks([bad_tree], rules=_rep001(), baseline=baseline)
    assert second.ok
    assert second.suppressed[0].line != first.violations[0].line


def test_new_copy_of_baselined_pattern_is_fresh(bad_tree):
    baseline = Baseline.from_violations(run_checks([bad_tree], rules=_rep001()).violations)
    # A second identical offending line exceeds the baselined count.
    (bad_tree / "mod.py").write_text(
        BAD + "\ndef more():\n    return np.random.rand(4)\n", encoding="utf-8"
    )
    result = run_checks([bad_tree], rules=_rep001(), baseline=baseline)
    assert len(result.suppressed) == 1
    assert len(result.violations) == 1


def test_new_violation_not_masked_by_baseline(bad_tree):
    baseline = Baseline.from_violations(run_checks([bad_tree], rules=_rep001()).violations)
    (bad_tree / "other.py").write_text(
        "import random\n\ndef pick(xs):\n    return random.choice(xs)\n",
        encoding="utf-8",
    )
    result = run_checks([bad_tree], rules=_rep001(), baseline=baseline)
    assert len(result.violations) == 1
    assert result.violations[0].path == "other.py"


def test_missing_baseline_file_is_empty():
    baseline = Baseline.load("/nonexistent/baseline.json")
    assert baseline.entries == {}


def test_unsupported_version_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": {}}), encoding="utf-8")
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


def test_written_baseline_is_reviewable_json(bad_tree, tmp_path):
    violations = run_checks([bad_tree], rules=_rep001()).violations
    path = tmp_path / "baseline.json"
    Baseline.from_violations(violations).write(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["version"] == 1
    (entry,) = data["entries"].values()
    assert entry["rule"] == "REP001"
    assert entry["path"] == "mod.py"
    assert entry["count"] == 1
    assert "np.random.rand" in entry["line"]
