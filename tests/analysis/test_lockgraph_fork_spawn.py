"""Lock-witness hygiene across multiprocessing start methods.

The invariant: worker-side lock traffic must never poison the parent's
acquisition-order graph.  Under ``fork`` the child inherits the patched
factories and the graph — ``os.register_at_fork`` clears the child's copy
so it starts empty (and its COW memory cannot reach the parent anyway).
Under ``spawn`` the child re-imports everything and never runs the pytest
plugin's enable, so it executes entirely unwitnessed.

Child entry points live at module level so ``spawn`` can pickle them.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

import pytest

from repro.analysis import lockgraph
from repro.analysis.lockgraph import LockWitness


@pytest.fixture
def isolated_witness():
    was_enabled = lockgraph.is_enabled()
    original = lockgraph.witness
    lockgraph.witness = LockWitness()
    lockgraph.enable()
    try:
        yield lockgraph.witness
    finally:
        lockgraph.disable()
        lockgraph.witness = original
        if was_enabled:
            lockgraph.enable()


def _nest_two_locks() -> None:
    first = threading.Lock()
    second = threading.Lock()
    with first:
        with second:
            pass


def _fork_child_probe(queue) -> None:
    """Runs in a fork child: report inherited state, then record edges."""
    inherited_edges = len(lockgraph.witness.edges_snapshot())
    _nest_two_locks()
    queue.put(
        {
            "pid": os.getpid(),
            "inherited_edges": inherited_edges,
            "enabled": lockgraph.is_enabled(),
            "edges_after": len(lockgraph.witness.edges_snapshot()),
        }
    )


def _spawn_child_probe(queue) -> None:
    """Runs in a spawn child: the witness must simply not be there."""
    import _thread

    queue.put(
        {
            "pid": os.getpid(),
            "enabled": lockgraph.is_enabled(),
            "lock_factory_is_raw": threading.Lock is _thread.allocate_lock,
            "edges": len(lockgraph.witness.edges_snapshot()),
        }
    )


class TestForkIsolation:
    def test_fork_child_starts_with_empty_graph(self, isolated_witness):
        _nest_two_locks()  # parent edge, recorded pre-fork
        assert len(isolated_witness.edges_snapshot()) == 1
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        child = ctx.Process(target=_fork_child_probe, args=(queue,))
        child.start()
        outcome = queue.get(timeout=30)
        child.join(timeout=30)
        assert child.exitcode == 0
        # register_at_fork wiped the inherited graph before the child ran.
        assert outcome["inherited_edges"] == 0
        # The child keeps witnessing into its own (COW) memory...
        assert outcome["enabled"] is True
        assert outcome["edges_after"] >= 1
        assert outcome["pid"] != os.getpid()

    def test_fork_child_edges_never_reach_parent(self, isolated_witness):
        before = isolated_witness.edges_snapshot()
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        child = ctx.Process(target=_fork_child_probe, args=(queue,))
        child.start()
        outcome = queue.get(timeout=30)
        child.join(timeout=30)
        assert outcome["edges_after"] >= 1
        after = isolated_witness.edges_snapshot()
        # Parent graph unchanged by anything the worker did...
        assert set(after) == set(before)
        # ...and every parent edge was recorded by the parent pid.
        assert all(info.pid == os.getpid() for info in after.values())

    def test_held_stack_does_not_leak_into_child(self, isolated_witness):
        # Fork while the parent holds a witnessed lock: the child's held
        # stack must be clean, or its first acquisition would record a
        # bogus parent-lock -> child-lock edge.
        held = threading.Lock()
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        with held:
            child = ctx.Process(target=_fork_child_probe, args=(queue,))
            child.start()
            outcome = queue.get(timeout=30)
            child.join(timeout=30)
        assert outcome["edges_after"] == 1  # just the child's own nest


class TestSpawnIsolation:
    def test_spawn_child_runs_unwitnessed(self, isolated_witness):
        _nest_two_locks()
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        child = ctx.Process(target=_spawn_child_probe, args=(queue,))
        child.start()
        outcome = queue.get(timeout=60)
        child.join(timeout=60)
        assert child.exitcode == 0
        assert outcome["enabled"] is False
        assert outcome["lock_factory_is_raw"] is True
        assert outcome["edges"] == 0
        # Parent still witnessed throughout.
        assert lockgraph.is_enabled()
        assert len(isolated_witness.edges_snapshot()) == 1


class TestProcessGauntletUnderWitness:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_process_executor_digest_with_witness(
        self, analysis_subject, start_method
    ):
        """The real worker path: process-pool gauntlet under the witness."""
        from repro.robustness import build_attack, run_gauntlet

        grid = {"overwrite": (0, 10)}

        def run():
            return run_gauntlet(
                {"m": analysis_subject},
                [build_attack("overwrite")],
                grid,
                max_workers=2,
                seed=7,
                evaluate_quality=False,
                mode="process",
                start_method=start_method,
            )

        was_enabled = lockgraph.is_enabled()
        if was_enabled:
            lockgraph.disable()
        reference = run()
        original = lockgraph.witness
        lockgraph.witness = LockWitness()
        lockgraph.enable()
        try:
            witnessed = run()
            report = lockgraph.witness.report()
        finally:
            lockgraph.disable()
            lockgraph.witness = original
            if was_enabled:
                lockgraph.enable()
        assert witnessed.decision_digest() == reference.decision_digest()
        assert report.ok, "\n" + report.render()
        # Worker pids never appear in the parent graph.
        assert all(info.pid == os.getpid() for info in report.edges.values())
