"""Analysis-suite fixtures: snippet-checking helpers and a tiny subject.

The rule tests are *fixture pairs*: for every rule, at least one bad
snippet that must trip it and one good snippet that must not.  Snippets are
written into a temp tree (some rules key off path structure — the ``obs``
package, the blessed ``shm.py`` module, the ``tests`` exemption) and run
through the real :func:`repro.analysis.run_checks` pipeline.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

import pytest

from repro.analysis import Violation, all_rules, run_checks
from repro.core.config import EmMarkConfig
from repro.engine import WatermarkEngine
from repro.robustness import GauntletSubject


@pytest.fixture
def check_tree(tmp_path):
    """Write ``{relpath: source}`` into a temp tree and run one rule on it."""

    def _check(files: Dict[str, str], rule_id: str) -> List[Violation]:
        root = tmp_path / "tree"
        for relpath, source in files.items():
            target = root / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")
        rules = [rule for rule in all_rules() if rule.rule_id == rule_id]
        assert rules, f"unknown rule id {rule_id}"
        result = run_checks([root], rules=rules)
        return result.violations

    return _check


@pytest.fixture
def check_snippet(check_tree):
    """Run one rule over a single module body (written as ``mod.py``)."""

    def _check(source: str, rule_id: str, relpath: str = "mod.py") -> List[Violation]:
        return check_tree({relpath: source}, rule_id)

    return _check


@pytest.fixture(scope="session")
def analysis_subject(quantized_awq4, activation_stats):
    """A small watermarked subject for witness-on/off digest equivalence."""
    engine = WatermarkEngine()
    config = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8)
    watermarked, key, _ = engine.insert(quantized_awq4, activation_stats, config=config)
    return GauntletSubject(model=watermarked, key=key, harness=None)


@pytest.fixture(scope="session")
def repo_src() -> Path:
    return Path(__file__).resolve().parents[2] / "src"
