"""The dynamic lock-order witness: graph recording and cycle detection.

Tests swap in a fresh :class:`LockWitness` (and restore the previous state
afterwards) so they neither pollute nor depend on a suite-wide
``--lock-witness`` run that may be active around them.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import lockgraph
from repro.analysis.lockgraph import (
    Edge,
    LockWitness,
    SelfDeadlockError,
    WitnessLock,
    WitnessRLock,
)


@pytest.fixture
def isolated_witness():
    """A fresh, enabled witness; prior global state restored on exit."""
    was_enabled = lockgraph.is_enabled()
    original = lockgraph.witness
    lockgraph.witness = LockWitness()
    lockgraph.enable()
    try:
        yield lockgraph.witness
    finally:
        lockgraph.disable()
        lockgraph.witness = original
        if was_enabled:
            lockgraph.enable()


def _ordered_acquire(lock_a, lock_b, barrier=None):
    with lock_a:
        if barrier is not None:
            barrier.wait()
        with lock_b:
            pass


class TestGraphRecording:
    def test_nested_acquire_records_edge(self, isolated_witness):
        a = threading.Lock()
        b = threading.Lock()
        _ordered_acquire(a, b)
        edges = isolated_witness.edges_snapshot()
        assert any(
            edge.src == a._name and edge.dst == b._name for edge in edges
        )

    def test_names_are_creation_sites(self, isolated_witness):
        lock = threading.Lock()
        assert lock._name.startswith("test_lockgraph.py:")

    def test_nonblocking_acquire_records_no_edge(self, isolated_witness):
        a = threading.Lock()
        b = threading.Lock()
        with a:
            assert b.acquire(False)
            b.release()
        assert isolated_witness.edges_snapshot() == {}

    def test_consistent_order_in_two_threads_is_clean(self, isolated_witness):
        a = threading.Lock()
        b = threading.Lock()
        threads = [
            threading.Thread(target=_ordered_acquire, args=(a, b))
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = isolated_witness.report()
        assert report.ok
        assert report.cycles == []

    def test_opposite_orders_in_two_threads_report_cycle(self, isolated_witness):
        # Classic AB/BA deadlock seed.  Run sequentially in two threads so
        # both orderings land in the graph without ever actually deadlocking.
        # (Distinct lines: locks are *named by creation site*.)
        a = threading.Lock()
        b = threading.Lock()
        t1 = threading.Thread(target=_ordered_acquire, args=(a, b))
        t1.start()
        t1.join()
        t2 = threading.Thread(target=_ordered_acquire, args=(b, a))
        t2.start()
        t2.join()
        report = isolated_witness.report()
        assert not report.ok
        assert len(report.cycles) == 1
        assert set(report.cycles[0]) == {a._name, b._name}
        rendered = report.render()
        assert "CYCLE" in rendered
        assert a._name in rendered

    def test_edges_carry_pid_and_thread(self, isolated_witness):
        import os

        a = threading.Lock()
        b = threading.Lock()
        worker = threading.Thread(
            target=_ordered_acquire, args=(a, b), name="order-worker"
        )
        worker.start()
        worker.join()
        (info,) = isolated_witness.edges_snapshot().values()
        assert info.pid == os.getpid()
        assert info.thread_name == "order-worker"
        assert info.count == 1

    def test_same_creation_site_pool_does_not_self_cycle(self, isolated_witness):
        # Many locks born at one site (a per-key pool) must not produce
        # name-level self-edges however they nest.
        pool = [threading.Lock() for _ in range(3)]
        with pool[0]:
            with pool[1]:
                with pool[2]:
                    pass
        report = isolated_witness.report()
        assert report.ok
        assert all(edge.src != edge.dst for edge in report.edges)


class TestLockSemantics:
    def test_self_deadlock_raises(self, isolated_witness):
        lock = threading.Lock()
        with lock:
            with pytest.raises(SelfDeadlockError):
                lock.acquire()
        report = isolated_witness.report()
        assert report.self_deadlocks
        assert not report.ok

    def test_rlock_reentry_is_legal(self, isolated_witness):
        rlock = threading.RLock()
        with rlock:
            with rlock:
                pass
        assert rlock.acquire()
        rlock.release()
        assert isolated_witness.report().ok

    def test_condition_with_witnessed_lock(self, isolated_witness):
        # Condition wraps a witnessed plain Lock: wait/notify must work and
        # the held stack must stay truthful across the wait's release.
        lock = threading.Lock()
        condition = threading.Condition(lock)
        ready = []

        def consumer():
            with condition:
                while not ready:
                    condition.wait(timeout=5)

        worker = threading.Thread(target=consumer)
        worker.start()
        with condition:
            ready.append(1)
            condition.notify()
        worker.join(timeout=5)
        assert not worker.is_alive()
        assert isolated_witness.report().ok

    def test_condition_with_witnessed_rlock(self, isolated_witness):
        condition = threading.Condition(threading.RLock())
        with condition:
            condition.notify_all()
        assert isolated_witness.report().ok

    def test_event_and_thread_machinery_survive_patching(self, isolated_witness):
        event = threading.Event()
        worker = threading.Thread(target=event.set)
        worker.start()
        assert event.wait(timeout=5)
        worker.join(timeout=5)
        assert isolated_witness.report().ok

    def test_wrapped_locks_survive_disable(self, isolated_witness):
        lock = threading.Lock()
        lockgraph.disable()
        try:
            with lock:
                pass  # wrapper still functions, just records nothing
        finally:
            lockgraph.enable()


class TestEnableDisable:
    def test_factories_patched_and_restored(self, isolated_witness):
        assert isinstance(threading.Lock(), WitnessLock)
        assert isinstance(threading.RLock(), WitnessRLock)
        lockgraph.disable()
        try:
            assert not isinstance(threading.Lock(), WitnessLock)
            assert not isinstance(threading.RLock(), WitnessRLock)
        finally:
            lockgraph.enable()

    def test_reset_clears_graph(self, isolated_witness):
        a = threading.Lock()
        b = threading.Lock()
        _ordered_acquire(a, b)
        assert isolated_witness.edges_snapshot()
        isolated_witness.reset()
        assert isolated_witness.edges_snapshot() == {}
        assert isolated_witness.report().locks_seen == 0


class TestCycleDetector:
    def _witness_with_edges(self, pairs):
        witness = LockWitness()
        for src, dst in pairs:
            witness._edges[Edge(src, dst)] = lockgraph.EdgeInfo(count=1)
        return witness

    def test_two_cycle(self):
        witness = self._witness_with_edges([("A", "B"), ("B", "A")])
        (cycle,) = witness.find_cycles()
        assert set(cycle) == {"A", "B"}

    def test_three_cycle_through_chain(self):
        witness = self._witness_with_edges(
            [("A", "B"), ("B", "C"), ("C", "A"), ("C", "D")]
        )
        (cycle,) = witness.find_cycles()
        assert set(cycle) == {"A", "B", "C"}

    def test_dag_is_clean(self):
        witness = self._witness_with_edges(
            [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]
        )
        assert witness.find_cycles() == []

    def test_two_disjoint_cycles(self):
        witness = self._witness_with_edges(
            [("A", "B"), ("B", "A"), ("C", "D"), ("D", "C")]
        )
        cycles = witness.find_cycles()
        assert len(cycles) == 2
        assert {frozenset(c) for c in cycles} == {
            frozenset({"A", "B"}),
            frozenset({"C", "D"}),
        }


class TestEngineIntegration:
    def test_gauntlet_digest_identical_with_witness(self, analysis_subject):
        """Acceptance gate: decisions bit-identical, witness on vs off."""
        from repro.robustness import build_attack, run_gauntlet

        grid = {"overwrite": (0, 10), "pruning": (0.3,)}

        def run():
            return run_gauntlet(
                {"m": analysis_subject},
                [build_attack("overwrite"), build_attack("pruning")],
                grid,
                max_workers=2,
                seed=7,
                evaluate_quality=False,
            )

        was_enabled = lockgraph.is_enabled()
        if was_enabled:
            lockgraph.disable()
        reference = run()
        original = lockgraph.witness
        lockgraph.witness = LockWitness()
        lockgraph.enable()
        try:
            witnessed = run()
            report = lockgraph.witness.report()
        finally:
            lockgraph.disable()
            lockgraph.witness = original
            if was_enabled:
                lockgraph.enable()
        assert witnessed.decision_digest() == reference.decision_digest()
        for ours, theirs in zip(witnessed.cells, reference.cells):
            assert ours.decision_fields() == theirs.decision_fields()
        # The run exercised real engine locks without ordering violations.
        assert report.ok, "\n" + report.render()
        assert report.locks_seen > 0
