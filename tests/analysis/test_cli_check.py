"""The ``repro check`` sub-command: exit codes, flags, JSON output."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main

BAD = textwrap.dedent(
    """
    import numpy as np

    def sample():
        return np.random.rand(4)
    """
).lstrip("\n")

GOOD = textwrap.dedent(
    """
    import numpy as np

    def sample(seed):
        return np.random.default_rng(seed).normal(size=3)
    """
).lstrip("\n")


@pytest.fixture
def bad_tree(tmp_path):
    root = tmp_path / "bad"
    root.mkdir()
    (root / "mod.py").write_text(BAD, encoding="utf-8")
    return root


@pytest.fixture
def good_tree(tmp_path):
    root = tmp_path / "good"
    root.mkdir()
    (root / "mod.py").write_text(GOOD, encoding="utf-8")
    return root


def test_clean_tree_exits_zero(good_tree, capsys):
    assert main(["check", str(good_tree)]) == 0
    assert "0 violation(s)" in capsys.readouterr().out


def test_violations_exit_one_with_location_and_hint(bad_tree, capsys):
    assert main(["check", str(bad_tree)]) == 1
    out = capsys.readouterr().out
    assert "mod.py:4" in out
    assert "REP001" in out
    assert "hint:" in out


def test_json_output(bad_tree, capsys):
    assert main(["check", "--json", str(bad_tree)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    (violation,) = payload["violations"]
    assert violation["rule"] == "REP001"
    assert violation["fingerprint"]


def test_rule_filter(bad_tree):
    assert main(["check", "--rule", "REP002", str(bad_tree)]) == 0
    assert main(["check", "--rule", "REP001", str(bad_tree)]) == 1


def test_unknown_rule_exits_two(bad_tree, capsys):
    assert main(["check", "--rule", "REP999", str(bad_tree)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_exits_two(tmp_path, capsys):
    assert main(["check", str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ["REP001", "REP002", "REP003", "REP004",
                    "REP005", "REP006", "REP007", "REP008"]:
        assert rule_id in out


def test_write_then_use_baseline(bad_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["check", "--write-baseline", str(baseline), str(bad_tree)]) == 0
    assert baseline.exists()
    capsys.readouterr()
    assert main(["check", "--baseline", str(baseline), str(bad_tree)]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # A regression beyond the baseline still fails.
    (bad_tree / "extra.py").write_text(BAD, encoding="utf-8")
    assert main(["check", "--baseline", str(baseline), str(bad_tree)]) == 1


def test_malformed_baseline_exits_two(bad_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"version": 42}), encoding="utf-8")
    assert main(["check", "--baseline", str(baseline), str(bad_tree)]) == 2
    assert "version" in capsys.readouterr().err
