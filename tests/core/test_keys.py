"""WatermarkKey serialization, fingerprinting and error paths.

Covers the registry-facing contract: the directory save/load round trip must
preserve every field the verification pipeline consumes (config, activation
statistics, reference weights, outliers), fingerprints must be stable and
content-sensitive, and corrupted files must fail loudly with a clear error
instead of producing a subtly wrong key.
"""

import numpy as np
import pytest

from repro.core.config import EmMarkConfig
from repro.core.keys import WatermarkKey, layer_shapes_fingerprint, model_fingerprint
from repro.engine import WatermarkEngine


@pytest.fixture(scope="module")
def inserted(quantized_awq4, activation_stats):
    """One insertion shared by the module: (watermarked model, key)."""
    config = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8)
    engine = WatermarkEngine()
    watermarked, key, _ = engine.insert(quantized_awq4, activation_stats, config=config)
    return watermarked, key


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_signature_and_config(self, inserted, tmp_path):
        _, key = inserted
        key.save(tmp_path / "key")
        loaded = WatermarkKey.load(tmp_path / "key")
        np.testing.assert_array_equal(loaded.signature, key.signature)
        assert loaded.config == key.config
        assert loaded.layer_names == key.layer_names
        assert loaded.method == key.method
        assert loaded.bits == key.bits
        assert loaded.model_name == key.model_name

    def test_round_trip_preserves_reference_weights_and_outliers(self, inserted, tmp_path):
        _, key = inserted
        key.save(tmp_path / "key")
        loaded = WatermarkKey.load(tmp_path / "key")
        assert set(loaded.reference_weights) == set(key.reference_weights)
        for name in key.reference_weights:
            np.testing.assert_array_equal(
                loaded.reference_weights[name], key.reference_weights[name]
            )
        assert set(loaded.outlier_columns) == set(key.outlier_columns)
        for name in key.outlier_columns:
            np.testing.assert_array_equal(
                loaded.outlier_columns[name], key.outlier_columns[name]
            )

    def test_round_trip_preserves_activation_stats(self, inserted, tmp_path):
        """Activation fidelity is what makes reloaded keys reproduce locations."""
        _, key = inserted
        key.save(tmp_path / "key")
        loaded = WatermarkKey.load(tmp_path / "key")
        assert set(loaded.activations.layers()) == set(key.activations.layers())
        for name in key.activations.layers():
            np.testing.assert_allclose(
                loaded.activations.channel_saliency(name),
                key.activations.channel_saliency(name),
            )

    def test_loaded_key_extracts_at_full_wer(self, inserted, tmp_path):
        watermarked, key = inserted
        key.save(tmp_path / "key")
        loaded = WatermarkKey.load(tmp_path / "key")
        result = WatermarkEngine().extract(watermarked, loaded)
        assert result.wer_percent == 100.0

    def test_metadata_round_trip(self, inserted, tmp_path):
        _, key = inserted
        key.metadata["owner"] = "acme"
        try:
            key.save(tmp_path / "key")
        finally:
            key.metadata.pop("owner")
        loaded = WatermarkKey.load(tmp_path / "key")
        assert loaded.metadata == {"owner": "acme"}


class TestCorruptedFiles:
    def test_missing_directory_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            WatermarkKey.load(tmp_path / "nope")

    def test_missing_archive_raises_file_not_found(self, inserted, tmp_path):
        _, key = inserted
        key.save(tmp_path / "key")
        (tmp_path / "key" / "watermark_key.npz").unlink()
        with pytest.raises(FileNotFoundError):
            WatermarkKey.load(tmp_path / "key")

    def test_corrupted_json_raises_value_error(self, inserted, tmp_path):
        _, key = inserted
        key.save(tmp_path / "key")
        (tmp_path / "key" / "watermark_key.json").write_text("{not json")
        with pytest.raises(ValueError, match="corrupted watermark key metadata"):
            WatermarkKey.load(tmp_path / "key")

    def test_corrupted_archive_raises_value_error(self, inserted, tmp_path):
        _, key = inserted
        key.save(tmp_path / "key")
        (tmp_path / "key" / "watermark_key.npz").write_bytes(b"\x00garbage\xff" * 16)
        with pytest.raises(ValueError, match="corrupted watermark key archive"):
            WatermarkKey.load(tmp_path / "key")

    def test_inconsistent_meta_raises_value_error(self, inserted, tmp_path):
        """Metadata referencing layers absent from the archive must not load."""
        _, key = inserted
        meta, arrays = key.to_payload()
        meta = dict(meta)
        meta["layer_names"] = list(meta["layer_names"]) + ["blocks.99.attn.q_proj"]
        with pytest.raises(ValueError):
            WatermarkKey.from_payload(meta, arrays)


class TestFingerprints:
    def test_fingerprint_is_stable(self, inserted):
        _, key = inserted
        assert key.fingerprint() == key.fingerprint()
        assert key.fingerprint().startswith("wmk-")

    def test_fingerprint_survives_round_trip(self, inserted, tmp_path):
        _, key = inserted
        key.save(tmp_path / "key")
        assert WatermarkKey.load(tmp_path / "key").fingerprint() == key.fingerprint()

    def test_fingerprint_changes_with_signature(self, inserted):
        _, key = inserted
        flipped = WatermarkKey(
            signature=-key.signature,
            config=key.config,
            reference_weights=key.reference_weights,
            activations=key.activations,
            layer_names=key.layer_names,
            method=key.method,
            bits=key.bits,
            model_name=key.model_name,
            outlier_columns=key.outlier_columns,
        )
        assert flipped.fingerprint() != key.fingerprint()

    def test_fingerprint_changes_with_seed(self, inserted):
        _, key = inserted
        reseeded = WatermarkKey(
            signature=key.signature,
            config=key.config.with_overrides(seed=key.config.seed + 1),
            reference_weights=key.reference_weights,
            activations=key.activations,
            layer_names=key.layer_names,
            method=key.method,
            bits=key.bits,
            model_name=key.model_name,
        )
        assert reseeded.fingerprint() != key.fingerprint()

    def test_fingerprint_changes_with_reference_weights(self, inserted):
        """A retrained same-name model must not collide with the old key."""
        _, key = inserted
        retrained_weights = {
            name: weights.copy() for name, weights in key.reference_weights.items()
        }
        first = key.reference_weights[key.layer_names[0]]
        retrained_weights[key.layer_names[0]] = np.where(first < 0, first + 1, first - 1)
        retrained = WatermarkKey(
            signature=key.signature,
            config=key.config,
            reference_weights=retrained_weights,
            activations=key.activations,
            layer_names=key.layer_names,
            method=key.method,
            bits=key.bits,
            model_name=key.model_name,
        )
        assert retrained.fingerprint() != key.fingerprint()

    def test_fingerprint_changes_with_activations(self, inserted):
        """Re-collected calibration activations move locations → new key id."""
        _, key = inserted
        perturbed = {
            name: key.activations.channel_saliency(name) * 1.5
            for name in key.activations.layers()
        }
        from repro.models.activations import ActivationStats

        recalibrated = WatermarkKey(
            signature=key.signature,
            config=key.config,
            reference_weights=key.reference_weights,
            activations=ActivationStats(mean_abs=perturbed),
            layer_names=key.layer_names,
            method=key.method,
            bits=key.bits,
            model_name=key.model_name,
        )
        assert recalibrated.fingerprint() != key.fingerprint()

    def test_model_fingerprint_matches_suspects_of_same_model(self, inserted, quantized_awq4):
        """The key's index entry matches both clean and watermarked deployments."""
        watermarked, key = inserted
        assert key.model_fingerprint() == model_fingerprint(quantized_awq4)
        assert key.model_fingerprint() == model_fingerprint(watermarked)

    def test_model_fingerprint_distinguishes_precision(self, quantized_awq4, quantized_int8):
        assert model_fingerprint(quantized_awq4) != model_fingerprint(quantized_int8)

    def test_layer_shapes_fingerprint_sensitive_to_shape(self):
        base = {"a": (4, 8)}
        same = layer_shapes_fingerprint("m", "awq", 4, base)
        assert same == layer_shapes_fingerprint("m", "awq", 4, {"a": (4, 8)})
        assert same != layer_shapes_fingerprint("m", "awq", 4, {"a": (8, 4)})
        assert same != layer_shapes_fingerprint("m", "awq", 8, base)
        assert same != layer_shapes_fingerprint("other", "awq", 4, base)
