"""Tests for the parameter-scoring function (Equations 2-4)."""

import numpy as np
import pytest

from repro.core.scoring import (
    combined_score,
    quality_score,
    robustness_score,
    select_candidates,
)
from repro.quant.base import QuantizationGrid, QuantizedLinear


def make_layer(weight_int, bits=4, **kwargs):
    weight_int = np.asarray(weight_int)
    return QuantizedLinear(
        name="probe",
        weight_int=weight_int,
        scale=np.ones((weight_int.shape[0], 1)),
        grid=QuantizationGrid(bits),
        **kwargs,
    )


class TestQualityScore:
    def test_larger_magnitude_scores_lower(self):
        layer = make_layer([[1, 6], [3, 2]])
        scores = quality_score(layer)
        assert scores[0, 1] < scores[0, 0]
        assert scores[1, 0] < scores[1, 1]

    def test_equation_value(self):
        layer = make_layer([[2, 4]])
        scores = quality_score(layer)
        assert scores[0, 0] == pytest.approx(0.5)
        assert scores[0, 1] == pytest.approx(0.25)

    def test_zero_weight_excluded(self):
        layer = make_layer([[0, 3]])
        scores = quality_score(layer)
        assert np.isinf(scores[0, 0])

    def test_saturated_weights_excluded(self):
        layer = make_layer([[7, -7, 3]])
        scores = quality_score(layer)
        assert np.isinf(scores[0, 0]) and np.isinf(scores[0, 1])
        assert np.isfinite(scores[0, 2])

    def test_saturation_exclusion_can_be_disabled(self):
        layer = make_layer([[7, 3]])
        scores = quality_score(layer, exclude_saturated=False)
        assert np.isfinite(scores[0, 0])

    def test_outlier_columns_excluded(self):
        layer = make_layer(
            [[0, 3], [0, 2]],
            outlier_columns=np.array([0]),
            outlier_weight=np.array([[1.0], [1.0]]),
        )
        scores = quality_score(layer)
        assert np.all(np.isinf(scores[:, 0]))


class TestRobustnessScore:
    def test_most_salient_channel_scores_lowest(self):
        layer = make_layer([[1, 1, 1]])
        activations = np.array([0.1, 5.0, 1.0])
        scores = robustness_score(layer, activations)
        assert np.argmin(scores[0]) == 1

    def test_least_salient_channel_excluded(self):
        layer = make_layer([[1, 1, 1]])
        scores = robustness_score(layer, np.array([0.1, 5.0, 1.0]))
        assert np.isinf(scores[0, 0])

    def test_equation_value(self):
        layer = make_layer([[1, 1]])
        scores = robustness_score(layer, np.array([1.0, 3.0]))
        # S_r = |max/ (A_i - min)| = 3 / (3 - 1) = 1.5 for the salient channel.
        assert scores[0, 1] == pytest.approx(1.5)

    def test_broadcast_across_rows(self):
        layer = make_layer([[1, 2], [3, 4]])
        scores = robustness_score(layer, np.array([1.0, 2.0]))
        np.testing.assert_allclose(scores[0], scores[1])

    def test_channel_count_validated(self):
        layer = make_layer([[1, 2]])
        with pytest.raises(ValueError):
            robustness_score(layer, np.array([1.0, 2.0, 3.0]))


class TestCombinedScore:
    def test_weighted_sum(self):
        layer = make_layer([[2, 4]])
        activations = np.array([1.0, 2.0])
        s_q = quality_score(layer)
        s_r = robustness_score(layer, activations)
        combined = combined_score(layer, activations, alpha=0.3, beta=0.7)
        expected = 0.3 * s_q + 0.7 * s_r
        finite = np.isfinite(expected)
        np.testing.assert_allclose(combined[finite], expected[finite])

    def test_alpha_zero_keeps_exclusions(self):
        layer = make_layer([[7, 3, 0]])
        combined = combined_score(layer, np.array([1.0, 2.0, 3.0]), alpha=0.0, beta=1.0)
        assert np.isinf(combined[0, 0])      # saturated stays excluded
        assert np.isfinite(combined[0, 2])   # zero weight allowed when alpha == 0

    def test_negative_coefficients_rejected(self):
        layer = make_layer([[1, 2]])
        with pytest.raises(ValueError):
            combined_score(layer, np.array([1.0, 2.0]), alpha=-1.0, beta=1.0)


class TestSelectCandidates:
    def test_pool_size_respected(self):
        layer = make_layer(np.arange(1, 26).reshape(5, 5) % 6 - 3, bits=4)
        activations = np.linspace(0.5, 2.0, 5)
        result = select_candidates(layer, activations, 0.5, 0.5, pool_size=6)
        assert result.num_candidates == 6

    def test_candidates_sorted_by_score(self):
        layer = make_layer([[1, 2, 3, 4, 5, 6]])
        activations = np.linspace(1.0, 2.0, 6)
        result = select_candidates(layer, activations, 1.0, 0.0, pool_size=4)
        flat_scores = result.scores.reshape(-1)
        candidate_scores = flat_scores[result.candidate_indices]
        assert np.all(np.diff(candidate_scores) >= 0)

    def test_candidates_exclude_infinite_scores(self):
        layer = make_layer([[7, 0, 3, 4]])
        activations = np.array([1.0, 2.0, 3.0, 4.0])
        result = select_candidates(layer, activations, 0.5, 0.5, pool_size=10)
        flat_scores = result.scores.reshape(-1)
        assert np.all(np.isfinite(flat_scores[result.candidate_indices]))

    def test_all_excluded_raises(self):
        layer = make_layer([[7, -7], [0, 0]])
        with pytest.raises(ValueError):
            select_candidates(layer, np.array([1.0, 2.0]), 0.5, 0.5, pool_size=2)

    def test_pool_size_validated(self):
        layer = make_layer([[1, 2]])
        with pytest.raises(ValueError):
            select_candidates(layer, np.array([1.0, 2.0]), 0.5, 0.5, pool_size=0)

    def test_salient_large_weights_preferred(self):
        """With the paper's coefficients the best candidates combine both criteria."""
        weight = np.array([
            [6, 1, 6, 1],
            [6, 1, 6, 1],
        ])
        activations = np.array([5.0, 5.0, 0.5, 0.5])
        layer = make_layer(weight)
        result = select_candidates(layer, activations, 0.5, 0.5, pool_size=2)
        rows, cols = np.unravel_index(result.candidate_indices, weight.shape)
        # Both winners must be the large weights in the salient channel 0.
        assert set(cols.tolist()) == {0}
        assert all(weight[r, c] == 6 for r, c in zip(rows, cols))
