"""Tests for the EmMark facade."""

import numpy as np
import pytest

from repro.core.config import EmMarkConfig
from repro.core.emmark import EmMark
from repro.core.keys import WatermarkKey


class TestKeyBasedAPI:
    def test_insert_and_extract_round_trip(self, quantized_awq4, activation_stats):
        emmark = EmMark(EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=6))
        watermarked, key, report = emmark.insert_with_key(quantized_awq4, activation_stats)
        assert isinstance(key, WatermarkKey)
        assert report.total_bits == key.total_bits
        assert emmark.extract_with_key(watermarked, key).wer_percent == 100.0

    def test_verify(self, quantized_awq4, activation_stats):
        emmark = EmMark(EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=6))
        watermarked, key, _ = emmark.insert_with_key(quantized_awq4, activation_stats)
        assert emmark.verify(watermarked, key)
        assert not emmark.verify(quantized_awq4, key)

    def test_config_override_at_call_time(self, quantized_awq4, activation_stats):
        emmark = EmMark()
        override = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=3)
        _, key, _ = emmark.insert_with_key(quantized_awq4, activation_stats, config=override)
        assert key.config.bits_per_layer == 3

    def test_default_config_derived_from_model(self, quantized_awq4, activation_stats):
        emmark = EmMark()
        _, key, _ = emmark.insert_with_key(quantized_awq4, activation_stats)
        expected = EmMarkConfig.scaled_for_model(quantized_awq4)
        assert key.config.bits_per_layer == expected.bits_per_layer

    def test_key_metadata(self, quantized_awq4, activation_stats):
        emmark = EmMark(EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=4))
        _, key, _ = emmark.insert_with_key(quantized_awq4, activation_stats)
        assert key.method == quantized_awq4.method
        assert key.bits == quantized_awq4.bits
        assert key.model_name == quantized_awq4.config.name


class TestWatermarkerInterface:
    def test_watermark_and_verify_round_trip(self, quantized_awq4, activation_stats):
        emmark = EmMark(EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=5))
        watermarked, record, extraction = emmark.watermark_and_verify(
            quantized_awq4, activations=activation_stats
        )
        assert record.method == "emmark"
        assert extraction.wer_percent == 100.0
        assert record.total_bits == extraction.total_bits

    def test_insert_requires_activations(self, quantized_awq4):
        emmark = EmMark()
        with pytest.raises(ValueError):
            emmark.insert(quantized_awq4)

    def test_extract_requires_emmark_record(self, quantized_awq4, activation_stats):
        emmark = EmMark(EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=5))
        _, record = emmark.insert(quantized_awq4, activations=activation_stats)
        record.payload.pop("key")
        with pytest.raises(ValueError):
            emmark.extract(quantized_awq4, record)

    def test_original_model_untouched(self, quantized_awq4, activation_stats):
        snapshot = quantized_awq4.integer_weight_snapshot()
        emmark = EmMark(EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=5))
        emmark.insert(quantized_awq4, activations=activation_stats)
        for name, weights in snapshot.items():
            np.testing.assert_array_equal(weights, quantized_awq4.get_layer(name).weight_int)
