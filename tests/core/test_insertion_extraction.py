"""Tests for watermark insertion, key handling and extraction."""

import numpy as np
import pytest

from repro.core.config import EmMarkConfig
from repro.core.extraction import extract_watermark, reproduce_locations, verify_ownership
from repro.core.insertion import insert_watermark
from repro.core.keys import WatermarkKey
from repro.core.signature import generate_signature


@pytest.fixture(scope="module")
def inserted(quantized_awq4_module, activation_stats_module):
    config = EmMarkConfig.scaled_for_model(quantized_awq4_module, bits_per_layer=8)
    return insert_watermark(quantized_awq4_module, activation_stats_module, config=config)


# Module-scoped aliases of the session fixtures so `inserted` can be module-scoped.
@pytest.fixture(scope="module")
def quantized_awq4_module(request):
    return request.getfixturevalue("quantized_awq4")


@pytest.fixture(scope="module")
def activation_stats_module(request):
    return request.getfixturevalue("activation_stats")


class TestInsertion:
    def test_returns_clone_by_default(self, inserted, quantized_awq4):
        watermarked, _, _ = inserted
        assert watermarked is not quantized_awq4

    def test_exactly_bits_per_layer_weights_changed(self, inserted, quantized_awq4):
        watermarked, key, _ = inserted
        diff = watermarked.weight_difference(quantized_awq4)
        for name in watermarked.layer_names():
            changed = np.count_nonzero(diff[name])
            assert changed == key.config.bits_per_layer

    def test_changes_are_plus_minus_one(self, inserted, quantized_awq4):
        watermarked, _, _ = inserted
        diff = watermarked.weight_difference(quantized_awq4)
        for delta in diff.values():
            nonzero = delta[delta != 0]
            assert set(np.unique(nonzero)) <= {-1, 1}

    def test_no_weight_leaves_grid(self, inserted):
        watermarked, _, _ = inserted
        for layer in watermarked.iter_layers():
            assert layer.weight_int.max() <= layer.grid.qmax
            assert layer.weight_int.min() >= layer.grid.qmin

    def test_saturated_positions_never_selected(self, inserted, quantized_awq4):
        watermarked, _, _ = inserted
        diff = watermarked.weight_difference(quantized_awq4)
        for name, layer in quantized_awq4.layers.items():
            changed_positions = np.flatnonzero(diff[name].reshape(-1))
            saturated = np.flatnonzero(layer.saturated_mask().reshape(-1))
            assert not set(changed_positions.tolist()) & set(saturated.tolist())

    def test_report_contents(self, inserted, quantized_awq4):
        _, key, report = inserted
        assert report.num_layers == quantized_awq4.num_quantization_layers
        assert report.total_bits == key.total_bits
        assert len(report.per_layer_seconds) == report.num_layers
        assert report.mean_seconds_per_layer >= 0
        assert report.total_seconds >= 0

    def test_in_place_insertion(self, quantized_awq4, activation_stats):
        target = quantized_awq4.clone()
        config = EmMarkConfig.scaled_for_model(target, bits_per_layer=4)
        watermarked, _, _ = insert_watermark(
            target, activation_stats, config=config, in_place=True
        )
        assert watermarked is target

    def test_explicit_signature_used(self, quantized_awq4, activation_stats):
        config = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=4)
        signature = generate_signature(config.total_bits(quantized_awq4.num_quantization_layers), 77)
        _, key, _ = insert_watermark(
            quantized_awq4, activation_stats, config=config, signature=signature
        )
        np.testing.assert_array_equal(key.signature, signature)

    def test_wrong_signature_length_rejected(self, quantized_awq4, activation_stats):
        config = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=4)
        with pytest.raises(ValueError):
            insert_watermark(
                quantized_awq4, activation_stats, config=config,
                signature=np.array([1, -1, 1]),
            )

    def test_missing_activations_rejected(self, quantized_awq4, activation_stats):
        from repro.models.activations import ActivationStats

        partial = ActivationStats(mean_abs={
            name: activation_stats.mean_abs[name]
            for name in list(activation_stats.mean_abs)[:2]
        })
        with pytest.raises(ValueError):
            insert_watermark(quantized_awq4, partial)

    def test_oversized_payload_rejected(self, quantized_awq4, activation_stats):
        config = EmMarkConfig.scaled_for_model(
            quantized_awq4, bits_per_layer=10_000, max_candidate_fraction=1.0
        )
        with pytest.raises(ValueError):
            insert_watermark(quantized_awq4, activation_stats, config=config)

    def test_insertion_is_deterministic(self, quantized_awq4, activation_stats):
        config = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=4)
        a, _, _ = insert_watermark(quantized_awq4, activation_stats, config=config)
        b, _, _ = insert_watermark(quantized_awq4, activation_stats, config=config)
        for name in a.layer_names():
            np.testing.assert_array_equal(
                a.get_layer(name).weight_int, b.get_layer(name).weight_int
            )


class TestExtraction:
    def test_self_extraction_is_perfect(self, inserted):
        watermarked, key, _ = inserted
        result = extract_watermark(watermarked, key)
        assert result.wer_percent == 100.0
        assert result.fully_extracted
        assert result.matched_bits == key.total_bits

    def test_non_watermarked_model_gives_zero(self, inserted, quantized_awq4):
        _, key, _ = inserted
        result = extract_watermark(quantized_awq4, key)
        assert result.wer_percent == 0.0
        assert result.false_claim_probability == pytest.approx(1.0)

    def test_per_layer_wer_reported(self, inserted):
        watermarked, key, _ = inserted
        result = extract_watermark(watermarked, key)
        assert set(result.per_layer_wer) == set(key.layer_names)
        assert all(v == 100.0 for v in result.per_layer_wer.values())

    def test_false_claim_probability_small_for_full_match(self, inserted):
        watermarked, key, _ = inserted
        result = extract_watermark(watermarked, key)
        assert result.false_claim_probability < 1e-20

    def test_locations_match_insertion_diff(self, inserted, quantized_awq4):
        watermarked, key, _ = inserted
        locations = reproduce_locations(key)
        diff = watermarked.weight_difference(quantized_awq4)
        for name in key.layer_names:
            changed = set(np.flatnonzero(diff[name].reshape(-1)).tolist())
            assert changed == set(np.asarray(locations[name]).tolist())

    def test_different_seed_reproduces_different_locations(self, inserted):
        _, key, _ = inserted
        original = reproduce_locations(key)
        altered_key = WatermarkKey(
            signature=key.signature,
            config=key.config.with_overrides(seed=key.config.seed + 1),
            reference_weights=key.reference_weights,
            activations=key.activations,
            layer_names=key.layer_names,
            method=key.method,
            bits=key.bits,
            model_name=key.model_name,
            outlier_columns=key.outlier_columns,
        )
        altered = reproduce_locations(altered_key)
        overlaps = [
            len(set(original[n].tolist()) & set(altered[n].tolist())) / len(original[n])
            for n in key.layer_names
        ]
        assert np.mean(overlaps) < 0.9

    def test_partial_damage_partial_wer(self, inserted):
        watermarked, key, _ = inserted
        damaged = watermarked.clone()
        locations = reproduce_locations(key)
        # Undo the watermark in half the layers.
        for name in key.layer_names[: len(key.layer_names) // 2]:
            layer = damaged.get_layer(name)
            flat = layer.weight_int.reshape(-1)
            flat[locations[name]] = key.reference_weights[name].reshape(-1)[locations[name]]
        result = extract_watermark(damaged, key)
        assert 0.0 < result.wer_percent < 100.0

    def test_missing_layer_strict_raises(self, inserted):
        watermarked, key, _ = inserted
        crippled = watermarked.clone()
        first = crippled.layer_names()[0]
        del crippled.layers[first]
        with pytest.raises(KeyError):
            extract_watermark(crippled, key, strict_layout=True)
        result = extract_watermark(crippled, key, strict_layout=False)
        assert result.per_layer_wer[first] == 0.0

    def test_verify_ownership_thresholds(self, inserted, quantized_awq4):
        watermarked, key, _ = inserted
        assert verify_ownership(watermarked, key)
        assert not verify_ownership(quantized_awq4, key)


class TestWatermarkKey:
    def test_signature_for_layer_slicing(self, inserted):
        _, key, _ = inserted
        bits = key.config.bits_per_layer
        np.testing.assert_array_equal(key.signature_for_layer(key.layer_names[0]), key.signature[:bits])
        np.testing.assert_array_equal(
            key.signature_for_layer(key.layer_names[1]), key.signature[bits : 2 * bits]
        )

    def test_signature_for_unknown_layer(self, inserted):
        _, key, _ = inserted
        with pytest.raises(KeyError):
            key.signature_for_layer("blocks.99.attn.q_proj")

    def test_save_and_load_round_trip(self, inserted, tmp_path):
        watermarked, key, _ = inserted
        key.save(tmp_path / "key")
        restored = WatermarkKey.load(tmp_path / "key")
        np.testing.assert_array_equal(restored.signature, key.signature)
        assert restored.config == key.config
        assert restored.layer_names == key.layer_names
        assert restored.method == key.method
        # And, critically, extraction with the restored key still works.
        result = extract_watermark(watermarked, restored)
        assert result.wer_percent == 100.0

    def test_signature_length_validated(self, inserted):
        _, key, _ = inserted
        with pytest.raises(ValueError):
            WatermarkKey(
                signature=key.signature[:-1],
                config=key.config,
                reference_weights=key.reference_weights,
                activations=key.activations,
                layer_names=key.layer_names,
            )

    def test_missing_reference_weights_rejected(self, inserted):
        _, key, _ = inserted
        incomplete = dict(key.reference_weights)
        incomplete.pop(key.layer_names[0])
        with pytest.raises(ValueError):
            WatermarkKey(
                signature=key.signature,
                config=key.config,
                reference_weights=incomplete,
                activations=key.activations,
                layer_names=key.layer_names,
            )

    def test_describe_mentions_model(self, inserted):
        _, key, _ = inserted
        assert key.model_name in key.describe()
