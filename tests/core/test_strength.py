"""Tests for the watermark-strength bound (Equation 8)."""

import numpy as np
import pytest

from repro.core.strength import (
    false_claim_probability,
    log10_watermark_strength,
    required_bits_for_strength,
    watermark_strength,
)


class TestFalseClaimProbability:
    def test_matching_zero_bits_is_certain(self):
        assert false_claim_probability(40, 0) == 1.0

    def test_small_exact_values(self):
        # P[X >= 2] for X ~ Binomial(2, 0.5) = 0.25; P[X >= 1] = 0.75.
        assert false_claim_probability(2, 2) == pytest.approx(0.25)
        assert false_claim_probability(2, 1) == pytest.approx(0.75)

    def test_paper_value_40_bits(self):
        """Full 40-bit match probability: the paper quotes 9.09e-13."""
        value = false_claim_probability(40, 40)
        assert value == pytest.approx(0.5 ** 40, rel=1e-9)
        assert value == pytest.approx(9.09e-13, rel=0.01)

    def test_paper_value_100_bits(self):
        """Full 100-bit match: the paper quotes 1.57e-30 (actually 0.5**100 ≈ 7.9e-31)."""
        value = false_claim_probability(100, 100)
        assert value == pytest.approx(0.5 ** 100, rel=1e-9)

    def test_monotone_in_matched_bits(self):
        values = [false_claim_probability(40, k) for k in range(0, 41, 5)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            false_claim_probability(0, 0)
        with pytest.raises(ValueError):
            false_claim_probability(10, 11)
        with pytest.raises(ValueError):
            false_claim_probability(10, -1)


class TestWatermarkStrength:
    def test_single_layer_equals_false_claim(self):
        assert watermark_strength(20, 1) == pytest.approx(false_claim_probability(20, 20))

    def test_multiple_layers_compound(self):
        single = watermark_strength(10, 1)
        triple = watermark_strength(10, 3)
        assert triple == pytest.approx(single ** 3)

    def test_partial_match_fraction(self):
        full = watermark_strength(20, 1, matched_fraction=1.0)
        partial = watermark_strength(20, 1, matched_fraction=0.5)
        assert partial > full

    def test_underflow_returns_zero(self):
        assert watermark_strength(300, 192) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            watermark_strength(10, 0)
        with pytest.raises(ValueError):
            watermark_strength(10, 1, matched_fraction=0.0)


class TestLog10Strength:
    def test_matches_direct_computation_when_representable(self):
        direct = np.log10(watermark_strength(30, 2))
        assert log10_watermark_strength(30, 2) == pytest.approx(direct, rel=1e-9)

    def test_never_underflows(self):
        value = log10_watermark_strength(300, 192)
        assert np.isfinite(value)
        assert value < -10_000

    def test_paper_figure3_order_of_magnitude(self):
        """100 bits per layer -> ~1e-30 per layer; OPT-2.7B (192 layers) -> ~1e-5760."""
        per_layer = log10_watermark_strength(100, 1)
        assert -31 < per_layer < -29
        whole_model = log10_watermark_strength(100, 192)
        assert -5820 < whole_model < -5700


class TestRequiredBits:
    def test_round_trip(self):
        bits = required_bits_for_strength(1e-12, num_layers=1)
        assert false_claim_probability(bits, bits) <= 1e-12
        assert false_claim_probability(bits - 1, bits - 1) > 1e-12

    def test_more_layers_need_fewer_bits(self):
        single = required_bits_for_strength(1e-12, num_layers=1)
        many = required_bits_for_strength(1e-12, num_layers=24)
        assert many < single

    def test_validation(self):
        with pytest.raises(ValueError):
            required_bits_for_strength(1.5)
        with pytest.raises(ValueError):
            required_bits_for_strength(1e-3, num_layers=0)
