"""Tests for signature generation and partitioning."""

import numpy as np
import pytest

from repro.core.signature import (
    bits_to_signature,
    generate_signature,
    signature_to_bits,
    split_signature_per_layer,
    validate_signature,
)


class TestGenerateSignature:
    def test_values_are_rademacher(self):
        signature = generate_signature(500, seed=1)
        assert set(np.unique(signature)) <= {-1, 1}

    def test_deterministic_in_seed(self):
        np.testing.assert_array_equal(generate_signature(64, 7), generate_signature(64, 7))

    def test_different_seeds_differ(self):
        assert not np.array_equal(generate_signature(64, 7), generate_signature(64, 8))

    def test_roughly_balanced(self):
        signature = generate_signature(2000, seed=3)
        assert abs(signature.mean()) < 0.1

    def test_length_validated(self):
        with pytest.raises(ValueError):
            generate_signature(0, seed=1)


class TestValidateSignature:
    def test_accepts_plus_minus_one(self):
        out = validate_signature([1, -1, 1])
        assert out.dtype == np.int64

    def test_rejects_other_values(self):
        with pytest.raises(ValueError):
            validate_signature([1, 0, -1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_signature([])

    def test_flattens_input(self):
        assert validate_signature(np.array([[1, -1], [1, 1]])).shape == (4,)


class TestSplitSignaturePerLayer:
    def test_even_partition(self):
        signature = generate_signature(12, 1)
        split = split_signature_per_layer(signature, ["a", "b", "c"], 4)
        assert list(split) == ["a", "b", "c"]
        np.testing.assert_array_equal(split["a"], signature[:4])
        np.testing.assert_array_equal(split["c"], signature[8:])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            split_signature_per_layer(generate_signature(10, 1), ["a", "b"], 4)


class TestBitConversions:
    def test_round_trip(self):
        signature = generate_signature(32, 5)
        restored = bits_to_signature(signature_to_bits(signature))
        np.testing.assert_array_equal(signature, restored)

    def test_bits_are_binary(self):
        bits = signature_to_bits(np.array([1, -1, 1]))
        assert bits == [1, 0, 1]

    def test_bits_to_signature_rejects_other_values(self):
        with pytest.raises(ValueError):
            bits_to_signature([0, 2])
