"""Tests for the RandomWM and SpecMark baselines."""

import numpy as np
import pytest

from repro.core.baselines import RandomWM, SpecMark
from repro.core.signature import generate_signature


class TestRandomWM:
    def test_round_trip_extraction(self, quantized_awq4):
        scheme = RandomWM(bits_per_layer=6)
        watermarked, record, extraction = scheme.watermark_and_verify(quantized_awq4)
        assert extraction.wer_percent == 100.0

    def test_changes_expected_number_of_weights(self, quantized_awq4):
        scheme = RandomWM(bits_per_layer=6)
        watermarked, _ = scheme.insert(quantized_awq4)
        diff = watermarked.weight_difference(quantized_awq4)
        total_changed = sum(np.count_nonzero(d) for d in diff.values())
        # With clipping avoidance every insertion lands and sticks.
        assert total_changed == 6 * quantized_awq4.num_quantization_layers

    def test_positions_differ_between_seeds(self, quantized_awq4):
        a, record_a = RandomWM(bits_per_layer=6, seed=1).insert(quantized_awq4)
        b, record_b = RandomWM(bits_per_layer=6, seed=2).insert(quantized_awq4)
        name = quantized_awq4.layer_names()[0]
        assert not np.array_equal(
            np.sort(record_a.payload["locations"][name]),
            np.sort(record_b.payload["locations"][name]),
        )

    def test_extraction_from_non_watermarked_model_low(self, quantized_awq4):
        scheme = RandomWM(bits_per_layer=6)
        _, record = scheme.insert(quantized_awq4)
        result = scheme.extract(quantized_awq4, record)
        assert result.wer_percent == 0.0

    def test_positions_uncorrelated_with_saliency(self, quantized_awq4, activation_stats):
        """RandomWM must not systematically prefer salient channels."""
        scheme = RandomWM(bits_per_layer=32, seed=3)
        _, record = scheme.insert(quantized_awq4)
        name = "blocks.0.mlp.fc_in"
        layer = quantized_awq4.get_layer(name)
        saliency = activation_stats.channel_saliency(name)
        top_channels = set(np.argsort(saliency)[::-1][: layer.in_features // 4].tolist())
        _, cols = np.unravel_index(record.payload["locations"][name], layer.weight_int.shape)
        hit_fraction = np.mean([c in top_channels for c in cols])
        assert hit_fraction < 0.6

    def test_explicit_signature(self, quantized_awq4):
        scheme = RandomWM(bits_per_layer=4)
        total = 4 * quantized_awq4.num_quantization_layers
        signature = generate_signature(total, 5)
        _, record = scheme.insert(quantized_awq4, signature=signature)
        np.testing.assert_array_equal(record.signature, signature)

    def test_signature_length_validated(self, quantized_awq4):
        with pytest.raises(ValueError):
            RandomWM(bits_per_layer=4).insert(quantized_awq4, signature=np.array([1, -1]))

    def test_invalid_bits_per_layer(self):
        with pytest.raises(ValueError):
            RandomWM(bits_per_layer=0)

    def test_without_clipping_avoidance_some_bits_may_clip(self, quantized_awq4):
        scheme = RandomWM(bits_per_layer=64, avoid_clipping=False, seed=11)
        watermarked, record, extraction = scheme.watermark_and_verify(quantized_awq4)
        # Extraction may or may not be perfect, but it must never exceed 100%.
        assert extraction.wer_percent <= 100.0
        assert extraction.total_bits == 64 * quantized_awq4.num_quantization_layers


class TestSpecMark:
    def test_extraction_fails_on_quantized_models(self, quantized_awq4):
        """The paper's headline negative result: 0% WER on quantized weights."""
        scheme = SpecMark(bits_per_layer=8)
        watermarked, record, extraction = scheme.watermark_and_verify(quantized_awq4)
        assert extraction.wer_percent <= 5.0

    def test_quality_unaffected_because_weights_barely_change(self, quantized_awq4):
        scheme = SpecMark(bits_per_layer=8)
        watermarked, _ = scheme.insert(quantized_awq4)
        total_changed = sum(
            np.count_nonzero(d) for d in watermarked.weight_difference(quantized_awq4).values()
        )
        total_weights = quantized_awq4.total_quantized_weights()
        # The tiny DCT perturbation is destroyed by re-rounding, so almost no
        # integer weight actually moves.
        assert total_changed / total_weights < 0.01

    def test_also_fails_on_int8(self, quantized_int8):
        scheme = SpecMark(bits_per_layer=8)
        _, _, extraction = scheme.watermark_and_verify(quantized_int8)
        assert extraction.wer_percent <= 5.0

    def test_large_embedding_strength_would_be_extractable(self, quantized_awq4):
        """Sanity check of the extraction logic itself: with an absurdly large
        embedding strength the perturbation survives rounding and the decoder
        recovers a substantial fraction of bits."""
        scheme = SpecMark(bits_per_layer=4, embedding_strength=50.0)
        _, record, extraction = scheme.watermark_and_verify(quantized_awq4)
        assert extraction.wer_percent > 30.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SpecMark(bits_per_layer=0)
        with pytest.raises(ValueError):
            SpecMark(embedding_strength=0)
        with pytest.raises(ValueError):
            SpecMark(high_frequency_fraction=0)

    def test_positions_live_in_high_frequency_band(self, quantized_awq4):
        scheme = SpecMark(bits_per_layer=8, high_frequency_fraction=0.25)
        _, record = scheme.insert(quantized_awq4)
        for name, positions in record.payload["positions"].items():
            size = quantized_awq4.get_layer(name).weight_int.size
            assert np.all(positions >= int(size * 0.70))
