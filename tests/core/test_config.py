"""Tests for EmMarkConfig."""

import pytest

from repro.core.config import EmMarkConfig


class TestValidation:
    def test_bits_per_layer_positive(self):
        with pytest.raises(ValueError):
            EmMarkConfig(bits_per_layer=0)

    def test_non_negative_coefficients(self):
        with pytest.raises(ValueError):
            EmMarkConfig(alpha=-0.1)

    def test_coefficients_not_both_zero(self):
        with pytest.raises(ValueError):
            EmMarkConfig(alpha=0.0, beta=0.0)

    def test_pool_ratio_minimum(self):
        with pytest.raises(ValueError):
            EmMarkConfig(candidate_pool_ratio=0.5)

    def test_max_candidate_fraction_bounds(self):
        with pytest.raises(ValueError):
            EmMarkConfig(max_candidate_fraction=0.0)


class TestDerivedQuantities:
    def test_total_bits(self):
        config = EmMarkConfig(bits_per_layer=12)
        assert config.total_bits(10) == 120

    def test_candidate_pool_honours_ratio(self):
        config = EmMarkConfig(bits_per_layer=10, candidate_pool_ratio=5, max_candidate_fraction=1.0)
        assert config.candidate_pool_size(10_000) == 50

    def test_candidate_pool_capped_by_fraction(self):
        config = EmMarkConfig(bits_per_layer=10, candidate_pool_ratio=50, max_candidate_fraction=0.1)
        assert config.candidate_pool_size(1000) == 100

    def test_candidate_pool_never_below_payload(self):
        config = EmMarkConfig(bits_per_layer=64, candidate_pool_ratio=50, max_candidate_fraction=0.01)
        assert config.candidate_pool_size(1000) >= 64

    def test_candidate_pool_never_exceeds_layer(self):
        config = EmMarkConfig(bits_per_layer=10, candidate_pool_ratio=50, max_candidate_fraction=1.0)
        assert config.candidate_pool_size(64) == 64

    def test_with_overrides(self):
        config = EmMarkConfig(bits_per_layer=10)
        other = config.with_overrides(alpha=1.0, beta=0.0)
        assert other.alpha == 1.0 and other.beta == 0.0
        assert other.bits_per_layer == 10
        assert config.alpha == 0.5  # original untouched


class TestPaperDefaults:
    def test_int8_payload(self):
        config = EmMarkConfig.paper_defaults(8)
        assert config.bits_per_layer == 300
        assert config.alpha == 0.5 and config.beta == 0.5
        assert config.seed == 100

    def test_int4_payload(self):
        assert EmMarkConfig.paper_defaults(4).bits_per_layer == 40

    def test_pool_ratio_switches_at_6_7b(self):
        small = EmMarkConfig.paper_defaults(4, virtual_params_billions=2.7)
        large = EmMarkConfig.paper_defaults(4, virtual_params_billions=13.0)
        boundary = EmMarkConfig.paper_defaults(4, virtual_params_billions=6.7)
        assert small.candidate_pool_ratio == 50
        assert large.candidate_pool_ratio == 60
        assert boundary.candidate_pool_ratio == 60

    def test_unsupported_precision(self):
        with pytest.raises(ValueError):
            EmMarkConfig.paper_defaults(2)


class TestScaledForModel:
    def test_scaled_int4_smaller_than_int8(self, quantized_awq4, quantized_int8):
        int4 = EmMarkConfig.scaled_for_model(quantized_awq4)
        int8 = EmMarkConfig.scaled_for_model(quantized_int8)
        assert int4.bits_per_layer < int8.bits_per_layer

    def test_explicit_payload_respected(self, quantized_awq4):
        config = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=7)
        assert config.bits_per_layer == 7

    def test_overrides_forwarded(self, quantized_awq4):
        config = EmMarkConfig.scaled_for_model(quantized_awq4, alpha=1.0, beta=0.0)
        assert config.alpha == 1.0 and config.beta == 0.0

    def test_large_model_gets_large_pool_ratio(self, quantized_int8):
        # The tiny fixture simulates a sub-6.7B model; fake a large one by
        # checking the rule through paper_defaults instead.
        assert EmMarkConfig.scaled_for_model(quantized_int8).candidate_pool_ratio == 50
