"""Tests for JSON / NPZ serialization helpers."""

import numpy as np
import pytest

from repro.utils.serialization import load_json, load_npz, save_json, save_npz, to_jsonable


class TestToJsonable:
    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5

    def test_arrays_become_lists(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_nested_mapping(self):
        out = to_jsonable({"a": {"b": np.array([1.0])}})
        assert out == {"a": {"b": [1.0]}}

    def test_tuples_become_lists(self):
        assert to_jsonable((1, 2)) == [1, 2]

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_none_and_bool_pass_through(self):
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True


class TestRoundTrips:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "data.json"
        save_json(path, {"x": np.float64(1.5), "y": [1, 2, 3]})
        assert load_json(path) == {"x": 1.5, "y": [1, 2, 3]}

    def test_npz_round_trip(self, tmp_path):
        arrays = {"a": np.arange(6).reshape(2, 3), "b": np.ones(4)}
        path = tmp_path / "arrays.npz"
        save_npz(path, arrays)
        loaded = load_npz(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        np.testing.assert_array_equal(loaded["b"], arrays["b"])

    def test_npz_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "arrays.npz"
        save_npz(path, {"a": np.zeros(2)})
        assert path.exists()
