"""Tests for deterministic RNG management."""

import numpy as np

from repro.utils.rng import SeedSequenceFactory, derive_seed, new_rng, spawn_rngs


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(100, "layer", 3) == derive_seed(100, "layer", 3)

    def test_different_labels_differ(self):
        assert derive_seed(100, "layer", 3) != derive_seed(100, "layer", 4)

    def test_different_base_seeds_differ(self):
        assert derive_seed(100, "x") != derive_seed(101, "x")

    def test_no_labels_is_stable(self):
        assert derive_seed(7) == derive_seed(7)

    def test_result_is_32_bit(self):
        for seed in (0, 1, 2**40, 123456789):
            value = derive_seed(seed, "anything")
            assert 0 <= value < 2**32

    def test_label_types_distinguished(self):
        # The string "3" and the integer 3 should give different streams.
        assert derive_seed(5, "3") != derive_seed(5, 3)


class TestNewRng:
    def test_same_seed_same_stream(self):
        a = new_rng(42).random(8)
        b = new_rng(42).random(8)
        np.testing.assert_array_equal(a, b)

    def test_labels_create_independent_streams(self):
        a = new_rng(42, "signature").random(8)
        b = new_rng(42, "selection").random(8)
        assert not np.allclose(a, b)

    def test_returns_generator(self):
        assert isinstance(new_rng(0), np.random.Generator)


class TestSpawnRngs:
    def test_one_generator_per_label(self):
        generators = spawn_rngs(9, ["a", "b", "c"])
        assert len(generators) == 3

    def test_streams_are_reproducible(self):
        first = [g.random() for g in spawn_rngs(9, ["a", "b"])]
        second = [g.random() for g in spawn_rngs(9, ["a", "b"])]
        assert first == second


class TestSeedSequenceFactory:
    def test_seed_for_is_deterministic(self):
        factory = SeedSequenceFactory(100)
        assert factory.seed_for("layer", 0) == factory.seed_for("layer", 0)

    def test_distinct_labels(self):
        factory = SeedSequenceFactory(100)
        assert factory.seed_for("layer", 0) != factory.seed_for("layer", 1)

    def test_base_seed_property(self):
        assert SeedSequenceFactory(17).base_seed == 17

    def test_rng_for_matches_seed_for(self):
        factory = SeedSequenceFactory(5)
        direct = np.random.default_rng(factory.seed_for("x")).random(4)
        via_factory = factory.rng_for("x").random(4)
        np.testing.assert_array_equal(direct, via_factory)
