"""Tests for the plain-text table renderer."""

import math

import pytest

from repro.utils.tables import Table, format_float, format_percent


class TestFormatters:
    def test_format_float_basic(self):
        assert format_float(3.14159, 2) == "3.14"

    def test_format_float_none(self):
        assert format_float(None) == "-"

    def test_format_float_nan(self):
        assert format_float(math.nan) == "-"

    def test_format_percent(self):
        assert format_percent(99.5) == "99.50%"

    def test_format_percent_none(self):
        assert format_percent(None) == "-"


class TestTable:
    def test_add_row_and_render(self):
        table = Table(title="T", columns=["a", "b"])
        table.add_row([1, 2])
        rendered = table.render()
        assert "T" in rendered
        assert "a" in rendered and "b" in rendered
        assert "1" in rendered and "2" in rendered

    def test_row_arity_checked(self):
        table = Table(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_str_equals_render(self):
        table = Table(title="T", columns=["a"])
        table.add_row(["x"])
        assert str(table) == table.render()

    def test_column_widths_accommodate_long_cells(self):
        table = Table(title="T", columns=["a"])
        table.add_row(["a-very-long-cell-value"])
        lines = table.render().splitlines()
        header_line = lines[2]
        assert len(header_line) >= len("a-very-long-cell-value")
