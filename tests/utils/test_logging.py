"""Tests for the logging facade."""

import logging

from repro.utils.logging import configure, get_logger


def test_get_logger_namespacing():
    assert get_logger().name == "repro"
    assert get_logger("core.insertion").name == "repro.core.insertion"


def test_root_logger_has_null_handler_by_default():
    get_logger()
    root = logging.getLogger("repro")
    assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


def test_configure_adds_single_stream_handler():
    configure()
    configure()  # idempotent
    root = logging.getLogger("repro")
    stream_handlers = [
        h for h in root.handlers
        if isinstance(h, logging.StreamHandler) and not isinstance(h, logging.NullHandler)
    ]
    assert len(stream_handlers) == 1
