"""Metrics registry: instrument semantics and Prometheus exposition format."""

from __future__ import annotations

import re
import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, Sample

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)


def parse_exposition(text: str):
    """Tiny Prometheus text-format parser: returns (samples, helps, types).

    ``samples`` maps ``(name, labels_string)`` → float value.  Raises on any
    line that is neither a comment nor a well-formed sample — which is the
    format check.
    """
    samples = {}
    helps = {}
    types = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
            continue
        match = _SAMPLE_LINE.match(line)
        assert match is not None, f"unparseable exposition line: {line!r}"
        value = match.group("value")
        samples[(match.group("name"), match.group("labels") or "")] = (
            float("inf") if value == "+Inf" else float(value)
        )
    return samples, helps, types


class TestCounter:
    def test_monotone_and_exact_under_concurrency(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", help="t")
        threads = [
            threading.Thread(target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("repro_x_total").inc(-1)

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("9starts-with-digit")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_percentiles_and_summary(self):
        hist = Histogram("repro_h_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(6.05)
        assert 0.0 < summary["p50"] <= 1.0
        assert summary["p99"] <= 10.0

    def test_overflow_clamped_to_last_bound(self):
        hist = Histogram("repro_h2_seconds", buckets=(1.0,))
        hist.observe(100.0)
        assert hist.percentile(0.99) == 1.0

    def test_exposition_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h3_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        samples, _, types = parse_exposition(registry.render())
        assert types["repro_h3_seconds"] == "histogram"
        assert samples[("repro_h3_seconds_bucket", 'le="0.1"')] == 1
        assert samples[("repro_h3_seconds_bucket", 'le="1"')] == 2
        assert samples[("repro_h3_seconds_bucket", 'le="+Inf"')] == 3
        assert samples[("repro_h3_seconds_count", "")] == 3
        assert samples[("repro_h3_seconds_sum", "")] == pytest.approx(5.55)


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_a_total") is registry.counter("repro_a_total")

    def test_labelled_series_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_l_total", labels={"k": "a"})
        b = registry.counter("repro_l_total", labels={"k": "b"})
        assert a is not b
        a.inc(2)
        b.inc(3)
        samples, _, _ = parse_exposition(registry.render())
        assert samples[("repro_l_total", 'k="a"')] == 2
        assert samples[("repro_l_total", 'k="b"')] == 3

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_k_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_k_total")

    def test_collector_samples_rendered(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda: [Sample("repro_pull_total", 42, kind="counter", help="pulled")]
        )
        samples, helps, types = parse_exposition(registry.render())
        assert samples[("repro_pull_total", "")] == 42
        assert types["repro_pull_total"] == "counter"
        assert helps["repro_pull_total"] == "pulled"

    def test_collector_instrument_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_dup_total")
        registry.register_collector(lambda: [Sample("repro_dup_total", 1)])
        with pytest.raises(ValueError):
            registry.render()

    def test_whole_render_parses(self):
        registry = MetricsRegistry()
        registry.counter("repro_r_total", help='with "quotes" and \\ slash').inc()
        registry.gauge("repro_r_gauge", labels={"path": 'a"b\\c'}).set(1.5)
        registry.histogram("repro_r_seconds").observe(0.01)
        samples, helps, types = parse_exposition(registry.render())
        assert ("repro_r_total", "") in samples
        assert types["repro_r_gauge"] == "gauge"
