"""Progress renderer: rendering, throttling, ETA, per-attack min-WER."""

from __future__ import annotations

import io
import threading

from repro.obs import ProgressRenderer


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _render(total, updates, min_interval=0.0):
    stream = io.StringIO()
    clock = _FakeClock()
    renderer = ProgressRenderer(total, stream=stream, min_interval=min_interval, clock=clock)
    renderer.start()
    for attack, wer in updates:
        clock.now += 1.0
        renderer.update(attack, wer)
    renderer.finish()
    return stream.getvalue()


class TestRendering:
    def test_counts_and_percentage(self):
        output = _render(4, [(None, None)] * 4)
        assert "[4/4]" in output
        assert "100%" in output

    def test_rate_and_eta(self):
        stream = io.StringIO()
        clock = _FakeClock()
        renderer = ProgressRenderer(4, stream=stream, min_interval=0.0, clock=clock)
        renderer.start()
        clock.now = 1.0  # 1 cell/s → 3 remaining → ETA 3s
        renderer.update()
        assert "1.0 cells/s" in stream.getvalue()
        assert "ETA 3s" in stream.getvalue()

    def test_min_wer_tracks_minimum_per_attack(self):
        output = _render(3, [("overwrite", 100.0), ("overwrite", 87.5), ("pruning", 95.0)])
        assert "overwrite:87.5" in output
        assert "pruning:95.0" in output

    def test_throttle_skips_mid_run_paints_but_renders_final(self):
        stream = io.StringIO()
        clock = _FakeClock()
        renderer = ProgressRenderer(10, stream=stream, min_interval=100.0, clock=clock)
        renderer.start()
        clock.now = 0.001
        renderer.update()  # first paint
        first = stream.getvalue()
        for _ in range(8):
            clock.now += 0.001
            renderer.update()  # throttled away
        assert stream.getvalue() == first
        clock.now += 0.001
        renderer.update()  # 10/10 → final always renders
        assert "[10/10]" in stream.getvalue()

    def test_finish_noop_when_never_rendered(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(5, stream=stream)
        renderer.start()
        renderer.finish()
        assert stream.getvalue() == ""

    def test_finish_terminates_with_newline(self):
        output = _render(1, [(None, None)])
        assert output.endswith("\n")

    def test_concurrent_updates_all_counted(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(64, stream=stream, min_interval=0.0)
        renderer.start()
        threads = [
            threading.Thread(target=lambda: [renderer.update("a", 90.0) for _ in range(8)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        renderer.finish()
        assert "[64/64]" in stream.getvalue()
