"""Trace spans: no-op when disabled, parent links, Chrome export schema."""

from __future__ import annotations

import json

from repro.obs import TraceCollector, get_collector, span, tracing


class TestDisabled:
    def test_span_is_noop_without_collector(self):
        assert get_collector() is None
        with span("anything", k=1) as record:
            assert record is None

    def test_nothing_recorded_outside_tracing_block(self):
        collector = TraceCollector()
        with tracing(collector):
            pass
        with span("outside"):
            pass
        assert len(collector) == 0


class TestRecording:
    def test_span_records_timing_and_attrs(self):
        collector = TraceCollector()
        with tracing(collector):
            with span("work", layer="q_proj") as record:
                assert record is not None
        records = collector.records
        assert len(records) == 1
        got = records[0]
        assert got.name == "work"
        assert got.attrs == {"layer": "q_proj"}
        assert got.duration_us >= 0.0
        assert got.cpu_us >= 0.0
        assert got.pid > 0

    def test_nesting_links_parents(self):
        collector = TraceCollector()
        with tracing(collector):
            with span("outer"):
                with span("inner"):
                    pass
            with span("sibling"):
                pass
        by_name = {r.name: r for r in collector.records}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["sibling"].parent_id is None

    def test_tracing_restores_previous_collector(self):
        outer, inner = TraceCollector(), TraceCollector()
        with tracing(outer):
            with tracing(inner):
                with span("x"):
                    pass
            assert get_collector() is outer
        assert get_collector() is None
        assert len(inner) == 1 and len(outer) == 0

    def test_drain_pops_everything(self):
        collector = TraceCollector()
        with tracing(collector):
            with span("a"):
                pass
        drained = collector.drain()
        assert [r.name for r in drained] == ["a"]
        assert len(collector) == 0


class TestChromeExport:
    def test_schema_and_ordering(self):
        collector = TraceCollector()
        with tracing(collector):
            with span("outer", cells=2):
                with span("inner"):
                    pass
        payload = collector.to_chrome()
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["ts"], float)
            assert event["dur"] >= 0.0
            assert event["pid"] > 0
            assert "cpu_us" in event["args"]
        # Sorted by start time: outer starts before inner.
        assert [e["name"] for e in events] == ["outer", "inner"]
        inner_args = events[1]["args"]
        assert inner_args["parent_span"] == 1  # outer got the first span id

    def test_save_writes_loadable_json(self, tmp_path):
        collector = TraceCollector()
        with tracing(collector):
            with span("persisted"):
                pass
        out = tmp_path / "trace.json"
        collector.save(str(out))
        loaded = json.loads(out.read_text())
        assert loaded["traceEvents"][0]["name"] == "persisted"
