"""Shared fixtures for the test suite.

The heavyweight objects (a trained tiny model, its activation statistics and
quantized instances) are built once per session; tests that mutate models
always work on clones, so sharing is safe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.wikitext import build_wikitext_sim
from repro.models.activations import collect_activation_stats
from repro.models.config import ModelConfig
from repro.models.training import TrainingConfig, train_language_model
from repro.models.transformer import TransformerLM
from repro.quant.api import quantize_model


TINY_VOCAB = 128


def make_tiny_config(name: str = "tiny-opt", **overrides) -> ModelConfig:
    """A very small OPT-style configuration used across the tests."""
    defaults = dict(
        name=name,
        vocab_size=TINY_VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=2,
        d_ff=64,
        max_seq_len=32,
        norm_type="layernorm",
        activation="relu",
        family="opt",
        virtual_params_billions=0.125,
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)


def make_tiny_llama_config(name: str = "tiny-llama", **overrides) -> ModelConfig:
    """A very small LLaMA-style configuration (RMSNorm + SiLU)."""
    defaults = dict(
        name=name,
        vocab_size=TINY_VOCAB,
        d_model=32,
        n_layers=2,
        n_heads=2,
        d_ff=48,
        max_seq_len=32,
        norm_type="rmsnorm",
        activation="silu",
        family="llama2",
        virtual_params_billions=7.0,
    )
    defaults.update(overrides)
    return ModelConfig(**defaults)


@pytest.fixture(scope="session")
def small_dataset():
    """A compact WikiText-sim bundle shared by the whole session."""
    return build_wikitext_sim(
        vocab_size=TINY_VOCAB,
        train_tokens=12_000,
        validation_tokens=3_000,
        calibration_tokens=2_000,
        seed=99,
    )


@pytest.fixture(scope="session")
def tiny_config() -> ModelConfig:
    return make_tiny_config()


@pytest.fixture()
def untrained_model(tiny_config) -> TransformerLM:
    """A freshly initialised (untrained) tiny model."""
    return TransformerLM(tiny_config, seed=3)


@pytest.fixture(scope="session")
def trained_model(small_dataset) -> TransformerLM:
    """A tiny model trained enough that quality metrics carry signal."""
    model = TransformerLM(make_tiny_config(), seed=0)
    train_language_model(
        model,
        small_dataset.train,
        TrainingConfig(steps=160, batch_size=8, sequence_length=25, learning_rate=1e-2, seed=0),
    )
    return model


@pytest.fixture(scope="session")
def activation_stats(trained_model, small_dataset):
    """Calibration activation statistics of the trained tiny model."""
    return collect_activation_stats(trained_model, small_dataset.calibration)


@pytest.fixture(scope="session")
def quantized_awq4(trained_model, activation_stats):
    """The trained tiny model quantized to INT4 with AWQ."""
    return quantize_model(trained_model, "awq", bits=4, activations=activation_stats)


@pytest.fixture(scope="session")
def quantized_int8(trained_model, activation_stats):
    """The trained tiny model quantized to INT8 with SmoothQuant."""
    return quantize_model(trained_model, "smoothquant", bits=8, activations=activation_stats)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A per-test deterministic RNG."""
    return np.random.default_rng(1234)
