"""Tests for the zero-shot evaluation protocol."""

import numpy as np
import pytest

from repro.data.corpus import MarkovCorpusGenerator
from repro.data.tasks import TaskSpec, build_task, build_task_suite
from repro.eval.zero_shot import evaluate_task, evaluate_zero_shot, predict_choice
from repro.models.transformer import TransformerLM

from tests.conftest import make_tiny_config


@pytest.fixture(scope="module")
def task_generator(small_dataset):
    return MarkovCorpusGenerator(small_dataset.vocabulary, seed=99)


@pytest.fixture(scope="module")
def small_task(task_generator):
    spec = TaskSpec("probe", num_examples=24, context_length=10, continuation_length=2, num_choices=3)
    return build_task(spec, task_generator, seed=5)


class TestPredictChoice:
    def test_returns_valid_index(self, trained_model, small_task):
        for example in small_task.examples[:5]:
            choice = predict_choice(trained_model, example)
            assert 0 <= choice < len(example.choices)


class TestEvaluateTask:
    def test_trained_model_beats_chance(self, trained_model, small_task):
        accuracy = evaluate_task(trained_model, small_task)
        chance = 100.0 / 3
        assert accuracy > chance + 10

    def test_untrained_model_near_chance(self, small_task, small_dataset):
        model = TransformerLM(make_tiny_config(name="zs-untrained"), seed=21)
        accuracy = evaluate_task(model, small_task)
        assert accuracy < 80.0

    def test_quantized_model_accepted(self, quantized_awq4, small_task):
        accuracy = evaluate_task(quantized_awq4, small_task)
        assert 0.0 <= accuracy <= 100.0

    def test_empty_task_rejected(self, trained_model, small_task):
        empty = type(small_task)(name="empty", examples=[])
        with pytest.raises(ValueError):
            evaluate_task(trained_model, empty)


class TestEvaluateZeroShot:
    def test_mean_is_average_of_tasks(self, trained_model, task_generator):
        tasks = build_task_suite(task_generator, seed=2)
        # Keep it quick: truncate each task.
        for task in tasks:
            task.examples = task.examples[:8]
        results = evaluate_zero_shot(trained_model, tasks)
        per_task = [results[t.name] for t in tasks]
        assert results["mean"] == pytest.approx(np.mean(per_task))

    def test_all_four_tasks_reported(self, trained_model, task_generator):
        tasks = build_task_suite(task_generator, seed=2)
        for task in tasks:
            task.examples = task.examples[:4]
        results = evaluate_zero_shot(trained_model, tasks)
        assert set(results) == {t.name for t in tasks} | {"mean"}

    def test_no_tasks_rejected(self, trained_model):
        with pytest.raises(ValueError):
            evaluate_zero_shot(trained_model, [])
