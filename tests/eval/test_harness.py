"""Tests for the shared evaluation harness."""

import pytest

from repro.eval.harness import EvaluationHarness, QualityReport


@pytest.fixture(scope="module")
def harness(small_dataset):
    return EvaluationHarness(small_dataset, max_sequences=8, num_task_examples=6)


class TestEvaluationHarness:
    def test_evaluate_full_precision(self, harness, trained_model):
        report = harness.evaluate(trained_model)
        assert report.perplexity > 1.0
        assert 0.0 <= report.zero_shot_accuracy <= 100.0
        assert len(report.per_task_accuracy) == 4

    def test_evaluate_quantized(self, harness, quantized_awq4):
        report = harness.evaluate(quantized_awq4)
        assert report.perplexity > 1.0

    def test_task_example_cap_applied(self, small_dataset):
        harness = EvaluationHarness(small_dataset, num_task_examples=3)
        assert all(len(task) == 3 for task in harness.tasks)

    def test_corpora_exposed(self, harness, small_dataset):
        assert harness.validation_corpus is small_dataset.validation
        assert harness.calibration_corpus is small_dataset.calibration

    def test_evaluation_deterministic(self, harness, trained_model):
        a = harness.evaluate(trained_model)
        b = harness.evaluate(trained_model)
        assert a.perplexity == b.perplexity
        assert a.zero_shot_accuracy == b.zero_shot_accuracy


class TestQualityReport:
    def test_degradation_signs(self):
        baseline = QualityReport(perplexity=10.0, zero_shot_accuracy=70.0, per_task_accuracy={})
        worse = QualityReport(perplexity=12.0, zero_shot_accuracy=65.0, per_task_accuracy={})
        degradation = worse.degradation_from(baseline)
        assert degradation["perplexity_delta"] == pytest.approx(2.0)
        assert degradation["zero_shot_delta"] == pytest.approx(-5.0)
