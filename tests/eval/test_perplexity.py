"""Tests for the perplexity metric."""

import numpy as np
import pytest

from repro.eval.perplexity import compute_perplexity
from repro.models.transformer import TransformerLM

from tests.conftest import make_tiny_config


class TestComputePerplexity:
    def test_untrained_model_near_uniform(self, small_dataset):
        model = TransformerLM(make_tiny_config(name="ppl-untrained"), seed=9)
        ppl = compute_perplexity(model, small_dataset.validation, max_sequences=16)
        vocab = small_dataset.vocabulary.size
        assert 0.4 * vocab < ppl < 1.6 * vocab

    def test_trained_model_much_better_than_uniform(self, trained_model, small_dataset):
        ppl = compute_perplexity(trained_model, small_dataset.validation, max_sequences=16)
        assert ppl < 0.5 * small_dataset.vocabulary.size

    def test_quantized_model_accepted(self, quantized_awq4, small_dataset):
        ppl = compute_perplexity(quantized_awq4, small_dataset.validation, max_sequences=8)
        assert np.isfinite(ppl) and ppl > 1.0

    def test_deterministic(self, trained_model, small_dataset):
        a = compute_perplexity(trained_model, small_dataset.validation, max_sequences=8)
        b = compute_perplexity(trained_model, small_dataset.validation, max_sequences=8)
        assert a == b

    def test_batch_size_does_not_change_result(self, trained_model, small_dataset):
        a = compute_perplexity(trained_model, small_dataset.validation, max_sequences=8, batch_size=2)
        b = compute_perplexity(trained_model, small_dataset.validation, max_sequences=8, batch_size=8)
        assert a == pytest.approx(b)

    def test_corpus_too_short_raises(self, trained_model, small_dataset):
        tiny_corpus = type(small_dataset.validation)(
            small_dataset.validation.tokens[:10], small_dataset.vocabulary, "short"
        )
        with pytest.raises(ValueError):
            compute_perplexity(trained_model, tiny_corpus, sequence_length=32)

    def test_degrades_when_blocks_destroyed(self, trained_model, small_dataset):
        """Corrupting the quantized layers must visibly hurt perplexity."""
        wrecked = trained_model.clone()
        for _, linear in wrecked.named_linear_layers():
            linear.weight.value[...] = 0.0
        intact = compute_perplexity(trained_model, small_dataset.validation, max_sequences=16)
        damaged = compute_perplexity(wrecked, small_dataset.validation, max_sequences=16)
        assert damaged > intact * 1.5
