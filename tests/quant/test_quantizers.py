"""Tests for the individual post-training quantization algorithms."""

import numpy as np
import pytest

from repro.eval.perplexity import compute_perplexity
from repro.quant.api import QUANTIZER_REGISTRY, get_quantizer, paper_quantizer_for, quantize_model
from repro.quant.awq import AWQQuantizer
from repro.quant.gptq import GPTQQuantizer
from repro.quant.llm_int8 import LLMInt8Quantizer
from repro.quant.rtn import RTNQuantizer
from repro.quant.smoothquant import SmoothQuantQuantizer


class TestRegistryAndAPI:
    def test_registry_contents(self):
        assert set(QUANTIZER_REGISTRY) == {"rtn", "smoothquant", "llm_int8", "awq", "gptq"}

    def test_default_bit_widths(self):
        assert get_quantizer("smoothquant").bits == 8
        assert get_quantizer("llm_int8").bits == 8
        assert get_quantizer("awq").bits == 4
        assert get_quantizer("gptq").bits == 4

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            get_quantizer("nf4")

    def test_paper_pairing(self):
        assert paper_quantizer_for("opt", 8).method_name == "smoothquant"
        assert paper_quantizer_for("llama2", 8).method_name == "llm_int8"
        assert paper_quantizer_for("opt", 4).method_name == "awq"
        with pytest.raises(ValueError):
            paper_quantizer_for("opt", 2)

    def test_quantize_model_requires_calibration_for_awq(self, trained_model):
        with pytest.raises(ValueError):
            quantize_model(trained_model, "awq")

    def test_quantize_model_accepts_corpus(self, trained_model, small_dataset):
        quantized = quantize_model(
            trained_model, "awq", calibration_corpus=small_dataset.calibration
        )
        assert quantized.method == "awq"


class TestCommonQuantizerBehaviour:
    @pytest.mark.parametrize("method,bits", [
        ("rtn", 8), ("rtn", 4), ("smoothquant", 8), ("llm_int8", 8), ("awq", 4), ("gptq", 4),
    ])
    def test_covers_all_layers_and_grid(self, trained_model, activation_stats, method, bits):
        quantized = quantize_model(trained_model, method, bits=bits, activations=activation_stats)
        assert quantized.layer_names() == trained_model.linear_layer_names()
        assert quantized.bits == bits
        for layer in quantized.iter_layers():
            assert layer.weight_int.max() <= layer.grid.qmax
            assert layer.weight_int.min() >= layer.grid.qmin

    @pytest.mark.parametrize("method,bits", [
        ("rtn", 8), ("smoothquant", 8), ("llm_int8", 8), ("awq", 4),
    ])
    def test_materialized_weights_close_to_original(
        self, trained_model, activation_stats, method, bits
    ):
        # GPTQ is deliberately excluded: its error compensation minimises the
        # *output* error and may move individual weights by more than half a
        # step (the Gram-weighted test below covers it instead).
        quantized = quantize_model(trained_model, method, bits=bits, activations=activation_stats)
        materialized = quantized.materialize()
        for name, linear in trained_model.named_linear_layers():
            original = linear.weight.value
            restored = materialized.get_linear(name).weight.value
            scale = np.abs(original).max() + 1e-12
            relative_error = np.abs(restored - original).max() / scale
            # INT8 round-trips should be tight; INT4 coarser but bounded.
            assert relative_error < (0.02 if bits == 8 else 0.2)

    def test_lm_head_not_quantized(self, trained_model, activation_stats):
        quantized = quantize_model(trained_model, "rtn", bits=4)
        assert "lm_head" not in quantized.layers
        np.testing.assert_allclose(
            quantized.full_precision_state["lm_head.weight"],
            trained_model.lm_head.weight.value,
        )

    def test_activation_aware_methods_require_stats(self, trained_model):
        for method in ("smoothquant", "llm_int8", "awq", "gptq"):
            quantizer = get_quantizer(method)
            with pytest.raises(ValueError):
                quantizer.quantize(trained_model, None)


class TestPerplexityOrdering:
    def test_int8_close_to_full_precision(self, trained_model, quantized_int8, small_dataset):
        fp = compute_perplexity(trained_model, small_dataset.validation, max_sequences=24)
        q8 = compute_perplexity(quantized_int8, small_dataset.validation, max_sequences=24)
        assert abs(q8 - fp) / fp < 0.02

    def test_awq_no_worse_than_double_fp(self, trained_model, quantized_awq4, small_dataset):
        fp = compute_perplexity(trained_model, small_dataset.validation, max_sequences=24)
        q4 = compute_perplexity(quantized_awq4, small_dataset.validation, max_sequences=24)
        assert q4 < 2 * fp

    def test_gptq_beats_rtn_on_calibration_objective(self, trained_model, activation_stats):
        """GPTQ's error compensation must reduce the Gram-weighted output error."""
        rtn = quantize_model(trained_model, "rtn", bits=4)
        gptq = quantize_model(trained_model, "gptq", bits=4, activations=activation_stats)
        rtn_error = 0.0
        gptq_error = 0.0
        for name, linear in trained_model.named_linear_layers():
            gram = activation_stats.gram[name]
            original = linear.weight.value
            for candidate, accumulator in ((rtn, "rtn"), (gptq, "gptq")):
                error = candidate.get_layer(name).effective_weight() - original
                value = float(np.sum((error @ gram) * error))
                if accumulator == "rtn":
                    rtn_error += value
                else:
                    gptq_error += value
        assert gptq_error < rtn_error


class TestSmoothQuant:
    def test_smoothing_factors_stored(self, trained_model, activation_stats):
        quantized = SmoothQuantQuantizer(bits=8).quantize(trained_model, activation_stats)
        for layer in quantized.iter_layers():
            assert layer.input_smoothing is not None
            assert np.all(layer.input_smoothing > 0)

    def test_migration_strength_validated(self):
        with pytest.raises(ValueError):
            SmoothQuantQuantizer(migration_strength=1.5)

    def test_salient_channels_get_larger_factors(self, trained_model, activation_stats):
        quantized = SmoothQuantQuantizer(bits=8).quantize(trained_model, activation_stats)
        name = "blocks.0.attn.q_proj"
        saliency = activation_stats.channel_saliency(name)
        factors = quantized.get_layer(name).input_smoothing
        top = np.argsort(saliency)[::-1][:4]
        bottom = np.argsort(saliency)[:4]
        assert factors[top].mean() > factors[bottom].mean()


class TestLLMInt8:
    def test_outlier_columns_full_precision(self, trained_model, activation_stats):
        quantized = LLMInt8Quantizer(bits=8).quantize(trained_model, activation_stats)
        found_any = False
        for name, linear in trained_model.named_linear_layers():
            layer = quantized.get_layer(name)
            if layer.outlier_columns is None:
                continue
            found_any = True
            np.testing.assert_allclose(
                layer.outlier_weight, linear.weight.value[:, layer.outlier_columns]
            )
            assert np.all(layer.weight_int[:, layer.outlier_columns] == 0)
        assert found_any, "expected at least one layer with outlier columns"

    def test_outlier_fraction_capped(self, trained_model, activation_stats):
        quantizer = LLMInt8Quantizer(bits=8, outlier_threshold=0.1, max_outlier_fraction=0.05)
        quantized = quantizer.quantize(trained_model, activation_stats)
        for layer in quantized.iter_layers():
            if layer.outlier_columns is not None:
                assert layer.outlier_columns.size <= int(0.05 * layer.in_features)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LLMInt8Quantizer(outlier_threshold=-1)
        with pytest.raises(ValueError):
            LLMInt8Quantizer(max_outlier_fraction=0.9)


class TestAWQ:
    def test_scaling_factors_positive_and_clamped(self, trained_model, activation_stats):
        quantizer = AWQQuantizer(bits=4, clip_range=(0.5, 2.0))
        quantized = quantizer.quantize(trained_model, activation_stats)
        for layer in quantized.iter_layers():
            assert layer.input_smoothing is not None
            assert layer.input_smoothing.min() >= 0.5 - 1e-12
            assert layer.input_smoothing.max() <= 2.0 + 1e-12

    def test_alpha_grid_must_be_nonempty(self):
        with pytest.raises(ValueError):
            AWQQuantizer(alpha_grid=())

    def test_awq_not_worse_than_rtn_on_reconstruction(self, trained_model, activation_stats):
        rtn = RTNQuantizer(bits=4).quantize(trained_model, activation_stats)
        awq = AWQQuantizer(bits=4).quantize(trained_model, activation_stats)
        rtn_error = 0.0
        awq_error = 0.0
        for name, linear in trained_model.named_linear_layers():
            gram = activation_stats.gram[name]
            original = linear.weight.value
            rtn_delta = rtn.get_layer(name).effective_weight() - original
            awq_delta = awq.get_layer(name).effective_weight() - original
            rtn_error += float(np.sum((rtn_delta @ gram) * rtn_delta))
            awq_error += float(np.sum((awq_delta @ gram) * awq_delta))
        assert awq_error <= rtn_error * 1.001


class TestGPTQ:
    def test_requires_gram_matrix(self, trained_model, activation_stats):
        stripped = type(activation_stats)(
            mean_abs=activation_stats.mean_abs,
            rms=activation_stats.rms,
            maximum=activation_stats.maximum,
            gram={},
        )
        with pytest.raises(ValueError):
            GPTQQuantizer(bits=4).quantize(trained_model, stripped)

    def test_damping_validated(self):
        with pytest.raises(ValueError):
            GPTQQuantizer(damping=0.0)

    def test_act_order_toggle_changes_result(self, trained_model, activation_stats):
        with_order = GPTQQuantizer(bits=4, act_order=True).quantize(trained_model, activation_stats)
        without = GPTQQuantizer(bits=4, act_order=False).quantize(trained_model, activation_stats)
        differs = any(
            not np.array_equal(
                with_order.get_layer(name).weight_int, without.get_layer(name).weight_int
            )
            for name in with_order.layer_names()
        )
        assert differs
