"""Tests for the quantization data structures."""

import numpy as np
import pytest

from repro.quant.base import (
    QuantizationGrid,
    QuantizedLinear,
    dequantize_tensor,
    quantize_tensor,
)


class TestQuantizationGrid:
    def test_int8_range(self):
        grid = QuantizationGrid(8)
        assert grid.qmax == 127
        assert grid.qmin == -127
        assert grid.num_levels == 255

    def test_int4_range(self):
        grid = QuantizationGrid(4)
        assert grid.qmax == 7
        assert grid.qmin == -7

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationGrid(1)
        with pytest.raises(ValueError):
            QuantizationGrid(20)

    def test_clip(self):
        grid = QuantizationGrid(4)
        np.testing.assert_array_equal(grid.clip(np.array([-100, 0, 100])), [-7, 0, 7])

    def test_step_size_matches_equation_1(self):
        grid = QuantizationGrid(4)
        assert grid.step_size(np.array([7.0]))[0] == pytest.approx(1.0)
        assert grid.step_size(np.array([14.0]))[0] == pytest.approx(2.0)

    def test_step_size_zero_guard(self):
        grid = QuantizationGrid(4)
        assert grid.step_size(np.array([0.0]))[0] == 1.0


class TestQuantizeTensor:
    def test_round_trip_error_bounded_by_half_step(self, rng):
        weight = rng.normal(size=(8, 16))
        weight_int, scale = quantize_tensor(weight, QuantizationGrid(8))
        restored = dequantize_tensor(weight_int, scale)
        assert np.max(np.abs(restored - weight)) <= 0.5 * scale.max() + 1e-12

    def test_values_within_grid(self, rng):
        weight = rng.normal(size=(4, 8)) * 10
        weight_int, _ = quantize_tensor(weight, QuantizationGrid(4))
        assert weight_int.max() <= 7 and weight_int.min() >= -7

    def test_per_channel_uses_row_maxima(self, rng):
        weight = np.array([[1.0, 0.5], [100.0, 50.0]])
        _, scale = quantize_tensor(weight, QuantizationGrid(4), per_channel=True)
        assert scale[1, 0] == pytest.approx(100.0 / 7)
        assert scale[0, 0] == pytest.approx(1.0 / 7)

    def test_per_tensor_single_scale(self, rng):
        weight = rng.normal(size=(4, 8))
        _, scale = quantize_tensor(weight, QuantizationGrid(4), per_channel=False)
        assert np.allclose(scale, scale[0, 0])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.zeros(5), QuantizationGrid(4))

    def test_int4_error_larger_than_int8(self, rng):
        weight = rng.normal(size=(16, 32))
        for_bits = {}
        for bits in (4, 8):
            weight_int, scale = quantize_tensor(weight, QuantizationGrid(bits))
            for_bits[bits] = np.abs(dequantize_tensor(weight_int, scale) - weight).mean()
        assert for_bits[4] > for_bits[8]


def _make_layer(weight_int, bits=4, **kwargs):
    weight_int = np.asarray(weight_int)
    return QuantizedLinear(
        name="probe",
        weight_int=weight_int,
        scale=np.ones((weight_int.shape[0], 1)),
        grid=QuantizationGrid(bits),
        **kwargs,
    )


class TestQuantizedLinear:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            QuantizedLinear(
                name="x",
                weight_int=np.zeros((2, 2), dtype=int),
                scale=np.ones((3, 1)),
                grid=QuantizationGrid(4),
            )

    def test_grid_range_validated(self):
        with pytest.raises(ValueError):
            _make_layer([[100, 0], [0, 0]], bits=4)

    def test_saturated_mask(self):
        layer = _make_layer([[7, 3], [-7, 0]])
        np.testing.assert_array_equal(layer.saturated_mask(), [[True, False], [True, False]])

    def test_quantized_mask_excludes_outliers(self):
        layer = _make_layer(
            [[0, 3], [0, 1]],
            outlier_columns=np.array([0]),
            outlier_weight=np.array([[1.5], [2.5]]),
        )
        np.testing.assert_array_equal(layer.quantized_mask(), [[False, True], [False, True]])

    def test_effective_weight_undoes_smoothing(self):
        layer = _make_layer([[2, 4]], input_smoothing=np.array([2.0, 4.0]))
        np.testing.assert_allclose(layer.effective_weight(), [[1.0, 1.0]])

    def test_effective_weight_restores_outliers(self):
        layer = _make_layer(
            [[0, 3]], outlier_columns=np.array([0]), outlier_weight=np.array([[9.9]])
        )
        np.testing.assert_allclose(layer.effective_weight(), [[9.9, 3.0]])

    def test_add_to_weights_clips_at_grid(self):
        layer = _make_layer([[7, 0]])
        layer.add_to_weights(np.array([0, 1]), np.array([1, -1]))
        np.testing.assert_array_equal(layer.weight_int, [[7, -1]])

    def test_add_to_weights_shape_check(self):
        layer = _make_layer([[0, 0]])
        with pytest.raises(ValueError):
            layer.add_to_weights(np.array([0]), np.array([1, 1]))

    def test_copy_is_deep(self):
        layer = _make_layer([[1, 2]])
        clone = layer.copy()
        clone.weight_int[0, 0] = 5
        assert layer.weight_int[0, 0] == 1

    def test_outlier_fields_must_be_paired(self):
        with pytest.raises(ValueError):
            _make_layer([[0, 0]], outlier_columns=np.array([0]))


class TestQuantizedModel:
    def test_materialize_matches_effective_weights(self, quantized_awq4, trained_model):
        materialized = quantized_awq4.materialize()
        name = quantized_awq4.layer_names()[0]
        np.testing.assert_allclose(
            materialized.get_linear(name).weight.value,
            quantized_awq4.get_layer(name).effective_weight(),
        )

    def test_materialize_preserves_unquantized_state(self, quantized_awq4, trained_model):
        materialized = quantized_awq4.materialize()
        np.testing.assert_allclose(
            materialized.lm_head.weight.value, trained_model.lm_head.weight.value
        )
        np.testing.assert_allclose(
            materialized.token_embedding.weight.value,
            trained_model.token_embedding.weight.value,
        )

    def test_clone_independent(self, quantized_awq4):
        clone = quantized_awq4.clone()
        name = clone.layer_names()[0]
        clone.get_layer(name).weight_int[0, 0] += 1
        assert not np.array_equal(
            clone.get_layer(name).weight_int, quantized_awq4.get_layer(name).weight_int
        )

    def test_integer_weight_snapshot_is_copy(self, quantized_awq4):
        snapshot = quantized_awq4.integer_weight_snapshot()
        name = quantized_awq4.layer_names()[0]
        snapshot[name][0, 0] += 5
        assert not np.array_equal(snapshot[name], quantized_awq4.get_layer(name).weight_int)

    def test_weight_difference(self, quantized_awq4):
        clone = quantized_awq4.clone()
        name = clone.layer_names()[0]
        clone.get_layer(name).weight_int[0, 0] += 1
        diff = clone.weight_difference(quantized_awq4)
        assert diff[name][0, 0] == 1
        assert np.sum(np.abs(diff[name])) == 1

    def test_get_layer_unknown(self, quantized_awq4):
        with pytest.raises(KeyError):
            quantized_awq4.get_layer("blocks.42.attn.q_proj")

    def test_layer_count_matches_model(self, quantized_awq4, trained_model):
        assert quantized_awq4.num_quantization_layers == trained_model.num_quantization_layers

    def test_total_quantized_weights(self, quantized_awq4):
        expected = sum(layer.num_weights for layer in quantized_awq4.iter_layers())
        assert quantized_awq4.total_quantized_weights() == expected
