"""Smoke tests of the experiment harness on the "smoke" training profile.

The goal here is not to reproduce the paper's numbers (that is what the
benchmark suite under ``benchmarks/`` does, with properly trained sims) but to
verify that every experiment runs end-to-end, produces structurally complete
results, and satisfies the invariants that do not depend on model quality
(EmMark/RandomWM extract fully, SpecMark does not, integrity holds, WER stays
high under attack).
"""

import numpy as np
import pytest

from repro.experiments import figure2a, figure2b, figure3, forging, table1, table2, table3, table4
from repro.experiments.ablations import run_pool_ratio_ablation, run_saliency_source_ablation
from repro.experiments.common import prepare_context

PROFILE = "smoke"
MODEL = "opt-125m-sim"


@pytest.fixture(scope="module", autouse=True)
def _warm_context():
    # Train the smoke-profile sim once so every experiment below reuses it.
    prepare_context(MODEL, 4, profile=PROFILE, num_task_examples=8)
    prepare_context(MODEL, 8, profile=PROFILE, num_task_examples=8)


class TestCommon:
    def test_context_contents(self):
        context = prepare_context(MODEL, 4, profile=PROFILE, num_task_examples=8)
        assert context.quantized.bits == 4
        assert context.quant_method == "awq"
        assert context.baseline_quality.perplexity > 1.0

    def test_paper_pairing_for_int8(self):
        context = prepare_context(MODEL, 8, profile=PROFILE, num_task_examples=8)
        assert context.quant_method == "smoothquant"

    def test_contexts_are_cached(self):
        a = prepare_context(MODEL, 4, profile=PROFILE, num_task_examples=8)
        b = prepare_context(MODEL, 4, profile=PROFILE, num_task_examples=8)
        assert a is b

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            prepare_context(MODEL, 2, profile=PROFILE)


class TestTable1:
    def test_structure_and_wer_pattern(self):
        result = table1.run(
            model_names=[MODEL], precisions=(4,), profile=PROFILE, num_task_examples=8
        )
        methods = {row.method for row in result.rows}
        assert methods == {"w/o WM", "SpecMark", "RandomWM", "EmMark"}
        emmark_row = result.rows_for(4, "EmMark")[0]
        specmark_row = result.rows_for(4, "SpecMark")[0]
        random_row = result.rows_for(4, "RandomWM")[0]
        assert emmark_row.wer_percent == 100.0
        assert random_row.wer_percent == 100.0
        assert specmark_row.wer_percent <= 5.0
        rendered = result.render()
        assert "Table 1" in rendered and "EmMark" in rendered

    def test_average_degradation_computed(self):
        result = table1.run(
            model_names=[MODEL], precisions=(4,), profile=PROFILE, num_task_examples=8
        )
        delta = result.average_degradation(4, "EmMark", "perplexity")
        assert np.isfinite(delta)
        with pytest.raises(ValueError):
            result.average_degradation(4, "EmMark", "bleu")


class TestTable2:
    def test_rows_and_zero_gpu_memory(self):
        result = table2.run(model_names=[MODEL], precisions=(8, 4), profile=PROFILE)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.gpu_memory_gb == 0.0
            assert row.mean_seconds_per_layer >= 0.0
            assert row.num_layers > 0
        assert "Table 2" in result.render()


class TestFigure2a:
    def test_wer_stays_high_under_overwriting(self):
        result = figure2a.run(
            model_name=MODEL, bits=4, sweep=(0, 20, 60), profile=PROFILE,
            num_task_examples=8,
        )
        assert len(result.points) == 3
        assert result.points[0].wer_percent == 100.0
        assert result.minimum_wer() > 90.0
        assert "Figure 2(a)" in result.render()

    def test_multi_owner_variant_reports_every_owner(self):
        result = figure2a.run(
            model_name=MODEL, bits=4, sweep=(0, 20), profile=PROFILE,
            num_task_examples=8, owners=2,
        )
        assert result.owners == 2
        baseline = result.points[0]
        assert baseline.wer_percent == 100.0
        assert set(baseline.co_owner_wer) == {"owner-1"}
        assert baseline.co_owner_wer["owner-1"] == 100.0
        assert result.minimum_wer_all_owners() > 90.0
        assert "co-resident owners" in result.render()
        assert "Min co-owner WER" in result.render()


class TestFigure2b:
    def test_owner_wer_survives_rewatermarking(self):
        result = figure2b.run(
            model_name=MODEL, bits=4, sweep=(0, 12, 24), profile=PROFILE, num_task_examples=8
        )
        assert result.minimum_owner_wer() > 85.0
        # The attacker's own signature extracts from the attacked model.
        assert result.attacker_wer[-1] > 90.0
        assert "Figure 2(b)" in result.render()

    def test_multi_owner_variant_reports_every_owner(self):
        result = figure2b.run(
            model_name=MODEL, bits=4, sweep=(0, 12), profile=PROFILE,
            num_task_examples=8, owners=2,
        )
        assert result.owners == 2
        assert result.points[0].co_owner_wer == {"owner-1": 100.0}
        assert min(result.points[-1].co_owner_wer.values()) > 85.0
        assert "Min co-owner WER" in result.render()


class TestTable3:
    def test_all_coefficient_settings_extract(self):
        result = table3.run(model_name=MODEL, bits=4, profile=PROFILE, num_task_examples=8)
        assert len(result.rows) == 3
        assert all(row.wer_percent == 100.0 for row in result.rows)
        assert {(row.alpha, row.beta) for row in result.rows} == {(1.0, 0.0), (0.5, 0.5), (0.0, 1.0)}
        assert "Table 3" in result.render()


class TestFigure3:
    def test_capacity_sweep_extracts_everywhere(self):
        result = figure3.run(
            model_name=MODEL, bits=4, sweep=(4, 8, 16), profile=PROFILE, num_task_examples=8
        )
        assert [p.bits_per_layer for p in result.points] == [4, 8, 16]
        assert all(p.wer_percent == 100.0 for p in result.points)
        # Strength grows (more negative log10) with payload size.
        strengths = [p.log10_strength_per_layer for p in result.points]
        assert strengths[0] > strengths[1] > strengths[2]
        assert "Figure 3" in result.render()


class TestTable4:
    def test_integrity(self):
        from repro.finetune.full import FineTuneConfig

        result = table4.run(
            model_name=MODEL, bits=4, profile=PROFILE,
            finetune_config=FineTuneConfig(steps=15, batch_size=4),
        )
        assert result.wer_by_model["WM"] == 100.0
        # Non-watermarked models never approach the ownership threshold.  (On
        # the tiny sims accidental ±1 collisions keep their WER above the
        # paper's 0%, but far below any level that would assert ownership.)
        assert result.max_false_positive_wer() < 60.0
        assert result.wer_by_model["non-WM 1"] == 0.0
        assert set(result.wer_by_model) == {"WM", "non-WM 1", "non-WM 2", "non-WM 3", "non-WM 4"}
        assert "Table 4" in result.render()


class TestForging:
    def test_forging_scenarios(self):
        result = forging.run(model_name=MODEL, bits=4, profile=PROFILE)
        assert not result.fake_location_outcome.accepted
        assert result.owner_on_attacked.accepted
        assert not result.attacker_on_original.accepted
        assert result.per_layer_collision_probability < 1e-2
        assert result.log10_model_collision_probability < -20
        assert "Forging" in result.render()


class TestAblations:
    def test_pool_ratio_ablation(self):
        result = run_pool_ratio_ablation(
            model_name=MODEL, bits=4, ratios=(2.0, 10.0), profile=PROFILE, num_task_examples=8
        )
        assert len(result.points) == 2
        assert all(p.wer_percent == 100.0 for p in result.points)
        assert result.points[0].mean_pool_size <= result.points[1].mean_pool_size
        assert "pool ratio" in result.render().lower()

    def test_saliency_source_ablation(self):
        result = run_saliency_source_ablation(model_name=MODEL, bits=4, profile=PROFILE)
        assert 0.0 <= result.mean_overlap <= 1.0
        assert len(result.per_layer_overlap) > 0
        assert "saliency source" in result.render().lower()
