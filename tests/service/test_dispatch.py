"""TokenBucket and MicroBatchDispatcher behaviour (no HTTP involved)."""

import asyncio

import pytest

from repro.engine import EngineConfig, WatermarkEngine
from repro.service.dispatch import (
    MicroBatchDispatcher,
    QueueFullError,
    TokenBucket,
    VerifyJob,
)


class TestTokenBucket:
    def test_disabled_bucket_always_admits(self):
        bucket = TokenBucket(rate=None)
        assert not bucket.enabled
        assert all(bucket.try_acquire() for _ in range(1000))
        assert bucket.rejected == 0

    def test_burst_capacity_then_rejects(self):
        bucket = TokenBucket(rate=0.001, burst=3)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        assert bucket.rejected == 1

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate=1000.0, burst=1)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        import time

        time.sleep(0.01)  # 1000/s refill → full again
        assert bucket.try_acquire()

    def test_fractional_rate_still_admits_single_requests(self):
        """rate < 1/s must not lock the bucket shut (capacity clamps to 1)."""
        bucket = TokenBucket(rate=0.5)
        assert bucket.capacity == 1.0
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # next token in ~2s, not never

    def test_stats_shape(self):
        stats = TokenBucket(rate=5.0, burst=10.0).stats()
        assert stats["enabled"] is True
        assert stats["rate_per_sec"] == 5.0
        assert stats["burst"] == 10.0


def _run_jobs(dispatcher_kwargs, jobs_spec, engine):
    """Drive a dispatcher inside a private event loop and return outcomes."""

    async def main():
        dispatcher = MicroBatchDispatcher(engine, **dispatcher_kwargs)
        dispatcher.start()
        futures = [dispatcher.submit(job) for job in jobs_spec]
        outcomes = await asyncio.gather(*futures)
        await dispatcher.stop()
        return dispatcher, outcomes

    return asyncio.run(main())


class TestMicroBatchDispatcher:
    def test_concurrent_jobs_coalesce_into_one_batch(
        self, watermarked_and_key, quantized_awq4
    ):
        watermarked, key = watermarked_and_key
        engine = WatermarkEngine(EngineConfig())
        keys = {"owner": key}
        jobs = [
            VerifyJob(f"req-{i}", sid, model, dict(keys))
            for i, (sid, model) in enumerate(
                [("hit", watermarked), ("miss", quantized_awq4)] * 3
            )
        ]
        dispatcher, outcomes = _run_jobs(
            dict(max_batch=16, max_wait_ms=50.0), jobs, engine
        )
        # All six submitted before the loop ran → a single coalesced batch.
        assert dispatcher.batches == 1
        assert dispatcher.largest_batch == 6
        # Six jobs but only two distinct (suspect, key) pairs were verified.
        assert dispatcher.pairs_verified == 2
        owned = {o.suspect_id: o.decisions[0].owned for o in outcomes}
        assert owned == {"hit": True, "miss": False}

    def test_batched_decisions_match_direct_verify_fleet(
        self, watermarked_and_key, quantized_awq4
    ):
        watermarked, key = watermarked_and_key
        engine = WatermarkEngine(EngineConfig())
        direct = WatermarkEngine(EngineConfig()).verify_fleet(
            {"hit": watermarked, "miss": quantized_awq4}, {"owner": key}
        )
        direct_by_pair = {(p.suspect_id, p.key_id): p for p in direct.pairs}
        jobs = [
            VerifyJob("r1", "hit", watermarked, {"owner": key}),
            VerifyJob("r2", "miss", quantized_awq4, {"owner": key}),
        ]
        _, outcomes = _run_jobs(dict(max_batch=8, max_wait_ms=20.0), jobs, engine)
        for outcome in outcomes:
            for pair in outcome.decisions:
                reference = direct_by_pair[(pair.suspect_id, pair.key_id)]
                assert pair.matched_bits == reference.matched_bits
                assert pair.total_bits == reference.total_bits
                assert pair.owned == reference.owned
                assert pair.wer_percent == reference.wer_percent

    def test_threshold_groups_split_within_a_batch(self, watermarked_and_key):
        watermarked, key = watermarked_and_key
        engine = WatermarkEngine(EngineConfig())
        jobs = [
            VerifyJob("strict", "hit", watermarked, {"owner": key}, wer_threshold=100.0),
            VerifyJob("lenient", "hit", watermarked, {"owner": key}, wer_threshold=1.0),
        ]
        dispatcher, outcomes = _run_jobs(dict(max_batch=8, max_wait_ms=20.0), jobs, engine)
        assert dispatcher.batches == 1  # one batch, two threshold groups inside
        assert all(o.decisions[0].owned for o in outcomes)

    def test_same_id_different_models_do_not_alias(
        self, watermarked_and_key, quantized_awq4
    ):
        """Two jobs claiming one suspect_id but carrying different models must
        each be judged on their own weights (dedup is by object identity)."""
        watermarked, key = watermarked_and_key
        engine = WatermarkEngine(EngineConfig())
        jobs = [
            VerifyJob("a", "prod", watermarked, {"owner": key}),
            VerifyJob("b", "prod", quantized_awq4, {"owner": key}),
        ]
        dispatcher, outcomes = _run_jobs(dict(max_batch=8, max_wait_ms=50.0), jobs, engine)
        assert dispatcher.batches == 1  # both coalesced into one batch
        by_request = {o.request_id: o.decisions[0] for o in outcomes}
        assert by_request["a"].owned is True
        assert by_request["b"].owned is False
        # Both decisions still report the caller's suspect id.
        assert by_request["a"].suspect_id == "prod"
        assert by_request["b"].suspect_id == "prod"

    def test_queue_bound_raises(self, watermarked_and_key):
        watermarked, key = watermarked_and_key
        engine = WatermarkEngine(EngineConfig())

        async def main():
            dispatcher = MicroBatchDispatcher(engine, max_queue=2, max_wait_ms=1000.0)
            # Not started: jobs stay queued, so the bound is reached.
            dispatcher.submit(VerifyJob("a", "hit", watermarked, {"k": key}))
            dispatcher.submit(VerifyJob("b", "hit", watermarked, {"k": key}))
            with pytest.raises(QueueFullError):
                dispatcher.submit(VerifyJob("c", "hit", watermarked, {"k": key}))
            dispatcher.start()
            await dispatcher.stop()

        asyncio.run(main())

    def test_max_batch_splits_load(self, watermarked_and_key):
        watermarked, key = watermarked_and_key
        engine = WatermarkEngine(EngineConfig())
        jobs = [
            VerifyJob(f"req-{i}", "hit", watermarked, {"owner": key}) for i in range(5)
        ]
        dispatcher, outcomes = _run_jobs(dict(max_batch=2, max_wait_ms=20.0), jobs, engine)
        assert dispatcher.batches >= 3  # ceil(5 / 2)
        assert dispatcher.largest_batch <= 2
        assert len(outcomes) == 5

    def test_stats_shape(self, watermarked_and_key):
        watermarked, key = watermarked_and_key
        engine = WatermarkEngine(EngineConfig())
        jobs = [VerifyJob("r", "hit", watermarked, {"owner": key})]
        dispatcher, _ = _run_jobs(dict(max_batch=4, max_wait_ms=1.0), jobs, engine)
        stats = dispatcher.stats()
        assert stats["batches"] == 1
        assert stats["jobs_dispatched"] == 1
        assert stats["queue_depth"] == 0
        assert stats["mean_batch_size"] == 1.0
