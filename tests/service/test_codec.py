"""Wire / disk codec round trips for keys and quantized models."""

import numpy as np
import pytest

from repro.engine import WatermarkEngine
from repro.service.codec import (
    arrays_to_b64,
    b64_to_arrays,
    key_from_wire,
    key_to_wire,
    load_model,
    model_from_wire,
    model_to_wire,
    save_model,
)


class TestArrayTransport:
    def test_round_trip(self):
        arrays = {
            "a": np.arange(12, dtype=np.int64).reshape(3, 4),
            "b/nested": np.linspace(0, 1, 7),
        }
        decoded = b64_to_arrays(arrays_to_b64(arrays))
        assert set(decoded) == {"a", "b/nested"}
        np.testing.assert_array_equal(decoded["a"], arrays["a"])
        np.testing.assert_allclose(decoded["b/nested"], arrays["b/nested"])

    def test_rejects_bad_base64(self):
        with pytest.raises(ValueError, match="base64"):
            b64_to_arrays("!!! not base64 !!!")

    def test_rejects_non_npz(self):
        import base64

        with pytest.raises(ValueError, match="npz"):
            b64_to_arrays(base64.b64encode(b"plain bytes").decode())

    def test_rejects_non_string_payload(self):
        with pytest.raises(ValueError, match="base64 string"):
            b64_to_arrays(123)
        with pytest.raises(ValueError, match="base64 string"):
            b64_to_arrays(["nested"])


class TestKeyWire:
    def test_round_trip_preserves_verification(self, watermarked_and_key):
        watermarked, key = watermarked_and_key
        restored = key_from_wire(key_to_wire(key))
        assert restored.fingerprint() == key.fingerprint()
        np.testing.assert_array_equal(restored.signature, key.signature)
        assert WatermarkEngine().extract(watermarked, restored).wer_percent == 100.0

    def test_rejects_malformed_envelope(self):
        with pytest.raises(ValueError):
            key_from_wire({"meta": {}})
        with pytest.raises(ValueError):
            key_from_wire("not an object")


class TestModelCodec:
    def test_wire_round_trip_preserves_weights(self, quantized_awq4):
        restored = model_from_wire(model_to_wire(quantized_awq4))
        assert restored.layer_names() == quantized_awq4.layer_names()
        assert restored.method == quantized_awq4.method
        assert restored.bits == quantized_awq4.bits
        assert restored.config == quantized_awq4.config
        for name in quantized_awq4.layer_names():
            original = quantized_awq4.get_layer(name)
            copy = restored.get_layer(name)
            np.testing.assert_array_equal(copy.weight_int, original.weight_int)
            np.testing.assert_allclose(copy.scale, original.scale)
            assert copy.grid.bits == original.grid.bits
            if original.input_smoothing is not None:
                np.testing.assert_allclose(copy.input_smoothing, original.input_smoothing)

    def test_wire_round_trip_preserves_full_precision_state(self, quantized_awq4):
        restored = model_from_wire(model_to_wire(quantized_awq4))
        assert set(restored.full_precision_state) == set(quantized_awq4.full_precision_state)
        for name, value in quantized_awq4.full_precision_state.items():
            np.testing.assert_allclose(restored.full_precision_state[name], value)

    def test_disk_round_trip(self, quantized_awq4, tmp_path):
        save_model(quantized_awq4, tmp_path / "model")
        restored = load_model(tmp_path / "model")
        assert restored.layer_names() == quantized_awq4.layer_names()
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                restored.get_layer(name).weight_int,
                quantized_awq4.get_layer(name).weight_int,
            )

    def test_restored_model_verifies_identically(self, watermarked_and_key):
        """Transport must not perturb a single verification-relevant bit."""
        watermarked, key = watermarked_and_key
        restored = model_from_wire(model_to_wire(watermarked))
        engine = WatermarkEngine()
        direct = engine.extract(watermarked, key)
        via_wire = engine.extract(restored, key)
        assert via_wire.matched_bits == direct.matched_bits
        assert via_wire.total_bits == direct.total_bits

    def test_rejects_malformed_envelope(self):
        with pytest.raises(ValueError):
            model_from_wire({"arrays": ""})
