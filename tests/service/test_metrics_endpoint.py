"""``GET /metrics``: Prometheus exposition over a live server.

Every sample the endpoint emits must parse under the mini text-format
parser from the obs tests, and the catalog rows the README documents —
server counters, request-latency histogram, dispatcher, admission, audit,
plan cache — must all be present after real traffic.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceError

from tests.obs.test_metrics import parse_exposition


@pytest.fixture()
def scraped(client):
    """(samples, helps, types) after a burst of real verify traffic."""
    for _ in range(3):
        client.verify("hit")
    client.verify("miss")
    client.stats()
    return parse_exposition(client.metrics())


class TestExposition:
    def test_every_line_parses(self, scraped):
        samples, _, _ = scraped
        assert samples  # parse_exposition asserts per-line well-formedness

    def test_server_counters_present_and_counted(self, scraped):
        samples, _, types = scraped
        assert types["repro_server_requests_total"] == "counter"
        # The scrape itself plus the traffic above: strictly positive.
        assert samples[("repro_server_requests_total", "")] >= 5
        assert samples[("repro_server_verifications_total", "")] >= 4
        for name in (
            "repro_server_rejected_rate_limit_total",
            "repro_server_rejected_owner_rate_total",
            "repro_server_errors_total",
            "repro_server_timeouts_total",
        ):
            assert (name, "") in samples

    def test_request_latency_histogram(self, scraped):
        samples, _, types = scraped
        assert types["repro_server_request_seconds"] == "histogram"
        assert samples[("repro_server_request_seconds_count", "")] >= 5
        assert samples[("repro_server_request_seconds_sum", "")] > 0
        inf_buckets = [
            value
            for (name, labels), value in samples.items()
            if name == "repro_server_request_seconds_bucket" and labels == 'le="+Inf"'
        ]
        assert inf_buckets and inf_buckets[0] >= 5

    def test_dispatcher_and_admission_series(self, scraped):
        samples, _, _ = scraped
        assert samples[("repro_dispatch_batches_total", "")] >= 1
        assert ("repro_admission_rejected_total", "") in samples
        assert ("repro_owner_admission_rejected_total", "") in samples

    def test_audit_and_plan_cache_series(self, scraped):
        samples, _, types = scraped
        assert samples[("repro_audit_entries_total", "")] >= 4
        assert samples[("repro_audit_dropped_writes_total", "")] == 0
        assert samples[("repro_audit_writer_alive", "")] == 1
        assert types["repro_audit_writer_alive"] == "gauge"
        assert samples[("repro_plan_cache_hits_total", "")] >= 1
        assert ("repro_plan_cache_misses_total", "") in samples
        assert ("repro_registry_keys", "") in samples

    def test_stats_and_metrics_agree_on_request_count(self, client):
        client.verify("hit")
        stats = client.stats()
        samples, _, _ = parse_exposition(client.metrics())
        # /metrics was scraped after /stats: exactly one request apart.
        delta = (
            samples[("repro_server_requests_total", "")]
            - stats["server"]["requests_total"]
        )
        assert delta == 1

    def test_metrics_is_get_only(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/metrics", {})
        assert excinfo.value.status == 405
