"""End-to-end tests of the HTTP verification server.

A module-scoped server (see ``conftest.py``) holds one registered key and the
``hit`` / ``miss`` suspect pair; tests talk to it through the stdlib client.
Mutating scenarios (revocation, rate limiting) spin up their own servers so
the shared one stays pristine.
"""

import threading

import pytest

from repro.engine import EngineConfig, WatermarkEngine
from repro.service import (
    RateLimitedError,
    ServiceConfig,
    ServiceError,
    VerificationClient,
    VerificationServer,
    run_in_background,
)


class TestBasicEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_keys_listing(self, client, watermarked_and_key):
        _, key = watermarked_and_key
        records = client.keys()
        assert [r["key_id"] for r in records] == [key.fingerprint()]
        assert records[0]["owner"] == "acme"
        assert records[0]["revoked"] is False

    def test_keys_filtered_by_model_fingerprint(self, client, watermarked_and_key):
        _, key = watermarked_and_key
        assert client.keys(model_fingerprint=key.model_fingerprint())
        assert client.keys(model_fingerprint="wmm-none") == []

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/verify")
        assert excinfo.value.status == 405

    def test_invalid_json_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/register", {"owner": "x"})
        assert excinfo.value.status == 400


class TestVerification:
    def test_hit_is_owned(self, client):
        response = client.verify(suspect_id="hit")
        assert len(response["decisions"]) == 1
        decision = response["decisions"][0]
        assert decision["owned"] is True
        assert decision["wer_percent"] == 100.0
        assert decision["matched_bits"] == decision["total_bits"]

    def test_miss_is_not_owned(self, client):
        decision = client.verify(suspect_id="miss")["decisions"][0]
        assert decision["owned"] is False

    def test_decisions_match_direct_engine_call(
        self, client, watermarked_and_key, quantized_awq4
    ):
        """The serving path must be bit-identical to the library path."""
        watermarked, key = watermarked_and_key
        direct = WatermarkEngine(EngineConfig()).verify_fleet(
            {"hit": watermarked, "miss": quantized_awq4}, {key.fingerprint(): key}
        )
        direct_by_pair = {(p.suspect_id, p.key_id): p for p in direct.pairs}
        for suspect_id in ("hit", "miss"):
            decision = client.verify(suspect_id=suspect_id)["decisions"][0]
            reference = direct_by_pair[(suspect_id, decision["key_id"])]
            assert decision["matched_bits"] == reference.matched_bits
            assert decision["total_bits"] == reference.total_bits
            assert decision["owned"] == reference.owned
            assert decision["wer_percent"] == reference.wer_percent

    def test_inline_model_verification(self, client, watermarked_and_key):
        watermarked, _ = watermarked_and_key
        response = client.verify(model=watermarked)
        assert response["decisions"][0]["owned"] is True

    def test_explicit_key_ids(self, client, watermarked_and_key):
        _, key = watermarked_and_key
        response = client.verify(suspect_id="hit", key_ids=[key.fingerprint()])
        assert response["decisions"][0]["key_id"] == key.fingerprint()

    def test_non_string_suspect_id_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/verify", {"suspect_id": ["hit"]})
        assert excinfo.value.status == 400

    def test_unknown_suspect_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.verify(suspect_id="ghost")
        assert excinfo.value.status == 404

    def test_unknown_key_id_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.verify(suspect_id="hit", key_ids=["wmk-ghost"])
        assert excinfo.value.status == 404

    def test_concurrent_requests_batch_and_agree(self, server_handle):
        """Parallel clients hammering hit/miss still get exact verdicts."""
        results = {}
        errors = []

        def worker(suspect_id, slot):
            try:
                with VerificationClient(port=server_handle.port) as c:
                    results[slot] = c.verify(suspect_id=suspect_id)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=("hit" if i % 2 == 0 else "miss", i))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for slot, response in results.items():
            expected = slot % 2 == 0
            assert response["decisions"][0]["owned"] is expected


class TestStatsAndAudit:
    def test_stats_exposes_all_sections(self, client):
        client.verify(suspect_id="hit")
        stats = client.stats()
        assert {"server", "dispatcher", "admission", "plan_cache", "registry",
                "suspects", "audit"} <= set(stats)
        assert stats["server"]["verifications"] >= 1
        assert stats["registry"]["keys"] == 1
        assert stats["suspects"]["count"] >= 2
        assert stats["audit"]["entries"] >= 1
        # Satellite: plan-cache hit/miss/eviction counters are observable.
        assert {"hits", "misses", "evictions", "hit_rate"} <= set(stats["plan_cache"])

    def test_warm_cache_serving(self, client):
        """Repeat verification of a known key performs zero rescoring."""
        client.verify(suspect_id="hit")
        before = client.stats()["plan_cache"]
        client.verify(suspect_id="hit")
        after = client.stats()["plan_cache"]
        assert after["misses"] == before["misses"]
        assert after["hits"] > before["hits"]


class TestRevocationAndAdmission:
    def test_revoked_key_stops_serving(self, watermarked_and_key, quantized_awq4):
        watermarked, key = watermarked_and_key
        server = VerificationServer(config=ServiceConfig(port=0, max_wait_ms=1.0))
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                record = c.register_key(key, owner="acme")
                c.upload_suspect(watermarked, suspect_id="hit")
                assert c.verify(suspect_id="hit")["decisions"][0]["owned"] is True
                revoked = c.revoke_key(record["key_id"])
                assert revoked["revoked"] is True
                with pytest.raises(ServiceError) as excinfo:
                    c.verify(suspect_id="hit")
                assert excinfo.value.status == 400  # no active keys left

    def test_default_suspect_ids_are_content_addressed(
        self, watermarked_and_key, quantized_awq4
    ):
        """Same-architecture but different-weight uploads must not alias."""
        watermarked, key = watermarked_and_key
        server = VerificationServer(config=ServiceConfig(port=0, max_wait_ms=1.0))
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                c.register_key(key, owner="acme")
                id_wm = c.upload_suspect(watermarked)["suspect_id"]
                id_clean = c.upload_suspect(quantized_awq4)["suspect_id"]
                assert id_wm != id_clean
                assert c.upload_suspect(watermarked)["suspect_id"] == id_wm
                assert c.verify(suspect_id=id_wm)["decisions"][0]["owned"] is True
                assert c.verify(suspect_id=id_clean)["decisions"][0]["owned"] is False

    def test_burst_without_rate_is_rejected(self):
        with pytest.raises(ValueError, match="rate_limit_burst requires"):
            ServiceConfig(rate_limit_burst=50)

    def test_suspect_store_is_lru_bounded(self, watermarked_and_key, quantized_awq4):
        watermarked, key = watermarked_and_key
        server = VerificationServer(
            config=ServiceConfig(port=0, max_wait_ms=1.0, max_suspects=2)
        )
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                c.register_key(key, owner="acme")
                for index in range(4):
                    c.upload_suspect(quantized_awq4, suspect_id=f"s-{index}")
                c.upload_suspect(watermarked, suspect_id="hit")
                stats = c.stats()["suspects"]
                assert stats["count"] == 2
                assert stats["evictions"] == 3
                # Newest entries survive, oldest were evicted.
                assert c.verify(suspect_id="hit")["decisions"][0]["owned"] is True
                with pytest.raises(ServiceError) as excinfo:
                    c.verify(suspect_id="s-0")
                assert excinfo.value.status == 404

    def test_oversized_header_returns_400(self, server_handle):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server_handle.port, timeout=5)
        try:
            conn.putrequest("GET", "/healthz", skip_host=False)
            conn.putheader("X-Padding", "x" * (80 * 1024))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_rate_limit_returns_429(self, watermarked_and_key):
        watermarked, key = watermarked_and_key
        server = VerificationServer(
            config=ServiceConfig(
                port=0, max_wait_ms=1.0, rate_limit_per_sec=0.001, rate_limit_burst=2
            )
        )
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                c.register_key(key, owner="acme")
                c.upload_suspect(watermarked, suspect_id="hit")
                assert c.verify(suspect_id="hit")["decisions"]
                assert c.verify(suspect_id="hit")["decisions"]
                with pytest.raises(RateLimitedError):
                    c.verify(suspect_id="hit")
                stats = c.stats()
                assert stats["admission"]["rejected"] >= 1
                assert stats["server"]["rejected_rate_limit"] >= 1


class TestMultiOwnerService:
    """Per-owner admission control and multi-owner /suspects ranking."""

    @pytest.fixture()
    def second_owner_key(self, quantized_awq4, activation_stats, emmark_config):
        """A second owner's key for the same model (different seed d)."""
        config = emmark_config.with_overrides(
            seed=emmark_config.seed + 13, signature_seed=emmark_config.signature_seed + 13
        )
        _, key, _ = WatermarkEngine().insert(
            quantized_awq4, activation_stats, config=config
        )
        return key

    def test_per_owner_rate_limit_is_keyed_by_registry_owner(
        self, watermarked_and_key, second_owner_key
    ):
        watermarked, key = watermarked_and_key
        server = VerificationServer(
            config=ServiceConfig(
                port=0,
                max_wait_ms=1.0,
                owner_rate_limit_per_sec=0.001,
                owner_rate_limit_burst=2,
            )
        )
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                acme = c.register_key(key, owner="acme")["key_id"]
                globex = c.register_key(second_owner_key, owner="globex")["key_id"]
                c.upload_suspect(watermarked, suspect_id="hit")
                # acme's private bucket drains after its burst of 2...
                assert c.verify(suspect_id="hit", key_ids=[acme])["decisions"]
                assert c.verify(suspect_id="hit", key_ids=[acme])["decisions"]
                with pytest.raises(RateLimitedError):
                    c.verify(suspect_id="hit", key_ids=[acme])
                # ...while globex's bucket is untouched: one owner cannot
                # starve another (the global-bucket failure mode).
                assert c.verify(suspect_id="hit", key_ids=[globex])["decisions"]
                stats = c.stats()
                assert stats["owner_admission"]["enabled"] is True
                assert stats["owner_admission"]["rejected"] >= 1
                assert "acme" in stats["owner_admission"]["rejected_by_owner"]
                assert stats["server"]["rejected_owner_rate"] >= 1

    def test_mixed_owner_request_rejection_refunds_admitted_owners(
        self, watermarked_and_key, second_owner_key
    ):
        watermarked, key = watermarked_and_key
        server = VerificationServer(
            config=ServiceConfig(
                port=0,
                max_wait_ms=1.0,
                owner_rate_limit_per_sec=0.001,
                owner_rate_limit_burst=2,
            )
        )
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                acme = c.register_key(key, owner="acme")["key_id"]
                globex = c.register_key(second_owner_key, owner="globex")["key_id"]
                c.upload_suspect(watermarked, suspect_id="hit")
                # Drain acme entirely.
                c.verify(suspect_id="hit", key_ids=[acme])
                c.verify(suspect_id="hit", key_ids=[acme])
                # A request touching both owners is rejected by acme's empty
                # bucket — and must not charge globex for the failed attempt.
                with pytest.raises(RateLimitedError):
                    c.verify(suspect_id="hit", key_ids=[acme, globex])
                with pytest.raises(RateLimitedError):
                    c.verify(suspect_id="hit", key_ids=[acme, globex])
                assert c.verify(suspect_id="hit", key_ids=[globex])["decisions"]
                assert c.verify(suspect_id="hit", key_ids=[globex])["decisions"]

    def test_owner_burst_without_rate_is_rejected(self):
        with pytest.raises(ValueError, match="owner_rate_limit_burst requires"):
            ServiceConfig(owner_rate_limit_burst=10)

    def test_suspects_ranking_across_co_resident_keys(
        self, watermarked_and_key, second_owner_key
    ):
        watermarked, key = watermarked_and_key
        server = VerificationServer(
            engine=WatermarkEngine(EngineConfig()),
            config=ServiceConfig(port=0, max_wait_ms=1.0),
        )
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                acme = c.register_key(key, owner="acme")["key_id"]
                globex = c.register_key(second_owner_key, owner="globex")["key_id"]
                out = c.upload_suspect(watermarked, suspect_id="hit", rank=True)
                # Both claimants of the model family are listed with owners.
                assert {entry["key_id"] for entry in out["candidate_keys"]} == {acme, globex}
                assert {entry["owner"] for entry in out["candidate_keys"]} == {"acme", "globex"}
                # Ranking puts the true owner first with full evidence.
                ranking = out["ranking"]
                assert [entry["key_id"] for entry in ranking][0] == acme
                assert ranking[0]["owned"] is True
                assert ranking[0]["wer_percent"] == 100.0
                assert ranking[0]["owner"] == "acme"
                assert ranking[1]["key_id"] == globex
                assert ranking[1]["owned"] is False
                # Without the flag the upload stays cheap (no ranking field).
                plain = c.upload_suspect(watermarked, suspect_id="hit-2")
                assert "ranking" not in plain

    def test_rank_flag_must_be_boolean(self, watermarked_and_key):
        watermarked, key = watermarked_and_key
        server = VerificationServer(config=ServiceConfig(port=0, max_wait_ms=1.0))
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                from repro.service.codec import model_to_wire

                with pytest.raises(ServiceError, match="'rank' must be a boolean") as excinfo:
                    c._request(
                        "POST", "/suspects",
                        {"model": model_to_wire(watermarked), "rank": "yes"},
                    )
                assert excinfo.value.status == 400

    def test_multi_owner_keys_register_with_co_residents(
        self, quantized_awq4, activation_stats
    ):
        engine = WatermarkEngine()
        result = engine.insert_multi(quantized_awq4, activation_stats, 2)
        server = VerificationServer(config=ServiceConfig(port=0, max_wait_ms=1.0))
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                for owner_id, key in result.keys().items():
                    c.register_key(key, owner=owner_id)
                c.upload_suspect(result.model, suspect_id="deploy")
                # Both co-resident owners verify independently at 100%.
                for record in c.keys():
                    decision = c.verify(
                        suspect_id="deploy", key_ids=[record["key_id"]]
                    )["decisions"][0]
                    assert decision["owned"] is True
                    assert decision["wer_percent"] == 100.0
                    assert record["co_residents"]  # denormalized onto the record
                assert c.stats()["registry"]["multi_owner_models"] == 1


class TestVersionedSurface:
    """The /v1 resource surface, legacy aliases and the error envelope."""

    def test_v1_and_legacy_paths_serve_the_same_payload(self, client):
        v1 = client._request("GET", "/v1/healthz")
        legacy = client._request("GET", "/healthz")
        assert v1["status"] == legacy["status"] == "ok"

    def test_legacy_path_carries_deprecation_header(self, server_handle):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server_handle.port, timeout=5)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            response.read()
            assert response.status == 200
            assert response.getheader("Deprecation") == "true"
            conn.request("GET", "/v1/healthz")
            response = conn.getresponse()
            response.read()
            assert response.status == 200
            assert response.getheader("Deprecation") is None
        finally:
            conn.close()

    def test_legacy_requests_are_counted(self, client):
        before = client.stats()["server"]["legacy_requests"]
        client._request("GET", "/healthz")
        client._request("GET", "/stats")
        after = client.stats()["server"]["legacy_requests"]
        assert after == before + 2
        assert "repro_server_legacy_requests_total" in client.metrics()

    def test_error_envelope_shape(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.verify(suspect_id="ghost")
        error = excinfo.value.payload["error"]
        assert set(error) >= {"code", "message"}
        assert error["code"] == "not_found"
        assert excinfo.value.code == "not_found"
        assert "ghost" in error["message"]

    def test_envelope_codes_by_status(self, client):
        cases = [
            ("POST", "/v1/register", {"owner": "x"}, 400, "invalid_request"),
            ("GET", "/v1/nope", None, 404, "not_found"),
            ("GET", "/v1/verify", None, 405, "method_not_allowed"),
        ]
        for method, path, body, status, code in cases:
            with pytest.raises(ServiceError) as excinfo:
                client._request(method, path, body)
            assert excinfo.value.status == status
            assert excinfo.value.code == code

    def test_rate_limited_envelope_carries_retry_after(self, watermarked_and_key):
        watermarked, key = watermarked_and_key
        server = VerificationServer(
            config=ServiceConfig(
                port=0, max_wait_ms=1.0, rate_limit_per_sec=0.001, rate_limit_burst=1
            )
        )
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                c.register_key(key, owner="acme")
                c.upload_suspect(watermarked, suspect_id="hit")
                c.verify(suspect_id="hit")
                with pytest.raises(RateLimitedError) as excinfo:
                    c.verify(suspect_id="hit")
                assert excinfo.value.code == "rate_limited"
                assert excinfo.value.retry_after is not None

    def test_reason_phrases_cover_all_emitted_statuses(self):
        # Regression: 202 (job submit) and 409 (job conflicts) once fell
        # through to the bare status number because _REASONS lacked them.
        from repro.service.server import _ERROR_CODES, _REASONS

        for status in (200, 202, 400, 404, 405, 409, 429, 500, 503):
            assert status in _REASONS
        assert _REASONS[202] == "Accepted"
        assert _REASONS[409] == "Conflict"
        # Every defaulted error status has an envelope code.
        for status in (400, 404, 405, 409, 429, 500, 503):
            assert status in _ERROR_CODES

    def test_delete_key_resource_route(self, watermarked_and_key):
        _, key = watermarked_and_key
        server = VerificationServer(config=ServiceConfig(port=0, max_wait_ms=1.0))
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                record = c.register_key(key, owner="acme")
                revoked = c._request("DELETE", f"/v1/keys/{record['key_id']}")
                assert revoked["revoked"]["revoked"] is True
                # Legacy POST /revoke still answers for old clients.
                again = c._request("POST", "/revoke", {"key_id": record["key_id"]})
                assert again["revoked"]["revoked"] is True
                with pytest.raises(ServiceError) as excinfo:
                    c._request("DELETE", "/v1/keys/wmk-ghost")
                assert excinfo.value.status == 404

    def test_readiness_probe_flips_to_503_on_drain(self, watermarked_and_key):
        server = VerificationServer(config=ServiceConfig(port=0, max_wait_ms=1.0))
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                ready = c.healthz(ready=True)
                assert ready["status"] == "ok"
                assert ready["ready"] is True
                server.jobs.drain()
                from repro.service import ServiceUnavailableError

                with pytest.raises(ServiceUnavailableError) as excinfo:
                    c.healthz(ready=True)
                assert excinfo.value.code == "not_ready"
                assert excinfo.value.payload["ready"] is False
                # Liveness stays green while draining (the pod is alive).
                assert c.healthz()["status"] == "ok"
