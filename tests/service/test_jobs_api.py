"""End-to-end tests of the async jobs API (``/v1/jobs``).

Covers the full lifecycle — submit (202 + Location) → stream events
mid-run → report — plus cooperative cancellation, the checkpoint-backed
resume guarantee (a job interrupted by a server kill resumes on a fresh
server instance and yields a **bit-identical** decision digest), and the
admission limit on concurrent jobs.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.engine import EngineConfig, WatermarkEngine
from repro.service import (
    RateLimitedError,
    ServiceConfig,
    VerificationClient,
    VerificationServer,
    run_in_background,
)
from repro.service.client import ServiceError

ATTACKS = [
    {"name": "overwrite", "strengths": [0, 20]},
    {"name": "pruning", "strengths": [0.5]},
]

# The deliberately slow "slowmo" attack is registered by conftest.py; a
# four-cell serial grid of it stays mid-run long enough to observe.
SLOW_ATTACKS = [{"name": "slowmo", "strengths": [0, 1, 2, 3]}]


def _start_server(checkpoint_dir, **overrides):
    config = ServiceConfig(
        port=0, max_wait_ms=2.0, checkpoint_dir=checkpoint_dir, **overrides
    )
    server = VerificationServer(engine=WatermarkEngine(EngineConfig()), config=config)
    return run_in_background(server)


@pytest.fixture(scope="module")
def job_server(tmp_path_factory, watermarked_and_key, quantized_awq4):
    """A server with a checkpoint directory, key registered, suspects up."""
    watermarked, key = watermarked_and_key
    checkpoint_dir = tmp_path_factory.mktemp("job-checkpoints")
    with _start_server(checkpoint_dir) as handle:
        with VerificationClient(port=handle.port) as client:
            client.register_key(key, owner="acme")
            client.upload_suspect(watermarked, suspect_id="hit")
            client.upload_suspect(quantized_awq4, suspect_id="miss")
        yield handle, checkpoint_dir


@pytest.fixture()
def job_client(job_server):
    handle, _ = job_server
    with VerificationClient(port=handle.port) as active:
        yield active


class TestJobLifecycle:
    def test_submit_answers_202_with_location(self, job_server):
        handle, _ = job_server
        conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/jobs/robustness",
                body=json.dumps({"suspect_id": "hit", "attacks": ATTACKS, "seed": 3}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 202
            assert response.reason == "Accepted"
            payload = json.loads(response.read())
            job_id = payload["job"]["job_id"]
            assert response.getheader("Location") == f"/v1/jobs/{job_id}"
        finally:
            conn.close()

    def test_digest_matches_synchronous_endpoint(self, job_client):
        sync = job_client.robustness("hit", attacks=ATTACKS, seed=3)
        handle = job_client.submit_robustness_job("hit", attacks=ATTACKS, seed=3)
        status = handle.wait(timeout=120)
        assert status["state"] == "succeeded"
        assert status["completed_cells"] == status["total_cells"] == 3
        out = handle.report()
        assert out["suspect_id"] == "hit"
        assert out["report"]["decision_digest"] == sync["report"]["decision_digest"]

    def test_event_stream_yields_cells_then_end(self, job_client):
        handle = job_client.submit_robustness_job("hit", attacks=ATTACKS, seed=3)
        events = list(handle.events())
        kinds = [event["kind"] for event in events]
        assert kinds == ["cell"] * 3 + ["end"]
        assert [event["seq"] for event in events] == [0, 1, 2, 3]
        assert events[-1]["state"] == "succeeded"
        assert events[-1]["completed_cells"] == 3
        cell_ids = {event["cell_id"] for event in events[:-1]}
        assert len(cell_ids) == 3

    def test_events_since_skips_prefix(self, job_client):
        handle = job_client.submit_robustness_job("hit", attacks=ATTACKS, seed=3)
        handle.wait(timeout=120)
        tail = list(handle.events(since=2))
        assert [event["seq"] for event in tail] == [2, 3]

    def test_stream_is_readable_mid_run(self, job_client):
        handle = job_client.submit_robustness_job(
            "hit", attacks=SLOW_ATTACKS, seed=3, executor="serial"
        )
        stream = handle.events()
        first = next(stream)
        assert first["kind"] == "cell"
        # The stream delivered a verdict while the sweep is still going.
        status = handle.status()
        assert status["completed_cells"] < status["total_cells"]
        rest = list(stream)
        assert rest[-1]["kind"] == "end"
        assert rest[-1]["state"] == "succeeded"

    def test_status_listing_and_meta(self, job_client):
        handle = job_client.submit_robustness_job("hit", attacks=ATTACKS, seed=3)
        status = handle.wait(timeout=120)
        assert status["kind"] == "robustness"
        assert status["suspect_id"] == "hit"
        assert status["key_id"].startswith("wmk-")
        assert status["checkpoint"].endswith(".jsonl")
        assert handle.job_id in {job["job_id"] for job in job_client.jobs()}

    def test_unknown_job_is_404(self, job_client):
        with pytest.raises(ServiceError, match="unknown job") as excinfo:
            job_client.job_status("job-does-not-exist")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_report_before_finish_is_409(self, job_client):
        # seed=13 so no earlier test's checkpoint satisfies this grid and
        # the job really is mid-run when the report is requested.
        handle = job_client.submit_robustness_job(
            "hit", attacks=SLOW_ATTACKS, seed=13, executor="serial"
        )
        with pytest.raises(ServiceError, match="report not ready") as excinfo:
            handle.report()
        assert excinfo.value.status == 409
        assert excinfo.value.code == "job_not_finished"
        assert excinfo.value.retry_after is not None
        handle.wait(timeout=120)


class TestCancellation:
    def test_cancel_mid_run(self, job_client):
        handle = job_client.submit_robustness_job(
            "hit", attacks=SLOW_ATTACKS, seed=21, executor="serial"
        )
        stream = handle.events()
        next(stream)  # at least one cell done; the sweep is live
        status = handle.cancel()
        assert status["state"] in ("running", "cancelled")
        final = handle.wait(timeout=120)
        assert final["state"] == "cancelled"
        assert final["completed_cells"] < final["total_cells"]
        # The stream still terminates cleanly with the end record.
        *_, last = stream
        assert last["kind"] == "end"
        assert last["state"] == "cancelled"

    def test_report_of_cancelled_job_is_409(self, job_client):
        handle = job_client.submit_robustness_job(
            "hit", attacks=SLOW_ATTACKS, seed=22, executor="serial"
        )
        handle.cancel()
        handle.wait(timeout=120)
        with pytest.raises(ServiceError) as excinfo:
            handle.report()
        assert excinfo.value.status == 409
        assert excinfo.value.code == "job_cancelled"

    def test_cancel_of_finished_job_is_409(self, job_client):
        handle = job_client.submit_robustness_job("hit", attacks=ATTACKS, seed=3)
        handle.wait(timeout=120)
        with pytest.raises(ServiceError) as excinfo:
            handle.cancel()
        assert excinfo.value.status == 409
        assert excinfo.value.code == "job_finished"


class TestCheckpointResume:
    def test_resubmit_replays_from_checkpoint(self, job_server, job_client):
        _, checkpoint_dir = job_server
        first = job_client.submit_robustness_job("hit", attacks=ATTACKS, seed=7)
        first.wait(timeout=120)
        digest = first.report()["report"]["decision_digest"]
        assert list(checkpoint_dir.glob("*.jsonl"))

        again = job_client.submit_robustness_job("hit", attacks=ATTACKS, seed=7)
        events = list(again.events())
        assert all(event["replayed"] for event in events if event["kind"] == "cell")
        assert again.report()["report"]["decision_digest"] == digest
        assert again.status()["replayed_cells"] == 3

    def test_kill_server_mid_job_then_resume(
        self, tmp_path, watermarked_and_key
    ):
        """The tentpole guarantee: a job killed with the server resumes on a
        fresh instance from the shared checkpoint directory, replays the
        completed cells and lands on a bit-identical decision digest."""
        watermarked, key = watermarked_and_key

        with _start_server(tmp_path) as handle:
            with VerificationClient(port=handle.port) as client:
                client.register_key(key, owner="acme")
                client.upload_suspect(watermarked, suspect_id="prod")
                # Uninterrupted reference digest via the synchronous endpoint.
                reference = client.robustness(
                    "prod", attacks=SLOW_ATTACKS, seed=5, executor="serial"
                )["report"]["decision_digest"]
                victim = client.submit_robustness_job(
                    "prod", attacks=SLOW_ATTACKS, seed=5, executor="serial"
                )
                stream = victim.events()
                next(stream)  # ≥1 cell checkpointed
                stream.close()
            # Context exit kills the server with the job still in flight.

        assert list(tmp_path.glob("*.jsonl")), "checkpoint must survive the kill"

        with _start_server(tmp_path) as handle:
            with VerificationClient(port=handle.port) as client:
                client.register_key(key, owner="acme")
                client.upload_suspect(watermarked, suspect_id="prod")
                resumed = client.submit_robustness_job(
                    "prod", attacks=SLOW_ATTACKS, seed=5, executor="serial"
                )
                events = list(resumed.events())
                replayed = [
                    event for event in events
                    if event["kind"] == "cell" and event["replayed"]
                ]
                assert replayed, "completed cells must replay, not recompute"
                assert events[-1]["state"] == "succeeded"
                assert resumed.report()["report"]["decision_digest"] == reference


class TestJobAdmission:
    def test_active_job_limit_is_429(self, tmp_path, watermarked_and_key):
        watermarked, key = watermarked_and_key
        with _start_server(tmp_path, job_max_active=1) as handle:
            with VerificationClient(port=handle.port) as client:
                client.register_key(key, owner="acme")
                client.upload_suspect(watermarked, suspect_id="prod")
                running = client.submit_robustness_job(
                    "prod", attacks=SLOW_ATTACKS, seed=3, executor="serial"
                )
                with pytest.raises(RateLimitedError) as excinfo:
                    client.submit_robustness_job(
                        "prod", attacks=SLOW_ATTACKS, seed=4, executor="serial"
                    )
                assert excinfo.value.code == "job_limit"
                assert excinfo.value.retry_after is not None
                running.cancel()
                running.wait(timeout=120)

    def test_jobs_surface_in_stats(self, job_client):
        handle = job_client.submit_robustness_job("hit", attacks=ATTACKS, seed=3)
        handle.wait(timeout=120)
        jobs_stats = job_client.stats()["jobs"]
        assert jobs_stats["finished"]["succeeded"] >= 1
        assert jobs_stats["states"]["succeeded"] >= 1
        assert jobs_stats["retained"] >= 1
        assert jobs_stats["draining"] is False
