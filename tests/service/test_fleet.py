"""Sharded fleet: hash ring, occupancy audit, router/client round-trips.

The invariants under test are the ones the benchmark gate
(``benchmarks/compare_bench.py``, kind ``service_fleet``) later enforces on
real artifacts: placement is deterministic and coordination-free, the
occupancy audit's digest is independent of how the key population is
sharded, and a verify answered through the router is bit-identical to one
answered by the owning shard directly.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.engine import EngineConfig, WatermarkEngine
from repro.engine.allocator import SlotAllocator
from repro.service import (
    FleetAuditError,
    FleetClient,
    HashRing,
    KeyRegistry,
    OccupancyAuditReport,
    ServiceError,
    VerificationClient,
    launch_fleet,
    occupancy_audit,
    partition_registry,
    shard_labels,
)
from repro.service.loadgen import LoadConfig, RequestTemplate, run_load


def synthetic_keys(base_key, count):
    """Distinct keys (and model fingerprints) from one real insertion.

    ``model_name`` feeds both fingerprints, so renaming yields genuinely
    distinct registry entries while keeping the reproduced slot locations
    (driven by config/weights/activations) intact.
    """
    return [
        replace(base_key, model_name=f"synth-{index:04d}") for index in range(count)
    ]


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        keys = [f"wmm-{i:03d}" for i in range(200)]
        a = HashRing(shard_labels(4))
        b = HashRing(shard_labels(4))
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]

    def test_index_for_matches_label_order(self):
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        for key in (f"wmm-{i}" for i in range(50)):
            assert ring.nodes[ring.index_for(key)] == ring.node_for(key)

    def test_spread_covers_every_node_and_sums(self):
        keys = [f"wmm-{i:04d}" for i in range(500)]
        ring = HashRing(shard_labels(4))
        spread = ring.spread(keys)
        assert sum(spread.values()) == len(keys)
        assert all(count > 0 for count in spread.values())

    def test_adding_a_shard_only_moves_keys_to_the_new_shard(self):
        # The consistent-hashing contract: growing the fleet never shuffles
        # keys between surviving shards — a key either stays put or lands on
        # the newcomer.
        keys = [f"wmm-{i:04d}" for i in range(300)]
        before = HashRing(shard_labels(2))
        after = HashRing(shard_labels(3))
        for key in keys:
            new_owner = after.node_for(key)
            if new_owner != "shard-2":
                assert new_owner == before.node_for(key)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], replicas=0)

    def test_shard_labels(self):
        assert shard_labels(3) == ["shard-0", "shard-1", "shard-2"]


class TestOccupancyAudit:
    def test_single_key_is_disjoint(self, watermarked_and_key):
        _, key = watermarked_and_key
        registry = KeyRegistry()
        registry.register(key, owner="acme")
        report = occupancy_audit(registry)
        assert report.ok
        assert len(report.verdicts) == 1
        verdict = report.verdicts[0]
        assert verdict.model_fingerprint == key.model_fingerprint()
        assert verdict.key_ids == [key.fingerprint()]
        assert verdict.owners == ["acme"]
        assert verdict.total_slots == key.total_bits
        assert report.digest().startswith("aud-")

    def test_occupancy_aware_co_residents_pass(
        self, quantized_awq4, activation_stats, emmark_config, watermarked_and_key
    ):
        _, first = watermarked_and_key
        engine = WatermarkEngine(EngineConfig())
        occupied = SlotAllocator.from_keys({first.fingerprint(): first}, engine)
        _, second, _ = engine.insert(
            quantized_awq4,
            activation_stats,
            config=emmark_config.with_overrides(signature_seed=977),
            occupied=occupied,
        )
        assert second.fingerprint() != first.fingerprint()
        registry = KeyRegistry()
        registry.register(first, owner="acme")
        registry.register(second, owner="globex")
        report = occupancy_audit(registry, engine)
        assert report.ok
        (verdict,) = report.verdicts
        assert verdict.total_slots == first.total_bits + second.total_bits
        assert sorted(verdict.owners) == ["acme", "globex"]

    def test_overlapping_pair_is_detected(self, watermarked_and_key):
        _, key = watermarked_and_key
        # Same plan inputs, negated signature: a distinct key id that
        # reproduces the exact same locations — a guaranteed collision.
        impostor = replace(key, signature=-key.signature)
        assert impostor.fingerprint() != key.fingerprint()
        registry = KeyRegistry()
        registry.register(key, owner="acme")
        registry.register(impostor, owner="mallory")
        report = occupancy_audit(registry)
        assert not report.ok
        (verdict,) = report.collisions
        assert verdict.collision is not None
        assert verdict.collision["layer"]
        assert verdict.collision["indices"]
        assert verdict.collision["holder"] in verdict.key_ids

    def test_collision_does_not_abort_the_sweep(self, watermarked_and_key):
        _, key = watermarked_and_key
        clean = synthetic_keys(key, 1)[0]
        registry = KeyRegistry()
        registry.register(key, owner="acme")
        registry.register(replace(key, signature=-key.signature), owner="mallory")
        registry.register(clean, owner="acme")
        report = occupancy_audit(registry)
        assert len(report.verdicts) == 2
        assert len(report.collisions) == 1
        by_fp = {v.model_fingerprint: v for v in report.verdicts}
        assert by_fp[clean.model_fingerprint()].disjoint

    def test_digest_is_shard_count_invariant(self, watermarked_and_key):
        _, base = watermarked_and_key
        keys = synthetic_keys(base, 6)
        single = KeyRegistry()
        for key in keys:
            single.register(key, owner="acme")
        whole = occupancy_audit(single)

        ring = HashRing(shard_labels(2))
        partitions = [KeyRegistry(), KeyRegistry()]
        for key in keys:
            partitions[ring.index_for(key.model_fingerprint())].register(
                key, owner="acme"
            )
        merged = OccupancyAuditReport.merge(
            [occupancy_audit(part) for part in partitions]
        )
        assert merged.digest() == whole.digest()
        assert merged.ok

    def test_merge_rejects_duplicate_fingerprints(self, watermarked_and_key):
        _, key = watermarked_and_key
        registry = KeyRegistry()
        registry.register(key, owner="acme")
        report = occupancy_audit(registry)
        with pytest.raises(ValueError, match="more than one shard"):
            OccupancyAuditReport.merge([report, report])

    def test_wire_round_trip_preserves_digest(self, watermarked_and_key):
        _, key = watermarked_and_key
        registry = KeyRegistry()
        registry.register(key, owner="acme")
        registry.register(replace(key, signature=-key.signature), owner="mallory")
        report = occupancy_audit(registry)
        revived = OccupancyAuditReport.from_dict(report.to_dict())
        assert revived.digest() == report.digest()
        assert revived.ok == report.ok
        assert len(revived.collisions) == len(report.collisions)


@pytest.fixture(scope="module")
def fleet(watermarked_and_key, quantized_awq4):
    """A running 2-shard fleet with the key and both suspects registered
    through the router (so the router learns the suspect placements)."""
    watermarked, key = watermarked_and_key
    with launch_fleet(num_shards=2, max_wait_ms=1.0) as handle:
        with VerificationClient(port=handle.port) as client:
            record = client.register_key(key, owner="acme", metadata={"suite": "fleet"})
            hit = client.upload_suspect(watermarked, suspect_id="fleet-hit")
            miss = client.upload_suspect(quantized_awq4, suspect_id="fleet-miss")
        yield handle, record, hit, miss


class TestFleetRoundTrip:
    def test_register_reports_the_ring_placement(self, fleet, watermarked_and_key):
        handle, record, hit, miss = fleet
        _, key = watermarked_and_key
        expected = handle.labels[handle.shard_for(key.model_fingerprint())]
        assert record["shard"] == expected
        # hit and miss are deployments of the same model family, so they
        # land behind the same shard as the key.
        assert hit["shard"] == expected
        assert miss["shard"] == expected

    def test_router_verify_is_bit_identical_to_the_owning_shard(
        self, fleet, watermarked_and_key
    ):
        handle, _, _, _ = fleet
        _, key = watermarked_and_key
        shard_index = handle.shard_for(key.model_fingerprint())
        with VerificationClient(port=handle.port) as routed, VerificationClient(
            port=handle.shard_ports[shard_index]
        ) as direct:
            via_router = routed.verify("fleet-hit", key_ids=[key.fingerprint()])
            via_shard = direct.verify("fleet-hit", key_ids=[key.fingerprint()])

        def decisions(payload):
            # Everything but the wall-clock timing must match bit for bit.
            return [
                {k: v for k, v in row.items() if k != "seconds"}
                for row in payload["decisions"]
            ]

        assert decisions(via_router) == decisions(via_shard)
        hit = via_router["decisions"][0]
        assert hit["owned"] is True
        miss = None
        with VerificationClient(port=handle.port) as routed:
            miss = routed.verify("fleet-miss", key_ids=[key.fingerprint()])
        assert miss["decisions"][0]["owned"] is False

    def test_unknown_suspect_is_a_routing_404(self, fleet):
        handle, _, _, _ = fleet
        with VerificationClient(port=handle.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.verify("never-uploaded")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_suspect"

    def test_fleet_stats_aggregates_shards(self, fleet):
        handle, _, _, _ = fleet
        with VerificationClient(port=handle.port) as client:
            stats = client._request("GET", "/v1/fleet/stats")
        assert stats["fleet"]["shards"] == 2
        assert stats["fleet"]["reachable_shards"] == 2
        assert stats["fleet"]["registry_keys"] == 1
        assert stats["fleet"]["suspects"] == 2
        assert stats["fleet"]["suspects_routed"] == 2
        assert stats["fleet"]["router"]["forwarded"] > 0
        assert len(stats["shards"]) == 2
        assert all(entry["ok"] for entry in stats["shards"])

    def test_fleet_healthz(self, fleet):
        handle, _, _, _ = fleet
        with VerificationClient(port=handle.port) as client:
            health = client._request("GET", "/v1/fleet/healthz")
        assert health["status"] == "ok"
        assert len(health["shards"]) == 2

    def test_fleet_audit_merges_and_matches_offline(self, fleet):
        handle, _, _, _ = fleet
        with VerificationClient(port=handle.port) as client:
            fanned = client._request("GET", "/v1/fleet/audit")["audit"]
        assert fanned["ok"] is True
        assert fanned["models"] == 1
        assert len(fanned["shards"]) == 2
        offline = OccupancyAuditReport.merge(
            [
                occupancy_audit(server.registry, server.engine)
                for server in handle.shards
            ]
        )
        assert fanned["digest"] == offline.digest()
        assert handle.audit().digest() == offline.digest()

    def test_fleet_client_routes_without_the_router(
        self, fleet, watermarked_and_key, quantized_awq4
    ):
        handle, _, _, _ = fleet
        watermarked, key = watermarked_and_key
        with FleetClient(handle.addresses) as client:
            assert client.shard_for(key.model_fingerprint()) == handle.shard_for(
                key.model_fingerprint()
            )
            uploaded = client.upload_suspect(watermarked, suspect_id="direct-hit")
            assert (
                uploaded["shard"]
                == handle.labels[handle.shard_for(key.model_fingerprint())]
            )
            response = client.verify("direct-hit", key_ids=[key.fingerprint()])
            assert response["decisions"][0]["owned"] is True
            with pytest.raises(KeyError, match="unknown suspect"):
                client.verify("never-uploaded")
            stats = client.stats()
            assert stats["fleet"]["registry_keys"] == 1
            audit = client.audit()
            assert audit["ok"] is True
            assert audit["digest"] == handle.audit().digest()

    def test_loadgen_fleet_mode_reports_per_shard(self, fleet, watermarked_and_key):
        handle, _, _, _ = fleet
        _, key = watermarked_and_key
        shard_index = handle.shard_for(key.model_fingerprint())
        config = LoadConfig(
            concurrency=2,
            total_requests=6,
            templates=[
                RequestTemplate(
                    "fleet-hit",
                    key_ids=(key.fingerprint(),),
                    label="hit",
                    shard=shard_index,
                )
            ],
            fleet=handle.addresses,
        )
        report = run_load(config)
        assert report.completed == 6
        assert report.errors == 0
        # Every fleet address gets a breakdown row; only the targeted shard
        # carries traffic.
        assert set(report.shard_latency_ms) == {"shard-0", "shard-1"}
        shard_name = f"shard-{shard_index}"
        other = f"shard-{1 - shard_index}"
        assert report.shard_latency_ms[shard_name]["p50"] > 0
        assert sum(report.shard_timeseries[shard_name]) == 6
        assert sum(report.shard_timeseries[other]) == 0


class TestLoadConfigFleetValidation:
    def test_fleet_mode_requires_shard_indices(self):
        with pytest.raises(ValueError, match="needs a shard index"):
            LoadConfig(
                total_requests=1,
                templates=[RequestTemplate("s")],
                fleet=["127.0.0.1:1"],
            )

    def test_shard_index_must_be_in_range(self):
        with pytest.raises(ValueError, match="needs a shard index"):
            LoadConfig(
                total_requests=1,
                templates=[RequestTemplate("s", shard=2)],
                fleet=["127.0.0.1:1", "127.0.0.1:2"],
            )

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            LoadConfig(
                total_requests=1,
                templates=[RequestTemplate("s", shard=0)],
                fleet=[],
            )


class TestFleetBuild:
    def test_launch_audit_rejects_colliding_partition(
        self, tmp_path, watermarked_and_key
    ):
        _, key = watermarked_and_key
        root = tmp_path / "registry"
        seeded = KeyRegistry(root / "shard-0")
        seeded.register(key, owner="acme")
        seeded.register(replace(key, signature=-key.signature), owner="mallory")
        with pytest.raises(FleetAuditError) as excinfo:
            launch_fleet(num_shards=1, registry_root=root)
        assert len(excinfo.value.report.collisions) == 1

    def test_partition_registry_follows_the_ring(self, tmp_path, watermarked_and_key):
        _, base = watermarked_and_key
        keys = synthetic_keys(base, 5)
        source = tmp_path / "source"
        registry = KeyRegistry(source)
        for key in keys:
            registry.register(key, owner="acme")
        placement = partition_registry(source, tmp_path / "sharded", 2)
        ring = HashRing(shard_labels(2))
        assert sorted(placement) == ["shard-0", "shard-1"]
        for key in keys:
            expected = ring.node_for(key.model_fingerprint())
            assert key.fingerprint() in placement[expected]
        # Every partition reopens as a servable registry; the union of the
        # shards is exactly the source population and the source survives.
        total = 0
        for label, key_ids in placement.items():
            part = KeyRegistry(tmp_path / "sharded" / label)
            assert part.stats()["keys"] == len(key_ids)
            total += len(key_ids)
        assert total == len(keys)
        assert KeyRegistry(source).stats()["keys"] == len(keys)
