"""AuditLog: JSONL durability, ring buffer, and failure isolation."""

import json
import time

from repro.service.audit import AuditLog


class TestInMemory:
    def test_ring_buffer_and_count(self):
        log = AuditLog(recent_entries=3)
        for index in range(5):
            log.record(index=index)
        assert log.count == 5
        assert [entry["index"] for entry in log.recent()] == [2, 3, 4]
        assert log.dropped_writes == 0

    def test_entries_carry_timestamp(self):
        entry = AuditLog().record(owned=True)
        assert entry["ts"] > 0
        assert entry["owned"] is True


class TestPersistent:
    def test_writes_jsonl_and_drains_on_close(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            for index in range(20):
                log.record(index=index, owned=index % 2 == 0)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["index"] for line in lines] == list(range(20))
        assert all("ts" in line for line in lines)

    def test_append_across_instances(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditLog(path) as log:
            log.record(run=1)
        with AuditLog(path) as log:
            log.record(run=2)
        runs = [json.loads(line)["run"] for line in path.read_text().splitlines()]
        assert runs == [1, 2]

    def test_dead_writer_never_blocks_recording(self, tmp_path):
        """A failed disk sink degrades to memory-only instead of freezing."""
        # A directory at the file path makes the writer's open() fail.
        path = tmp_path / "audit.jsonl"
        path.mkdir()
        log = AuditLog(path, max_pending_writes=4)
        deadline = time.time() + 5.0
        for index in range(100):  # far beyond the queue bound
            log.record(index=index)
            assert time.time() < deadline, "record() blocked on a dead writer"
        assert log.count == 100
        assert len(log.recent(100)) > 0  # memory path still works
        log.close()
