"""Closed-loop load generator: config validation and a short live run."""

import pytest

from repro.service.loadgen import LoadConfig, RequestTemplate, run_load


class TestConfigValidation:
    def test_requires_exactly_one_stop_condition(self):
        template = [RequestTemplate("s")]
        with pytest.raises(ValueError):
            LoadConfig(templates=template)  # neither
        with pytest.raises(ValueError):
            LoadConfig(templates=template, duration_seconds=1.0, total_requests=5)
        LoadConfig(templates=template, total_requests=5)  # ok

    def test_requires_templates(self):
        with pytest.raises(ValueError):
            LoadConfig(total_requests=5)

    def test_requires_positive_concurrency(self):
        with pytest.raises(ValueError):
            LoadConfig(templates=[RequestTemplate("s")], total_requests=1, concurrency=0)


class TestLiveRun:
    def test_request_budget_run_against_server(self, server_handle):
        report = run_load(
            LoadConfig(
                port=server_handle.port,
                concurrency=3,
                total_requests=12,
                templates=[
                    RequestTemplate("hit", label="hit"),
                    RequestTemplate("miss", label="miss"),
                ],
            )
        )
        assert report.completed == 12
        assert report.errors == 0
        assert report.throughput_rps > 0
        assert report.latency_ms["p50"] > 0
        assert report.latency_ms["p99"] >= report.latency_ms["p50"]
        assert set(report.per_label_completed) == {"hit", "miss"}
        # Closed-loop mix striding covers both labels roughly evenly.
        assert min(report.per_label_completed.values()) >= 4
        # Decisions carried back for the benchmark's equivalence check.
        assert len(report.decisions) == 12
        hit_decisions = [d for d in report.decisions if d["label"] == "hit"]
        assert all(d["decisions"][0]["owned"] for d in hit_decisions)
        report_dict = report.to_dict()
        assert "decisions" not in report_dict
        assert report_dict["completed"] == 12
        # Failure accounting: a clean run has zero in every failure class,
        # and the aggregate ``failed`` field mirrors their sum.
        assert report.timeouts == 0
        assert report.failed == 0
        assert report_dict["failed"] == 0
        assert report_dict["timeouts"] == 0
        # Per-second throughput time-series: one integer bucket per elapsed
        # second, summing to the completed count.
        series = report.throughput_timeseries
        assert series and all(isinstance(count, int) for count in series)
        assert sum(series) == report.completed
        assert report_dict["throughput_timeseries"] == series

    def test_failed_counts_every_failure_class(self):
        from repro.service.loadgen import LoadReport

        report = LoadReport(
            concurrency=1,
            elapsed_seconds=1.0,
            completed=1,
            errors=2,
            rate_limited=3,
            unavailable=4,
            timeouts=5,
            throughput_rps=1.0,
            latency_ms={},
            per_label_completed={},
        )
        assert report.failed == 14
        assert report.to_dict()["failed"] == 14
