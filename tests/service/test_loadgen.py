"""Closed-loop load generator: config validation and a short live run."""

import pytest

from repro.service.loadgen import (
    JobLoadConfig,
    LoadConfig,
    RequestTemplate,
    run_job_load,
    run_load,
)


class TestConfigValidation:
    def test_requires_exactly_one_stop_condition(self):
        template = [RequestTemplate("s")]
        with pytest.raises(ValueError):
            LoadConfig(templates=template)  # neither
        with pytest.raises(ValueError):
            LoadConfig(templates=template, duration_seconds=1.0, total_requests=5)
        LoadConfig(templates=template, total_requests=5)  # ok

    def test_requires_templates(self):
        with pytest.raises(ValueError):
            LoadConfig(total_requests=5)

    def test_requires_positive_concurrency(self):
        with pytest.raises(ValueError):
            LoadConfig(templates=[RequestTemplate("s")], total_requests=1, concurrency=0)


class TestLiveRun:
    def test_request_budget_run_against_server(self, server_handle):
        report = run_load(
            LoadConfig(
                port=server_handle.port,
                concurrency=3,
                total_requests=12,
                templates=[
                    RequestTemplate("hit", label="hit"),
                    RequestTemplate("miss", label="miss"),
                ],
            )
        )
        assert report.completed == 12
        assert report.errors == 0
        assert report.throughput_rps > 0
        assert report.latency_ms["p50"] > 0
        assert report.latency_ms["p99"] >= report.latency_ms["p50"]
        assert set(report.per_label_completed) == {"hit", "miss"}
        # Closed-loop mix striding covers both labels roughly evenly.
        assert min(report.per_label_completed.values()) >= 4
        # Decisions carried back for the benchmark's equivalence check.
        assert len(report.decisions) == 12
        hit_decisions = [d for d in report.decisions if d["label"] == "hit"]
        assert all(d["decisions"][0]["owned"] for d in hit_decisions)
        report_dict = report.to_dict()
        assert "decisions" not in report_dict
        assert report_dict["completed"] == 12
        # Failure accounting: a clean run has zero in every failure class,
        # and the aggregate ``failed`` field mirrors their sum.
        assert report.timeouts == 0
        assert report.failed == 0
        assert report_dict["failed"] == 0
        assert report_dict["timeouts"] == 0
        # Per-second throughput time-series: one integer bucket per elapsed
        # second, summing to the completed count.
        series = report.throughput_timeseries
        assert series and all(isinstance(count, int) for count in series)
        assert sum(series) == report.completed
        assert report_dict["throughput_timeseries"] == series

    def test_failed_counts_every_failure_class(self):
        from repro.service.loadgen import LoadReport

        report = LoadReport(
            concurrency=1,
            elapsed_seconds=1.0,
            completed=1,
            errors=2,
            rate_limited=3,
            unavailable=4,
            timeouts=5,
            throughput_rps=1.0,
            latency_ms={},
            per_label_completed={},
        )
        assert report.failed == 14
        assert report.to_dict()["failed"] == 14


class TestJobLoadConfig:
    def test_requires_suspect(self):
        with pytest.raises(ValueError, match="suspect_id"):
            JobLoadConfig(jobs=2)

    def test_requires_positive_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            JobLoadConfig(jobs=0, suspect_id="hit")

    def test_seed_count_must_match(self):
        with pytest.raises(ValueError, match="seeds"):
            JobLoadConfig(jobs=3, suspect_id="hit", seeds=[1, 2])
        config = JobLoadConfig(jobs=3, suspect_id="hit")
        assert config.seeds == [0, 1, 2]


class TestConcurrentJobs:
    ATTACKS = [
        {"name": "overwrite", "strengths": [0, 20]},
        {"name": "pruning", "strengths": [0.5]},
    ]

    def test_concurrent_jobs_complete_with_exact_digests(
        self, server_handle, watermarked_and_key
    ):
        """No starvation under concurrency, and every job's digest is
        bit-identical to a direct library-path Gauntlet run of its grid."""
        from repro.engine import WatermarkEngine
        from repro.robustness import GauntletSubject, build_attack, run_gauntlet

        seeds = [3, 4, 5]
        report = run_job_load(
            JobLoadConfig(
                port=server_handle.port,
                jobs=len(seeds),
                suspect_id="hit",
                attacks=self.ATTACKS,
                seeds=seeds,
            )
        )
        assert report.states == ["succeeded"] * len(seeds)
        assert report.succeeded == len(seeds)
        assert report.rejected == 0
        assert report.errors == 0
        assert len(set(report.job_ids)) == len(seeds)
        # Each stream carried every cell verdict plus the end record.
        assert all(count == 4 for count in report.events_streamed)

        watermarked, key = watermarked_and_key
        for seed, digest in zip(seeds, report.digests):
            direct = run_gauntlet(
                {key.fingerprint(): GauntletSubject(model=watermarked, key=key)},
                [build_attack("overwrite"), build_attack("pruning")],
                strengths={"overwrite": (0, 20), "pruning": (0.5,)},
                engine=WatermarkEngine(),
                evaluate_quality=False,
                seed=seed,
            )
            assert digest == direct.decision_digest()

        report_dict = report.to_dict()
        assert report_dict["succeeded"] == len(seeds)
        assert report_dict["digests"] == report.digests

    def test_overflow_beyond_max_active_is_counted_not_fatal(
        self, watermarked_and_key
    ):
        from repro.engine import EngineConfig, WatermarkEngine
        from repro.service import (
            ServiceConfig,
            VerificationClient,
            VerificationServer,
            run_in_background,
        )

        watermarked, key = watermarked_and_key
        server = VerificationServer(
            engine=WatermarkEngine(EngineConfig()),
            config=ServiceConfig(port=0, max_wait_ms=1.0, job_max_active=1),
        )
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as c:
                c.register_key(key, owner="acme")
                c.upload_suspect(watermarked, suspect_id="hit")
            report = run_job_load(
                JobLoadConfig(
                    port=handle.port,
                    jobs=4,
                    suspect_id="hit",
                    attacks=[{"name": "slowmo", "strengths": [0, 1]}],
                    seeds=[11, 12, 13, 14],
                )
            )
            # With one active slot, some submissions bounce with 429
            # job_limit; the ones that land still finish cleanly.
            assert report.succeeded + report.rejected == 4
            assert report.succeeded >= 1
            assert report.errors == 0
