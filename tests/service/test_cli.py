"""CLI smoke tests: ``--help`` for every sub-command plus an offline verify."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.service.codec import save_model
from repro.service.registry import KeyRegistry

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )


class TestHelp:
    @pytest.mark.parametrize("args", [("--help",), ("insert", "--help"),
                                      ("serve", "--help"),
                                      ("verify", "--help"), ("loadgen", "--help"),
                                      ("gauntlet", "--help"), ("audit", "--help")])
    def test_help_exits_zero(self, args):
        result = _run_cli(*args)
        assert result.returncode == 0, result.stderr
        assert "usage:" in result.stdout

    def test_module_entry_point(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert result.returncode == 0
        assert "serve" in result.stdout and "loadgen" in result.stdout

    def test_missing_command_is_an_error(self):
        result = _run_cli()
        assert result.returncode != 0

    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        assert parser.parse_args(["serve"]).command == "serve"
        assert parser.parse_args(
            ["verify", "--registry", "r", "--suspect", "s"]
        ).command == "verify"
        assert parser.parse_args(["loadgen", "--duration", "1"]).command == "loadgen"
        assert parser.parse_args(["gauntlet", "--attack", "overwrite"]).command == "gauntlet"
        args = parser.parse_args(["insert", "--owners", "3"])
        assert args.command == "insert" and args.owners == 3
        assert parser.parse_args(["audit", "--registry", "r"]).command == "audit"

    def test_gauntlet_executor_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["gauntlet", "--executor", "process", "--start-method", "spawn"]
        )
        assert args.executor == "process" and args.start_method == "spawn"
        assert parser.parse_args(["gauntlet"]).executor is None
        with pytest.raises(SystemExit):
            parser.parse_args(["gauntlet", "--executor", "quantum"])
        with pytest.raises(SystemExit):
            parser.parse_args(["gauntlet", "--start-method", "psychic"])


class TestInsertCommand:
    def test_multi_owner_insert_registers_and_saves_keys(self, tmp_path, capsys):
        registry_dir = tmp_path / "registry"
        keys_dir = tmp_path / "keys"
        code = main([
            "insert", "--model", "opt-2.7b-sim", "--bits", "8",
            "--profile", "smoke", "--owners", "2",
            "--registry", str(registry_dir), "--output", str(keys_dir),
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["owners"] == 2
        assert len(payload["decisions"]) == 2
        for decision in payload["decisions"]:
            assert decision["owned"] is True
            assert decision["wer_percent"] == 100.0
            assert decision["co_residents"]
        # Keys landed in the registry, indexed under one model fingerprint.
        registry = KeyRegistry(registry_dir)
        assert len(registry) == 2
        assert registry.stats()["multi_owner_models"] == 1
        # And on disk, one directory per owner.
        assert sorted(p.name for p in keys_dir.iterdir()) == ["owner-0", "owner-1"]

    def test_invalid_owner_count_errors(self, capsys):
        assert main(["insert", "--owners", "0"]) == 2
        assert "--owners" in capsys.readouterr().err


class TestGauntletUsageErrors:
    """Grid mistakes must fail fast (exit 2) before the model is prepared."""

    def test_unknown_attack(self, capsys):
        assert main(["gauntlet", "--attack", "weight-exorcism"]) == 2
        assert "unknown attacks" in capsys.readouterr().err

    def test_duplicate_attack_flags(self, capsys):
        assert main(["gauntlet", "--attack", "overwrite", "--attack", "overwrite"]) == 2
        assert "duplicate" in capsys.readouterr().err

    def test_orphaned_strengths(self, capsys):
        assert main(["gauntlet", "--attack", "overwrite",
                     "--strengths", "pruning=0.3"]) == 2
        assert "not in the grid" in capsys.readouterr().err

    def test_malformed_strengths(self, capsys):
        assert main(["gauntlet", "--strengths", "overwrite"]) == 2
        assert "NAME=V1,V2" in capsys.readouterr().err


class TestOfflineVerify:
    def test_verify_against_registry(
        self, watermarked_and_key, quantized_awq4, tmp_path, capsys
    ):
        """`repro verify` finds ownership of the watermarked deployment."""
        watermarked, key = watermarked_and_key
        registry = KeyRegistry(tmp_path / "reg")
        registry.register(key, owner="acme")
        save_model(watermarked, tmp_path / "suspect-hit")
        save_model(quantized_awq4, tmp_path / "suspect-miss")

        code = main(["verify", "--registry", str(tmp_path / "reg"),
                     "--suspect", str(tmp_path / "suspect-hit"), "--json"])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["decisions"][0]["owned"] is True

        code = main(["verify", "--registry", str(tmp_path / "reg"),
                     "--suspect", str(tmp_path / "suspect-miss"), "--json"])
        out = json.loads(capsys.readouterr().out)
        assert code == 1  # exit 1: no ownership established
        assert out["decisions"][0]["owned"] is False

    def test_offline_audit_flags_a_collision(
        self, watermarked_and_key, tmp_path, capsys
    ):
        """`repro audit` re-verifies slot disjointness straight off the disk."""
        from dataclasses import replace

        _, key = watermarked_and_key
        registry = KeyRegistry(tmp_path / "reg")
        registry.register(key, owner="acme")
        assert main(["audit", "--registry", str(tmp_path / "reg"), "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["ok"] is True and out["models"] == 1

        registry.register(replace(key, signature=-key.signature), owner="mallory")
        assert main(["audit", "--registry", str(tmp_path / "reg"), "--json"]) == 1
        out = json.loads(capsys.readouterr().out)
        assert out["ok"] is False and out["collisions"] == 1

    def test_verify_empty_registry_errors(self, quantized_awq4, tmp_path, capsys):
        save_model(quantized_awq4, tmp_path / "suspect")
        code = main(["verify", "--registry", str(tmp_path / "empty"),
                     "--suspect", str(tmp_path / "suspect")])
        capsys.readouterr()
        assert code == 2
