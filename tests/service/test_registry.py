"""KeyRegistry: content addressing, persistence, revocation, indexing."""

import pytest

from repro.core.keys import model_fingerprint
from repro.service.registry import KeyRegistry, RegistryError


@pytest.fixture()
def second_key(quantized_awq4, activation_stats, emmark_config):
    """A key for the same model with a different owner seed ``d``."""
    from repro.engine import WatermarkEngine

    config = emmark_config.with_overrides(seed=emmark_config.seed + 7)
    _, key, _ = WatermarkEngine().insert(quantized_awq4, activation_stats, config=config)
    return key


class TestInMemory:
    def test_register_and_lookup(self, watermarked_and_key):
        _, key = watermarked_and_key
        registry = KeyRegistry()
        record = registry.register(key, owner="acme", metadata={"ticket": "IP-1"})
        assert record.key_id == key.fingerprint()
        assert record.owner == "acme"
        assert record.model_fingerprint == key.model_fingerprint()
        assert registry.get_key(record.key_id) is key
        assert record.key_id in registry
        assert len(registry) == 1

    def test_register_is_idempotent_and_first_owner_wins(self, watermarked_and_key):
        _, key = watermarked_and_key
        registry = KeyRegistry()
        first = registry.register(key, owner="acme")
        second = registry.register(key, owner="mallory")
        assert second is first
        assert registry.get_record(first.key_id).owner == "acme"
        assert len(registry) == 1

    def test_distinct_keys_coexist(self, watermarked_and_key, second_key):
        _, key = watermarked_and_key
        registry = KeyRegistry()
        registry.register(key, owner="acme")
        registry.register(second_key, owner="bob")
        assert len(registry) == 2
        assert len(registry.active_keys()) == 2

    def test_unknown_key_raises(self):
        registry = KeyRegistry()
        with pytest.raises(RegistryError, match="unknown key id"):
            registry.get_key("wmk-missing")

    def test_revocation_hides_key_from_serving(self, watermarked_and_key):
        _, key = watermarked_and_key
        registry = KeyRegistry()
        record = registry.register(key, owner="acme")
        registry.revoke(record.key_id)
        assert registry.get_record(record.key_id).revoked
        assert registry.active_keys() == {}
        with pytest.raises(RegistryError, match="revoked"):
            registry.active_keys([record.key_id])
        # The record (audit trail) is still there.
        assert len(registry) == 1

    def test_selection_by_explicit_ids(self, watermarked_and_key, second_key):
        _, key = watermarked_and_key
        registry = KeyRegistry()
        record = registry.register(key)
        registry.register(second_key)
        selected = registry.active_keys([record.key_id])
        assert list(selected) == [record.key_id]

    def test_model_fingerprint_index(self, watermarked_and_key, second_key, quantized_awq4):
        _, key = watermarked_and_key
        registry = KeyRegistry()
        registry.register(key)
        registry.register(second_key)
        fingerprint = model_fingerprint(quantized_awq4)
        assert set(registry.keys_for_model(fingerprint)) == {
            key.fingerprint(),
            second_key.fingerprint(),
        }
        assert registry.keys_for_model("wmm-nonexistent") == {}

    def test_stats(self, watermarked_and_key):
        _, key = watermarked_and_key
        registry = KeyRegistry()
        record = registry.register(key)
        registry.revoke(record.key_id)
        stats = registry.stats()
        expected = {
            "keys": 1,
            "active": 0,
            "revoked": 1,
            "models": 1,
            "multi_owner_models": 0,
            "owners": 0,
            "persistent": False,
            "quarantined": 0,
            "key_loads": 0,
            "evictions": 0,
            "max_resident_keys": None,
            "resident": 1,
        }
        assert stats == expected


class TestFingerprintIndexCollisions:
    """Several keys sharing one model-identity fingerprint (co-residency)."""

    def test_same_model_fingerprint_indexes_both_keys(
        self, watermarked_and_key, second_key, quantized_awq4
    ):
        _, key = watermarked_and_key
        assert key.model_fingerprint() == second_key.model_fingerprint()
        registry = KeyRegistry()
        registry.register(key, owner="acme")
        registry.register(second_key, owner="globex")
        fingerprint = model_fingerprint(quantized_awq4)
        assert set(registry.keys_for_model(fingerprint)) == {
            key.fingerprint(), second_key.fingerprint()
        }
        assert registry.owners_for_model(fingerprint) == {
            key.fingerprint(): "acme",
            second_key.fingerprint(): "globex",
        }
        assert registry.stats()["multi_owner_models"] == 1
        assert registry.stats()["owners"] == 2

    def test_revoking_one_leaves_the_other_verifiable(
        self, watermarked_and_key, second_key, quantized_awq4
    ):
        from repro.engine import WatermarkEngine

        watermarked, key = watermarked_and_key
        registry = KeyRegistry()
        registry.register(key, owner="acme")
        other = registry.register(second_key, owner="globex")
        registry.revoke(other.key_id)
        fingerprint = model_fingerprint(quantized_awq4)
        survivors = registry.keys_for_model(fingerprint)
        assert list(survivors) == [key.fingerprint()]
        assert registry.stats()["multi_owner_models"] == 0
        # The surviving key still proves ownership end to end.
        result = WatermarkEngine().extract(
            watermarked, survivors[key.fingerprint()], strict_layout=False
        )
        assert result.wer_percent == 100.0
        assert registry.owner_of(key.fingerprint()) == "acme"

    def test_co_resident_keys_collide_on_index_not_identity(
        self, quantized_awq4, activation_stats
    ):
        """Multi-owner keys of one model: same index entry, distinct ids."""
        from repro.engine import WatermarkEngine

        result = WatermarkEngine().insert_multi(quantized_awq4, activation_stats, 2)
        keys = result.keys()
        registry = KeyRegistry()
        for owner_id, key in keys.items():
            registry.register(key, owner=owner_id)
        ids = [key.fingerprint() for key in keys.values()]
        assert len(set(ids)) == 2
        fingerprint = model_fingerprint(quantized_awq4)
        assert set(registry.keys_for_model(fingerprint)) == set(ids)
        records = registry.records_for_model(fingerprint)
        assert [record.co_residents for record in records] == [["owner-1"], ["owner-0"]]

    def test_revoking_one_co_resident_keeps_the_other_extractable(
        self, quantized_awq4, activation_stats
    ):
        from repro.engine import WatermarkEngine

        engine = WatermarkEngine()
        result = engine.insert_multi(quantized_awq4, activation_stats, 2)
        registry = KeyRegistry()
        records = {
            owner_id: registry.register(key, owner=owner_id)
            for owner_id, key in result.keys().items()
        }
        registry.revoke(records["owner-0"].key_id)
        fingerprint = model_fingerprint(quantized_awq4)
        survivors = registry.keys_for_model(fingerprint)
        assert list(survivors) == [records["owner-1"].key_id]
        # Revocation of owner-0 must not disturb owner-1's evidence: the
        # occupancy owner-1 was planned under travels in its own key.
        extraction = engine.extract(
            result.model, survivors[records["owner-1"].key_id], strict_layout=False
        )
        assert extraction.wer_percent == 100.0


class TestPersistence:
    def test_round_trip_through_directory(self, watermarked_and_key, tmp_path):
        _, key = watermarked_and_key
        registry = KeyRegistry(tmp_path / "reg")
        record = registry.register(key, owner="acme", metadata={"ticket": "IP-1"})

        reloaded = KeyRegistry(tmp_path / "reg")
        assert len(reloaded) == 1
        loaded_record = reloaded.get_record(record.key_id)
        assert loaded_record.owner == "acme"
        assert loaded_record.metadata == {"ticket": "IP-1"}
        assert loaded_record.model_fingerprint == key.model_fingerprint()
        loaded_key = reloaded.get_key(record.key_id)
        assert loaded_key.fingerprint() == key.fingerprint()

    def test_revocation_persists(self, watermarked_and_key, tmp_path):
        _, key = watermarked_and_key
        registry = KeyRegistry(tmp_path / "reg")
        record = registry.register(key)
        registry.revoke(record.key_id)
        reloaded = KeyRegistry(tmp_path / "reg")
        assert reloaded.get_record(record.key_id).revoked
        assert reloaded.active_keys() == {}

    def test_corrupt_archive_quarantined_on_first_load(
        self, watermarked_and_key, tmp_path
    ):
        """Startup is record-only; a damaged NPZ surfaces (and quarantines)
        at first key-material access instead of bricking the registry."""
        _, key = watermarked_and_key
        registry = KeyRegistry(tmp_path / "reg")
        record = registry.register(key)
        archive = tmp_path / "reg" / record.key_id / "watermark_key.npz"
        archive.write_bytes(b"corrupted")

        reloaded = KeyRegistry(tmp_path / "reg")
        assert len(reloaded) == 1  # record indexed fine
        with pytest.raises(RegistryError, match="corrupt registry entry"):
            reloaded.get_key(record.key_id)
        # The entry is quarantined and dropped from the index.
        assert record.key_id not in reloaded
        assert reloaded.stats()["quarantined"] == 1
        assert (tmp_path / "reg" / f"{record.key_id}.corrupt").exists()

    def test_corrupt_record_quarantined_at_startup(
        self, watermarked_and_key, second_key, tmp_path
    ):
        """A bad record.json quarantines that entry; the rest still load."""
        _, key = watermarked_and_key
        registry = KeyRegistry(tmp_path / "reg")
        bad = registry.register(key, owner="acme")
        good = registry.register(second_key, owner="globex")
        (tmp_path / "reg" / bad.key_id / "record.json").write_text("{not json")

        reloaded = KeyRegistry(tmp_path / "reg")
        assert len(reloaded) == 1
        assert good.key_id in reloaded
        assert reloaded.stats()["quarantined"] == 1
        assert (tmp_path / "reg" / f"{bad.key_id}.corrupt").exists()
        # The survivor's material still loads.
        assert reloaded.get_key(good.key_id).fingerprint() == second_key.fingerprint()

    def test_record_only_startup_defers_bulk_reads(
        self, watermarked_and_key, tmp_path
    ):
        _, key = watermarked_and_key
        KeyRegistry(tmp_path / "reg").register(key, owner="acme")

        reloaded = KeyRegistry(tmp_path / "reg")
        stats = reloaded.stats()
        assert stats["key_loads"] == 0
        assert stats["resident"] == 0
        reloaded.get_key(key.fingerprint())
        stats = reloaded.stats()
        assert stats["key_loads"] == 1
        assert stats["resident"] == 1
        # A second access is served from residency, not disk.
        reloaded.get_key(key.fingerprint())
        assert reloaded.stats()["key_loads"] == 1

    def test_lru_bound_evicts_and_reloads(
        self, watermarked_and_key, second_key, tmp_path
    ):
        _, key = watermarked_and_key
        seed = KeyRegistry(tmp_path / "reg")
        first = seed.register(key, owner="acme")
        second = seed.register(second_key, owner="globex")

        registry = KeyRegistry(tmp_path / "reg", max_resident_keys=1)
        registry.get_key(first.key_id)
        assert registry.stats()["resident"] == 1
        registry.get_key(second.key_id)  # evicts the first
        stats = registry.stats()
        assert stats["resident"] == 1
        assert stats["evictions"] == 1
        # Evicted material transparently reloads from disk.
        reloaded_key = registry.get_key(first.key_id)
        assert reloaded_key.fingerprint() == key.fingerprint()
        assert registry.stats()["key_loads"] == 3
