"""Tests for the server-side robustness gauntlet (``POST /robustness``)."""

import pytest

from repro.engine import WatermarkEngine
from repro.robustness import GauntletSubject, build_attack, run_gauntlet
from repro.service.client import ServiceError

ATTACKS = [
    {"name": "overwrite", "strengths": [0, 20]},
    {"name": "pruning", "strengths": [0.5]},
]


class TestRobustnessEndpoint:
    def test_gauntlet_on_stored_suspect(self, client):
        out = client.robustness("hit", attacks=ATTACKS, seed=3)
        assert out["suspect_id"] == "hit"
        assert out["key_id"].startswith("wmk-")
        report = out["report"]
        assert report["num_cells"] == 3
        cells = {(c["attack"], c["strength"]): c for c in report["cells"]}
        assert cells[("overwrite", 0.0)]["wer_percent"] == 100.0
        assert cells[("overwrite", 0.0)]["owned"] is True
        # Server-side runs are quality-free: no harness lives there.
        assert all(c["perplexity"] is None for c in report["cells"])
        assert set(report["min_wer_by_attack"]) == {"overwrite", "pruning"}

    def test_matches_direct_gauntlet(self, client, watermarked_and_key):
        """The endpoint's evidence is bit-identical to the library path."""
        watermarked, key = watermarked_and_key
        out = client.robustness("hit", attacks=ATTACKS, seed=3)
        key_id = out["key_id"]
        direct = run_gauntlet(
            {key_id: GauntletSubject(model=watermarked, key=key)},
            [build_attack("overwrite"), build_attack("pruning")],
            strengths={"overwrite": (0, 20), "pruning": (0.5,)},
            engine=WatermarkEngine(),
            evaluate_quality=False,
            seed=3,
        )
        assert out["report"]["decision_digest"] == direct.decision_digest()

    def test_default_attacks_are_corpus_free(self, client):
        out = client.robustness("hit", attacks=[
            {"name": "overwrite", "strengths": [10]},
        ])
        assert out["report"]["num_cells"] == 1

    def test_corpus_attack_rejected(self, client):
        with pytest.raises(ServiceError, match="corpus"):
            client.robustness("hit", attacks=["rewatermark"])

    def test_unknown_attack_rejected(self, client):
        with pytest.raises(ServiceError, match="unknown attack"):
            client.robustness("hit", attacks=["weight-exorcism"])

    def test_oversized_grid_rejected(self, client):
        with pytest.raises(ServiceError, match="cell"):
            client.robustness(
                "hit",
                attacks=[{"name": "overwrite", "strengths": list(range(100))}],
            )

    def test_unknown_suspect_rejected(self, client):
        with pytest.raises(ServiceError, match="unknown suspect"):
            client.robustness("nobody", attacks=ATTACKS)

    def test_duplicate_attack_rejected_as_400(self, client):
        with pytest.raises(ServiceError, match="duplicate attack") as excinfo:
            client.robustness(
                "hit",
                attacks=["overwrite", {"name": "overwrite", "strengths": [10]}],
            )
        assert excinfo.value.status == 400

    def test_duplicate_strengths_rejected_as_400(self, client):
        with pytest.raises(ServiceError, match="invalid gauntlet grid") as excinfo:
            client.robustness(
                "hit", attacks=[{"name": "overwrite", "strengths": [10, 10]}]
            )
        assert excinfo.value.status == 400

    def test_unknown_key_id_rejected(self, client):
        with pytest.raises(ServiceError, match="key"):
            client.robustness("hit", key_id="wmk-does-not-exist", attacks=ATTACKS)

    def test_cells_enter_audit_log_and_counters(self, client):
        before = client.stats()
        out = client.robustness("hit", attacks=[{"name": "overwrite", "strengths": [0, 20]}])
        after = client.stats()
        decided = (
            after["server"]["decisions_owned"] + after["server"]["decisions_not_owned"]
            - before["server"]["decisions_owned"] - before["server"]["decisions_not_owned"]
        )
        assert decided == 2
        assert after["audit"]["entries"] == before["audit"]["entries"] + 2
        assert out["request_id"].startswith("req-")

    def test_non_watermarked_suspect_never_owned(self, client):
        out = client.robustness("miss", attacks=[{"name": "none", "strengths": [0]}])
        assert all(not c["owned"] for c in out["report"]["cells"])

    def test_gauntlet_counter_increments(self, client):
        before = client.stats()["server"]["gauntlets"]
        client.robustness("hit", attacks=[{"name": "none", "strengths": [0]}])
        assert client.stats()["server"]["gauntlets"] == before + 1
