"""Tests for the server-side robustness gauntlet (``POST /robustness``)."""

import pytest

from repro.engine import WatermarkEngine
from repro.robustness import GauntletSubject, build_attack, run_gauntlet
from repro.service.client import ServiceError

ATTACKS = [
    {"name": "overwrite", "strengths": [0, 20]},
    {"name": "pruning", "strengths": [0.5]},
]


class TestRobustnessEndpoint:
    def test_gauntlet_on_stored_suspect(self, client):
        out = client.robustness("hit", attacks=ATTACKS, seed=3)
        assert out["suspect_id"] == "hit"
        assert out["key_id"].startswith("wmk-")
        report = out["report"]
        assert report["num_cells"] == 3
        cells = {(c["attack"], c["strength"]): c for c in report["cells"]}
        assert cells[("overwrite", 0.0)]["wer_percent"] == 100.0
        assert cells[("overwrite", 0.0)]["owned"] is True
        # Server-side runs are quality-free: no harness lives there.
        assert all(c["perplexity"] is None for c in report["cells"])
        assert set(report["min_wer_by_attack"]) == {"overwrite", "pruning"}

    def test_matches_direct_gauntlet(self, client, watermarked_and_key):
        """The endpoint's evidence is bit-identical to the library path."""
        watermarked, key = watermarked_and_key
        out = client.robustness("hit", attacks=ATTACKS, seed=3)
        key_id = out["key_id"]
        direct = run_gauntlet(
            {key_id: GauntletSubject(model=watermarked, key=key)},
            [build_attack("overwrite"), build_attack("pruning")],
            strengths={"overwrite": (0, 20), "pruning": (0.5,)},
            engine=WatermarkEngine(),
            evaluate_quality=False,
            seed=3,
        )
        assert out["report"]["decision_digest"] == direct.decision_digest()

    def test_process_executor_matches_streaming_digest(self, client):
        streaming = client.robustness("hit", attacks=ATTACKS, seed=3)
        process = client.robustness("hit", attacks=ATTACKS, seed=3, executor="process")
        assert process["report"]["executor"] == "process"
        assert (
            process["report"]["decision_digest"]
            == streaming["report"]["decision_digest"]
        )

    def test_serial_executor_pins_one_worker(self, client):
        out = client.robustness("hit", attacks=ATTACKS, seed=3, executor="serial")
        assert out["report"]["executor"] == "serial"
        assert out["report"]["workers"] == 1

    def test_unknown_executor_rejected(self, client):
        with pytest.raises(ServiceError, match="unknown executor"):
            client.robustness("hit", attacks=ATTACKS, executor="quantum")

    def test_default_attacks_are_corpus_free(self, client):
        out = client.robustness("hit", attacks=[
            {"name": "overwrite", "strengths": [10]},
        ])
        assert out["report"]["num_cells"] == 1

    def test_corpus_attack_rejected(self, client):
        with pytest.raises(ServiceError, match="corpus"):
            client.robustness("hit", attacks=["rewatermark"])

    def test_unknown_attack_rejected(self, client):
        with pytest.raises(ServiceError, match="unknown attack"):
            client.robustness("hit", attacks=["weight-exorcism"])

    def test_beyond_the_old_64_cell_cap_is_accepted(self, client):
        # The fixed 64-cell cap is gone: sweeps run in constant memory, so a
        # 100-cell grid admits under the CPU-time budget and completes.  A
        # small sweep first warms the cost estimator (the cold-start clamp
        # keeps unvalidated seed estimates from admitting big grids).
        client.robustness("hit", attacks=[{"name": "none", "strengths": [0]}])
        out = client.robustness(
            "hit",
            attacks=[{"name": "overwrite", "strengths": list(range(100))}],
            seed=11,
        )
        assert out["report"]["num_cells"] == 100

    def test_report_size_sanity_bound_rejected(self, client):
        with pytest.raises(ServiceError, match="report-size"):
            client.robustness(
                "hit",
                attacks=[{"name": "overwrite", "strengths": list(range(5000))}],
            )

    def test_unknown_suspect_rejected(self, client):
        with pytest.raises(ServiceError, match="unknown suspect"):
            client.robustness("nobody", attacks=ATTACKS)

    def test_duplicate_attack_rejected_as_400(self, client):
        with pytest.raises(ServiceError, match="duplicate attack") as excinfo:
            client.robustness(
                "hit",
                attacks=["overwrite", {"name": "overwrite", "strengths": [10]}],
            )
        assert excinfo.value.status == 400

    def test_duplicate_strengths_rejected_as_400(self, client):
        with pytest.raises(ServiceError, match="invalid gauntlet grid") as excinfo:
            client.robustness(
                "hit", attacks=[{"name": "overwrite", "strengths": [10, 10]}]
            )
        assert excinfo.value.status == 400

    def test_unknown_key_id_rejected(self, client):
        with pytest.raises(ServiceError, match="key"):
            client.robustness("hit", key_id="wmk-does-not-exist", attacks=ATTACKS)

    def test_cells_enter_audit_log_and_counters(self, client):
        before = client.stats()
        out = client.robustness("hit", attacks=[{"name": "overwrite", "strengths": [0, 20]}])
        after = client.stats()
        decided = (
            after["server"]["decisions_owned"] + after["server"]["decisions_not_owned"]
            - before["server"]["decisions_owned"] - before["server"]["decisions_not_owned"]
        )
        assert decided == 2
        assert after["audit"]["entries"] == before["audit"]["entries"] + 2
        assert out["request_id"].startswith("req-")

    def test_non_watermarked_suspect_never_owned(self, client):
        out = client.robustness("miss", attacks=[{"name": "none", "strengths": [0]}])
        assert all(not c["owned"] for c in out["report"]["cells"])

    def test_gauntlet_counter_increments(self, client):
        before = client.stats()["server"]["gauntlets"]
        client.robustness("hit", attacks=[{"name": "none", "strengths": [0]}])
        assert client.stats()["server"]["gauntlets"] == before + 1

    def test_observed_cost_feeds_the_estimator(self, client):
        client.robustness("hit", attacks=[{"name": "overwrite", "strengths": [0, 20]}])
        gauntlet_stats = client.stats()["gauntlet"]
        assert gauntlet_stats["observed_cells"] >= 2
        assert gauntlet_stats["mean_cell_seconds"] > 0.0
        assert gauntlet_stats["cpu_budget_s"] is not None


class TestCpuBudgetGate:
    """The per-request CPU-time budget that replaced the 64-cell cap."""

    def test_projected_cost_over_budget_rejected_as_429(self, watermarked_and_key):
        from repro.engine import EngineConfig, WatermarkEngine
        from repro.service import (
            ServiceConfig,
            VerificationClient,
            VerificationServer,
            run_in_background,
        )

        watermarked, key = watermarked_and_key
        server = VerificationServer(
            engine=WatermarkEngine(EngineConfig()),
            # 1 s/cell seed estimate and a 5 s budget: a 6-cell grid projects
            # over budget deterministically, before any sweep has run.
            config=ServiceConfig(
                port=0,
                gauntlet_cpu_budget_s=5.0,
                gauntlet_initial_cell_cost_s=1.0,
            ),
        )
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as client:
                client.register_key(key, owner="acme")
                client.upload_suspect(watermarked, suspect_id="hit")
                with pytest.raises(ServiceError, match="CPU cost") as excinfo:
                    client.robustness(
                        "hit", attacks=[{"name": "overwrite", "strengths": list(range(6))}]
                    )
                assert excinfo.value.status == 429
                # A grid inside the budget is admitted.
                out = client.robustness(
                    "hit", attacks=[{"name": "overwrite", "strengths": [0, 20]}]
                )
                assert out["report"]["num_cells"] == 2
                assert client.stats()["server"]["rejected_cpu_budget"] == 1

    def test_cold_server_clamps_to_64_cells_until_a_sweep_is_observed(
        self, watermarked_and_key
    ):
        from repro.service import (
            ServiceConfig,
            VerificationClient,
            VerificationServer,
            run_in_background,
        )

        watermarked, key = watermarked_and_key
        server = VerificationServer(config=ServiceConfig(port=0))
        with run_in_background(server) as handle:
            with VerificationClient(port=handle.port) as client:
                client.register_key(key, owner="acme")
                client.upload_suspect(watermarked, suspect_id="hit")
                # Cold: the seed estimate is unvalidated, big grids clamp.
                with pytest.raises(ServiceError, match="cold-start") as excinfo:
                    client.robustness(
                        "hit",
                        attacks=[{"name": "overwrite", "strengths": list(range(100))}],
                    )
                assert excinfo.value.status == 429
                # One observed sweep lifts the clamp; the budget governs.
                client.robustness("hit", attacks=[{"name": "none", "strengths": [0]}])
                out = client.robustness(
                    "hit",
                    attacks=[{"name": "overwrite", "strengths": list(range(100))}],
                )
                assert out["report"]["num_cells"] == 100

    def test_budget_disabled_with_none(self, watermarked_and_key):
        from repro.service.server import ServiceConfig, VerificationServer, _CellCostEstimator

        config = ServiceConfig(gauntlet_cpu_budget_s=None, gauntlet_initial_cell_cost_s=10.0)
        server = VerificationServer(config=config)
        assert server.config.gauntlet_cpu_budget_s is None
        # Estimator sanity: EWMA moves toward observations.
        estimator = _CellCostEstimator(1.0, smoothing=0.5)
        estimator.observe(10, 1.0)  # 0.1 s/cell observed
        assert estimator.estimate(10) < 10.0
        assert estimator.stats()["observed_cells"] == 10

    def test_bad_budget_config_rejected(self):
        from repro.service import ServiceConfig

        with pytest.raises(ValueError, match="gauntlet_cpu_budget_s"):
            ServiceConfig(gauntlet_cpu_budget_s=0.0)
        with pytest.raises(ValueError, match="gauntlet_initial_cell_cost_s"):
            ServiceConfig(gauntlet_initial_cell_cost_s=-1.0)
