"""Service-test fixtures: one insertion plus a running server per module.

The heavyweight substrate (trained model, quantization) comes from the
session fixtures in ``tests/conftest.py``; here we add the watermarked /
clean suspect pair and a background :class:`VerificationServer` with the key
registered and both suspects uploaded.
"""

from __future__ import annotations

import pytest

from repro.core.config import EmMarkConfig
from repro.engine import EngineConfig, WatermarkEngine
from repro.robustness.attacks import (
    ATTACK_REGISTRY,
    AttackOutcome,
    AttackSpec,
    register_attack,
)
from repro.service import (
    ServiceConfig,
    VerificationClient,
    VerificationServer,
    run_in_background,
)

# A deliberately slow corpus-free attack so job tests can observe sweeps
# *mid-run* (streaming, cancellation, kill-then-resume, admission overflow).
# The registry is process-global and the server runs in-process, so
# registering here makes it sweepable server-side across every test module;
# the guard keeps re-imports idempotent.
if "slowmo" not in ATTACK_REGISTRY:

    @register_attack
    class SlowIdentityAttack(AttackSpec):
        name = "slowmo"
        strength_unit = "-"
        default_strengths = (0,)

        def apply(self, model, strength, rng):
            import time

            time.sleep(0.25)
            return AttackOutcome(model=model.clone())


@pytest.fixture(scope="session")
def emmark_config(quantized_awq4):
    return EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8)


@pytest.fixture(scope="session")
def watermarked_and_key(quantized_awq4, activation_stats, emmark_config):
    """(watermarked model, key) — the ``hit`` suspect and its key."""
    engine = WatermarkEngine()
    watermarked, key, _ = engine.insert(
        quantized_awq4, activation_stats, config=emmark_config
    )
    return watermarked, key


@pytest.fixture(scope="module")
def server_handle(watermarked_and_key, quantized_awq4):
    """A running server with the key registered and hit/miss suspects uploaded."""
    watermarked, key = watermarked_and_key
    server = VerificationServer(
        engine=WatermarkEngine(EngineConfig()),
        config=ServiceConfig(port=0, max_wait_ms=2.0),
    )
    with run_in_background(server) as handle:
        with VerificationClient(port=handle.port) as client:
            client.register_key(key, owner="acme", metadata={"suite": "tests"})
            client.upload_suspect(watermarked, suspect_id="hit")
            client.upload_suspect(quantized_awq4, suspect_id="miss")
        yield handle


@pytest.fixture()
def client(server_handle):
    """A fresh client per test against the module's server."""
    with VerificationClient(port=server_handle.port) as active:
        yield active
