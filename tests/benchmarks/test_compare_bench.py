"""Unit tests for the versioned benchmark schema/threshold gate.

``benchmarks/compare_bench.py`` is what CI's ``bench-regression`` job runs
over the uploaded ``BENCH_*.json`` artifacts; these tests pin its thresholds
(formerly inline YAML) and its failure modes.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

# Under --import-mode=importlib the benchmarks directory is not on sys.path;
# make the gate importable the same way benchmarks/conftest.py imports
# bench_utils.
_BENCH_DIR = str(Path(__file__).resolve().parents[2] / "benchmarks")
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)

import compare_bench  # noqa: E402


def gauntlet_report(**overrides):
    report = {
        "benchmark": "gauntlet",
        "smoke": True,
        "mode": "streaming",
        "cpu_count": 8,
        "grid": {"total_cells": 19},
        "repeats": 1,
        "serial_seconds": 2.0,
        "parallel_seconds": 1.0,
        "process_seconds": 0.8,
        "parallel_workers": 4,
        "speedup": 2.0,
        "process_speedup": 2.5,
        "process_start_method": "fork",
        "peak_rss_kb": {"parent": 500_000, "worker_max": 120_000},
        "instrumented_seconds": 2.05,
        "telemetry_throughput_ratio": 0.98,
        "telemetry_spans_recorded": 120,
        "decision_digests_equal": True,
        "streaming_batched_digests_equal": True,
        "streaming_process_digests_equal": True,
        "telemetry_digests_equal": True,
        "decision_digests": ["a", "b", "c", "d"],
        "min_wer_by_attack": {
            "overwrite": 97.5,
            "rewatermark": 94.0,
            "capacity": 100.0,
            "gptq/requantize": 12.0,
        },
        "plan_cache": {"hits": 10, "misses": 2},
    }
    report.update(overrides)
    return report


def engine_report(**overrides):
    report = {
        "benchmark": "engine_throughput",
        "smoke": True,
        "num_layers": 24,
        "seed_roundtrip_seconds": 2.0,
        "engine_roundtrip_seconds": 0.5,
        "roundtrip_speedup_vs_seed": 4.0,
        "insertions_per_sec": 10.0,
        "extractions_per_sec_cold": 5.0,
        "extractions_per_sec_warm": 50.0,
        "warm_vs_cold_extraction_speedup": 10.0,
        "plan_cache": {"hits": 1},
    }
    report.update(overrides)
    return report


def service_report(**overrides):
    report = {
        "benchmark": "service_load",
        "smoke": True,
        "fleet": {"num_keys": 3},
        "throughput_rps_cold": 40.0,
        "throughput_rps_warm": 90.0,
        "warm_over_cold_speedup": 2.25,
        "concurrency_levels": {"4": {"throughput_rps": 80.0}},
        "decisions_checked_against_direct_verify_fleet": 12,
    }
    report.update(overrides)
    return report


def fleet_report(**overrides):
    digest = "dec-" + "a" * 20
    audit = "aud-" + "b" * 20
    report = {
        "benchmark": "service_fleet",
        "smoke": True,
        "cpu_count": 8,
        "fleet": {"model_families": 4, "keys": 4},
        "shard_counts": [1, 2, 4],
        "shard_levels": {
            "1": {"throughput_rps": 40.0},
            "2": {"throughput_rps": 60.0},
            "4": {"throughput_rps": 80.0},
        },
        "speedup_4_vs_1": 2.0,
        "decision_digest_single": digest,
        "decision_digests_by_shards": {"1": digest, "2": digest, "4": digest},
        "decision_digests_equal": True,
        "audit_digests_by_shards": {"1": audit, "2": audit, "4": audit},
        "audit_digests_equal": True,
        "registry_scale": {"x1000": {"keys": 1000}},
        "registry_cold_start_key_loads_x1000": 0,
        "registry_cold_start_resident_x1000": 0,
    }
    report.update(overrides)
    return report


def jobs_report(**overrides):
    digest = "a" * 64
    report = {
        "benchmark": "service_jobs",
        "smoke": True,
        "grid": {"overwrite": [0, 60]},
        "total_cells": 5,
        "cancelled_after_cells": 2,
        "replayed_cells": 2,
        "fresh_cells": 3,
        "events_streamed": 6,
        "uninterrupted_decision_digest": digest,
        "resumed_decision_digest": digest,
        "digest_match": True,
        "job_states": ["cancelled", "succeeded"],
    }
    report.update(overrides)
    return report


class TestSchemaValidation:
    @pytest.mark.parametrize(
        "factory",
        [
            gauntlet_report,
            engine_report,
            service_report,
            fleet_report,
            jobs_report,
        ],
    )
    def test_valid_reports_pass(self, factory):
        assert compare_bench.evaluate_report(factory()) == []

    def test_unknown_kind_rejected(self):
        errors = compare_bench.validate_schema({"benchmark": "vibes"})
        assert errors and "unknown benchmark kind" in errors[0]

    def test_missing_field_reported_by_name(self):
        report = gauntlet_report()
        del report["speedup"]
        errors = compare_bench.validate_schema(report)
        assert any("'speedup'" in e and "missing" in e for e in errors)

    def test_wrong_type_reported(self):
        errors = compare_bench.validate_schema(gauntlet_report(serial_seconds="fast"))
        assert any("'serial_seconds'" in e and "number" in e for e in errors)

    def test_bool_is_not_a_number(self):
        # True would satisfy isinstance(x, int): the schema must reject it.
        errors = compare_bench.validate_schema(gauntlet_report(speedup=True))
        assert any("'speedup'" in e for e in errors)

    def test_schema_errors_shortcircuit_gates(self):
        report = gauntlet_report(decision_digests_equal=False)
        del report["min_wer_by_attack"]
        problems = compare_bench.evaluate_report(report)
        # Only the schema error is reported; gates never ran on a bad shape.
        assert all("missing" in p for p in problems)


class TestGauntletGates:
    def test_decision_equivalence_flag_gates(self):
        problems = compare_bench.evaluate_report(
            gauntlet_report(decision_digests_equal=False)
        )
        assert any("serial and parallel" in p for p in problems)

    def test_streaming_batched_flag_gates(self):
        problems = compare_bench.evaluate_report(
            gauntlet_report(streaming_batched_digests_equal=False)
        )
        assert any("streaming and batched" in p for p in problems)

    def test_overwrite_wer_threshold_is_versioned_here(self):
        assert compare_bench.GAUNTLET_MIN_WER["overwrite"] == 90.0
        bad = gauntlet_report()
        bad["min_wer_by_attack"]["overwrite"] = 85.0
        problems = compare_bench.evaluate_report(bad)
        assert any("overwrite" in p and "90" in p for p in problems)

    def test_exactly_at_floor_fails(self):
        # The historical gate was strictly greater-than; keep it that way.
        bad = gauntlet_report()
        bad["min_wer_by_attack"]["overwrite"] = 90.0
        assert compare_bench.evaluate_report(bad)

    def test_missing_attack_row_fails(self):
        bad = gauntlet_report()
        del bad["min_wer_by_attack"]["rewatermark"]
        problems = compare_bench.evaluate_report(bad)
        assert any("rewatermark" in p for p in problems)

    def test_capacity_must_be_perfect(self):
        bad = gauntlet_report()
        bad["min_wer_by_attack"]["capacity"] = 99.9
        problems = compare_bench.evaluate_report(bad)
        assert any("capacity" in p for p in problems)

    def test_speedup_gate_skipped_in_smoke_mode(self):
        assert compare_bench.evaluate_report(gauntlet_report(speedup=0.4)) == []

    def test_speedup_gate_applies_in_measured_mode(self):
        problems = compare_bench.evaluate_report(
            gauntlet_report(smoke=False, speedup=0.9)
        )
        assert any("speedup" in p for p in problems)
        assert compare_bench.evaluate_report(
            gauntlet_report(smoke=False, speedup=1.0)
        ) == []

    def test_streaming_process_flag_gates(self):
        problems = compare_bench.evaluate_report(
            gauntlet_report(streaming_process_digests_equal=False)
        )
        assert any("streaming and process" in p for p in problems)

    def test_process_speedup_bar_is_1_5x(self):
        assert compare_bench.MIN_PROCESS_SPEEDUP_MEASURED == 1.5
        problems = compare_bench.evaluate_report(
            gauntlet_report(smoke=False, process_speedup=1.4)
        )
        assert any("process gauntlet speedup" in p for p in problems)
        assert compare_bench.evaluate_report(
            gauntlet_report(smoke=False, process_speedup=1.5)
        ) == []

    def test_process_speedup_gate_skipped_below_worker_width(self):
        # A single-core runner cannot parallelize the grid in any executor:
        # the bar only applies when the host clears the worker count.
        assert compare_bench.evaluate_report(
            gauntlet_report(smoke=False, cpu_count=1, process_speedup=0.8)
        ) == []

    def test_process_speedup_gate_skipped_in_smoke_mode(self):
        assert compare_bench.evaluate_report(
            gauntlet_report(process_speedup=0.4)
        ) == []

    def test_process_timing_must_be_positive(self):
        problems = compare_bench.evaluate_report(gauntlet_report(process_seconds=0.0))
        assert any("timings" in p for p in problems)

    def test_telemetry_digest_flag_gates_even_in_smoke(self):
        problems = compare_bench.evaluate_report(
            gauntlet_report(telemetry_digests_equal=False)
        )
        assert any("tracing/progress changed" in p for p in problems)

    def test_telemetry_overhead_bar_is_0_95x(self):
        assert compare_bench.MIN_TELEMETRY_THROUGHPUT_RATIO == 0.95
        problems = compare_bench.evaluate_report(
            gauntlet_report(smoke=False, telemetry_throughput_ratio=0.90)
        )
        assert any("instrumented gauntlet" in p for p in problems)
        assert compare_bench.evaluate_report(
            gauntlet_report(smoke=False, telemetry_throughput_ratio=0.95)
        ) == []

    def test_telemetry_overhead_gate_skipped_in_smoke_mode(self):
        assert compare_bench.evaluate_report(
            gauntlet_report(telemetry_throughput_ratio=0.5)
        ) == []


class TestEngineAndServiceGates:
    def test_engine_zero_throughput_fails(self):
        problems = compare_bench.evaluate_report(engine_report(insertions_per_sec=0.0))
        assert any("insertions_per_sec" in p for p in problems)

    def test_engine_measured_mode_speedup_floors(self):
        problems = compare_bench.evaluate_report(
            engine_report(smoke=False, roundtrip_speedup_vs_seed=0.8)
        )
        assert any("round-trip" in p for p in problems)

    def test_service_level_without_throughput_fails(self):
        problems = compare_bench.evaluate_report(
            service_report(concurrency_levels={"4": {"throughput_rps": 0.0}})
        )
        assert any("concurrency level" in p for p in problems)

    def test_service_measured_warm_regression_fails(self):
        problems = compare_bench.evaluate_report(
            service_report(smoke=False, warm_over_cold_speedup=0.5)
        )
        assert any("warm-over-cold" in p for p in problems)


class TestServiceFleetGates:
    """The sharded-fleet bars: bit-identity and lazy residency are
    unconditional; the 4-shard speedup floor applies only measured on a
    wide-enough host."""

    def test_decision_divergence_flag_gates_even_in_smoke(self):
        problems = compare_bench.evaluate_report(
            fleet_report(decision_digests_equal=False)
        )
        assert any("diverged from the unsharded server" in p for p in problems)

    def test_digest_fields_must_agree_with_the_flag(self):
        # decision_digests_equal=True but a per-shard digest differs: the
        # cross-check catches a benchmark that computes the flag wrong.
        by_shards = {"1": "dec-" + "a" * 20, "2": "dec-" + "c" * 20}
        problems = compare_bench.evaluate_report(
            fleet_report(decision_digests_by_shards=by_shards)
        )
        assert any("2-shard decision digest" in p for p in problems)

    def test_audit_digest_instability_fails(self):
        problems = compare_bench.evaluate_report(
            fleet_report(audit_digests_equal=False)
        )
        assert any("occupancy-audit digest changed" in p for p in problems)

    def test_audit_digest_set_cross_checked(self):
        audits = {"1": "aud-" + "b" * 20, "2": "aud-" + "d" * 20}
        problems = compare_bench.evaluate_report(
            fleet_report(audit_digests_by_shards=audits)
        )
        assert any("more than one digest" in p for p in problems)

    def test_shard_level_without_throughput_fails(self):
        report = fleet_report()
        report["shard_levels"]["2"] = {"throughput_rps": 0.0}
        problems = compare_bench.evaluate_report(report)
        assert any("shard level '2'" in p for p in problems)

    def test_cold_start_npz_loads_fail_even_in_smoke(self):
        # Lazy residency is structural: re-opening a x1000 registry must
        # read zero archives regardless of mode.
        problems = compare_bench.evaluate_report(
            fleet_report(registry_cold_start_key_loads_x1000=1000)
        )
        assert any("bulk NPZ loads" in p for p in problems)

    def test_cold_start_resident_keys_fail_even_in_smoke(self):
        problems = compare_bench.evaluate_report(
            fleet_report(registry_cold_start_resident_x1000=7)
        )
        assert any("keys resident" in p for p in problems)

    def test_speedup_bar_is_1_5x_at_4_shards(self):
        assert compare_bench.MIN_FLEET_SPEEDUP_MEASURED == 1.5
        assert compare_bench.FLEET_SPEEDUP_SHARDS == 4
        problems = compare_bench.evaluate_report(
            fleet_report(smoke=False, speedup_4_vs_1=1.4)
        )
        assert any("4-shard fleet speedup" in p for p in problems)
        assert compare_bench.evaluate_report(
            fleet_report(smoke=False, speedup_4_vs_1=1.5)
        ) == []

    def test_speedup_gate_skipped_in_smoke_mode(self):
        assert compare_bench.evaluate_report(
            fleet_report(speedup_4_vs_1=0.4)
        ) == []

    def test_speedup_gate_skipped_below_shard_width(self):
        # A narrow host cannot run 4 shards in parallel; the bar only
        # applies when the core count clears the shard width.
        assert compare_bench.evaluate_report(
            fleet_report(smoke=False, cpu_count=2, speedup_4_vs_1=0.8)
        ) == []


class TestServiceJobsGates:
    """The async-jobs resume bar: exactness gates, applied in every mode."""

    def test_digest_mismatch_fails(self):
        problems = compare_bench.evaluate_report(
            jobs_report(digest_match=False, resumed_decision_digest="b" * 64)
        )
        assert any("differs from the uninterrupted run" in p for p in problems)

    def test_digest_fields_must_agree_with_the_flag(self):
        # digest_match=True but the actual digests differ: the cross-check
        # catches a benchmark that computes the flag wrong.
        problems = compare_bench.evaluate_report(
            jobs_report(resumed_decision_digest="b" * 64)
        )
        assert any("does not equal" in p for p in problems)

    def test_empty_digest_fails(self):
        problems = compare_bench.evaluate_report(
            jobs_report(
                uninterrupted_decision_digest="", resumed_decision_digest=""
            )
        )
        assert any("empty" in p for p in problems)

    def test_zero_replayed_cells_fails_even_in_smoke(self):
        problems = compare_bench.evaluate_report(
            jobs_report(replayed_cells=0, fresh_cells=5)
        )
        assert any("replayed no checkpointed cells" in p for p in problems)

    def test_cell_accounting_must_cover_the_grid(self):
        problems = compare_bench.evaluate_report(jobs_report(fresh_cells=2))
        assert any("cover the whole grid" in p for p in problems)

    def test_stream_must_include_the_end_record(self):
        problems = compare_bench.evaluate_report(jobs_report(events_streamed=5))
        assert any("end record" in p for p in problems)


class TestCli:
    def _write(self, path: Path, payload) -> Path:
        path.write_text(json.dumps(payload))
        return path

    def test_passing_files_exit_zero(self, tmp_path, capsys):
        a = self._write(tmp_path / "BENCH_gauntlet.json", gauntlet_report())
        b = self._write(tmp_path / "BENCH_engine.json", engine_report())
        assert compare_bench.main([str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2

    def test_directory_globbing_finds_artifacts(self, tmp_path, capsys):
        nested = tmp_path / "artifacts" / "BENCH_service"
        nested.mkdir(parents=True)
        self._write(nested / "BENCH_service.json", service_report())
        assert compare_bench.main([str(tmp_path)]) == 0
        assert "BENCH_service.json" in capsys.readouterr().out

    def test_failing_report_exits_one_and_names_problem(self, tmp_path, capsys):
        bad = self._write(
            tmp_path / "BENCH_gauntlet.json",
            gauntlet_report(decision_digests_equal=False),
        )
        assert compare_bench.main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "serial and parallel" in out

    def test_unreadable_json_exits_one(self, tmp_path):
        bad = tmp_path / "BENCH_x.json"
        bad.write_text("{not json")
        assert compare_bench.main([str(bad)]) == 1

    def test_empty_directory_exits_two(self, tmp_path):
        assert compare_bench.main([str(tmp_path)]) == 2

    def test_real_emitted_report_passes(self, tmp_path):
        """The gate accepts what benchmarks/test_gauntlet.py actually emits
        (kept in sync via the repository's own benchmark artifact when
        present)."""
        emitted = Path(_BENCH_DIR) / "results" / "BENCH_gauntlet.json"
        if not emitted.exists():
            pytest.skip("no local benchmark artifact; CI covers this pairing")
        report = json.loads(emitted.read_text())
        assert compare_bench.evaluate_report(report) == []
