"""Tests for ModelConfig validation and derived quantities."""

import pytest

from tests.conftest import make_tiny_config, make_tiny_llama_config


class TestValidation:
    def test_heads_must_divide_width(self):
        with pytest.raises(ValueError):
            make_tiny_config(d_model=30, n_heads=4)

    def test_vocab_minimum(self):
        with pytest.raises(ValueError):
            make_tiny_config(vocab_size=4)

    def test_layers_minimum(self):
        with pytest.raises(ValueError):
            make_tiny_config(n_layers=0)

    def test_outlier_fraction_bounds(self):
        with pytest.raises(ValueError):
            make_tiny_config(outlier_channel_fraction=1.5)

    def test_max_seq_len_minimum(self):
        with pytest.raises(ValueError):
            make_tiny_config(max_seq_len=1)


class TestDerived:
    def test_head_dim(self):
        config = make_tiny_config(d_model=32, n_heads=4)
        assert config.head_dim == 8

    def test_num_linear_layers(self):
        config = make_tiny_config(n_layers=3)
        assert config.num_linear_layers == 18

    def test_num_parameters_positive_and_monotone(self):
        small = make_tiny_config(d_model=32, n_layers=2, n_heads=2)
        large = make_tiny_config(d_model=64, n_layers=4, n_heads=4, d_ff=128)
        assert 0 < small.num_parameters() < large.num_parameters()

    def test_llama_config_has_no_positional_parameters(self):
        opt = make_tiny_config()
        llama = make_tiny_llama_config(d_ff=opt.d_ff)
        # Same dims except the positional table and the norm parameter count.
        assert llama.num_parameters() < opt.num_parameters()

    def test_describe_mentions_name(self):
        config = make_tiny_config(name="describe-me")
        assert "describe-me" in config.describe()
