"""Tests for activation statistics collection."""

import numpy as np
import pytest

from repro.models.activations import ActivationCapture, ActivationStats, collect_activation_stats


class TestActivationCapture:
    def test_mean_abs_computation(self):
        capture = ActivationCapture(collect_gram=False)
        capture.update("layer", np.array([[1.0, -2.0], [3.0, 0.0]]))
        stats = capture.finalize()
        np.testing.assert_allclose(stats.mean_abs["layer"], [2.0, 1.0])

    def test_max_tracking(self):
        capture = ActivationCapture(collect_gram=False)
        capture.update("layer", np.array([[1.0, -5.0]]))
        capture.update("layer", np.array([[2.0, 1.0]]))
        stats = capture.finalize()
        np.testing.assert_allclose(stats.maximum["layer"], [2.0, 5.0])

    def test_gram_is_mean_outer_product(self):
        capture = ActivationCapture(collect_gram=True)
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        capture.update("layer", x)
        stats = capture.finalize()
        np.testing.assert_allclose(stats.gram["layer"], x.T @ x / 2)

    def test_multiple_layers_tracked_independently(self):
        capture = ActivationCapture(collect_gram=False)
        capture.update("a", np.ones((2, 3)))
        capture.update("b", np.zeros((2, 4)))
        stats = capture.finalize()
        assert set(stats.layers()) == {"a", "b"}
        assert stats.mean_abs["b"].shape == (4,)

    def test_higher_rank_inputs_flattened(self):
        capture = ActivationCapture(collect_gram=False)
        capture.update("layer", np.ones((2, 3, 4)))
        stats = capture.finalize()
        assert stats.mean_abs["layer"].shape == (4,)


class TestActivationStats:
    def test_channel_saliency_lookup(self):
        stats = ActivationStats(mean_abs={"x": np.array([1.0, 2.0])})
        np.testing.assert_allclose(stats.channel_saliency("x"), [1.0, 2.0])

    def test_channel_saliency_missing_layer(self):
        stats = ActivationStats(mean_abs={})
        with pytest.raises(KeyError):
            stats.channel_saliency("missing")

    def test_top_channels(self):
        stats = ActivationStats(mean_abs={"x": np.array([0.1, 5.0, 1.0, 3.0])})
        top = stats.top_channels("x", fraction=0.5)
        assert list(top) == [1, 3]

    def test_top_channels_at_least_one(self):
        stats = ActivationStats(mean_abs={"x": np.array([0.1, 5.0])})
        assert stats.top_channels("x", fraction=0.01).size == 1

    def test_array_round_trip(self):
        stats = ActivationStats(
            mean_abs={"x": np.array([1.0, 2.0])},
            rms={"x": np.array([1.5, 2.5])},
            maximum={"x": np.array([3.0, 4.0])},
            gram={"x": np.eye(2)},
        )
        restored = ActivationStats.from_arrays(stats.to_arrays())
        np.testing.assert_allclose(restored.mean_abs["x"], stats.mean_abs["x"])
        np.testing.assert_allclose(restored.gram["x"], stats.gram["x"])
        np.testing.assert_allclose(restored.maximum["x"], stats.maximum["x"])


class TestCollectActivationStats:
    def test_covers_every_linear_layer(self, trained_model, small_dataset):
        stats = collect_activation_stats(trained_model, small_dataset.calibration)
        linear_names = set(trained_model.linear_layer_names())
        assert linear_names.issubset(set(stats.layers()))

    def test_channel_counts_match_layer_inputs(self, trained_model, small_dataset):
        stats = collect_activation_stats(trained_model, small_dataset.calibration)
        for name, linear in trained_model.named_linear_layers():
            assert stats.mean_abs[name].shape == (linear.in_features,)

    def test_outlier_channels_are_salient(self, trained_model, small_dataset):
        """Channels amplified at initialisation must show up as high-activation."""
        stats = collect_activation_stats(trained_model, small_dataset.calibration)
        saliency = stats.channel_saliency("blocks.0.attn.q_proj")
        outliers = trained_model.outlier_channels
        outlier_mean = saliency[outliers].mean()
        others = np.setdiff1d(np.arange(saliency.size), outliers)
        assert outlier_mean > 1.5 * saliency[others].mean()

    def test_short_corpus_rejected(self, trained_model, small_dataset):
        tiny = small_dataset.calibration
        shorter = type(tiny)(tiny.tokens[:5], tiny.vocabulary, "short")
        with pytest.raises(ValueError):
            collect_activation_stats(trained_model, shorter, sequence_length=32)
