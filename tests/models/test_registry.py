"""Tests for the model registry (structure only; no default-profile training)."""

import pytest

from repro.models.registry import (
    LLAMA2_FAMILY,
    MODEL_REGISTRY,
    OPT_FAMILY,
    TRAINING_PROFILES,
    get_model_config,
    get_pretrained_model,
    get_pretrained_model_and_data,
    list_model_names,
)


class TestRegistryStructure:
    def test_all_paper_models_present(self):
        expected = {
            "opt-125m-sim", "opt-1.3b-sim", "opt-2.7b-sim", "opt-6.7b-sim",
            "opt-13b-sim", "opt-30b-sim",
            "llama2-7b-sim", "llama2-13b-sim", "llama2-70b-sim",
        }
        assert expected == set(MODEL_REGISTRY)

    def test_families(self):
        assert len(OPT_FAMILY) == 6
        assert len(LLAMA2_FAMILY) == 3

    def test_family_architectures(self):
        for name in OPT_FAMILY:
            config = MODEL_REGISTRY[name]
            assert config.norm_type == "layernorm"
            assert config.activation == "relu"
        for name in LLAMA2_FAMILY:
            config = MODEL_REGISTRY[name]
            assert config.norm_type == "rmsnorm"
            assert config.activation == "silu"

    def test_capacity_grows_with_virtual_size(self):
        small = MODEL_REGISTRY["opt-125m-sim"].num_parameters()
        large = MODEL_REGISTRY["opt-30b-sim"].num_parameters()
        assert large > small

    def test_list_model_names_filtering(self):
        assert set(list_model_names("opt")) == set(OPT_FAMILY)
        assert set(list_model_names()) == set(MODEL_REGISTRY)

    def test_get_model_config_unknown(self):
        with pytest.raises(KeyError):
            get_model_config("opt-175b-sim")

    def test_profiles_exist(self):
        assert "default" in TRAINING_PROFILES
        assert "smoke" in TRAINING_PROFILES
        assert TRAINING_PROFILES["smoke"].steps < TRAINING_PROFILES["default"].steps


class TestPretrainedCache:
    def test_smoke_profile_trains_and_caches(self):
        model_a, data = get_pretrained_model_and_data("opt-125m-sim", profile="smoke")
        model_b = get_pretrained_model("opt-125m-sim", profile="smoke")
        # Clones of the same cached instance: equal weights, distinct objects.
        assert model_a is not model_b
        import numpy as np

        np.testing.assert_array_equal(
            model_a.lm_head.weight.value, model_b.lm_head.weight.value
        )
        assert data.vocabulary.size == model_a.config.vocab_size

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            get_pretrained_model("opt-125m-sim", profile="turbo")

    def test_clones_are_safe_to_mutate(self):
        model_a = get_pretrained_model("opt-125m-sim", profile="smoke")
        model_a.lm_head.weight.value[...] = 0.0
        model_b = get_pretrained_model("opt-125m-sim", profile="smoke")
        assert model_b.lm_head.weight.value.any()
