"""Tests for the Parameter / ParameterModule containers."""

import numpy as np
import pytest

from repro.models.parameters import Parameter, ParameterModule


class _Leaf(ParameterModule):
    def __init__(self):
        self.weight = Parameter(np.ones((2, 3)))
        self.bias = Parameter(np.zeros(2))


class _Tree(ParameterModule):
    def __init__(self):
        self.leaf = _Leaf()
        self.items = [_Leaf(), _Leaf()]
        self.scalar = Parameter(np.array([1.0]))


class TestParameter:
    def test_value_stored_as_float64(self):
        parameter = Parameter(np.ones(3, dtype=np.float32))
        assert parameter.value.dtype == np.float64

    def test_grad_initialised_to_zero(self):
        parameter = Parameter(np.ones((2, 2)))
        assert np.all(parameter.grad == 0)

    def test_accumulate_grad(self):
        parameter = Parameter(np.zeros(3))
        parameter.accumulate_grad(np.ones(3))
        parameter.accumulate_grad(np.ones(3))
        np.testing.assert_array_equal(parameter.grad, 2 * np.ones(3))

    def test_accumulate_grad_shape_check(self):
        parameter = Parameter(np.zeros(3))
        with pytest.raises(ValueError):
            parameter.accumulate_grad(np.zeros(4))

    def test_zero_grad(self):
        parameter = Parameter(np.zeros(3))
        parameter.accumulate_grad(np.ones(3))
        parameter.zero_grad()
        assert np.all(parameter.grad == 0)

    def test_copy_is_independent(self):
        parameter = Parameter(np.ones(3))
        clone = parameter.copy()
        clone.value[0] = 99
        assert parameter.value[0] == 1.0

    def test_size_and_shape(self):
        parameter = Parameter(np.zeros((4, 5)))
        assert parameter.size == 20
        assert parameter.shape == (4, 5)


class TestParameterModule:
    def test_named_parameters_cover_tree(self):
        tree = _Tree()
        names = dict(tree.named_parameters())
        assert "leaf.weight" in names
        assert "items.0.bias" in names
        assert "items.1.weight" in names
        assert "scalar" in names

    def test_num_parameters(self):
        leaf = _Leaf()
        assert leaf.num_parameters() == 2 * 3 + 2

    def test_zero_grad_resets_all(self):
        tree = _Tree()
        for parameter in tree.parameters():
            parameter.accumulate_grad(np.ones_like(parameter.value))
        tree.zero_grad()
        assert all(np.all(p.grad == 0) for p in tree.parameters())

    def test_state_dict_round_trip(self):
        tree = _Tree()
        state = tree.state_dict()
        other = _Tree()
        for parameter in other.parameters():
            parameter.value[...] = 7.0
        other.load_state_dict(state)
        np.testing.assert_array_equal(other.leaf.weight.value, tree.leaf.weight.value)

    def test_load_state_dict_rejects_missing_keys(self):
        tree = _Tree()
        state = tree.state_dict()
        state.pop("scalar")
        with pytest.raises(KeyError):
            tree.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self):
        tree = _Tree()
        state = tree.state_dict()
        state["scalar"] = np.zeros(5)
        with pytest.raises(ValueError):
            tree.load_state_dict(state)
