"""Tests for the Adam optimizer and the LM training loop."""

import numpy as np
import pytest

from repro.models.parameters import Parameter
from repro.models.training import AdamOptimizer, TrainingConfig, sample_batch, train_language_model
from repro.models.transformer import TransformerLM

from tests.conftest import make_tiny_config


class TestAdamOptimizer:
    def test_minimises_quadratic(self):
        parameter = Parameter(np.array([5.0, -3.0]))
        optimizer = AdamOptimizer([parameter], learning_rate=0.1, max_grad_norm=None)
        for _ in range(300):
            optimizer.zero_grad()
            parameter.accumulate_grad(2 * parameter.value)
            optimizer.step()
        assert np.all(np.abs(parameter.value) < 1e-2)

    def test_gradient_clipping(self):
        parameter = Parameter(np.zeros(4))
        optimizer = AdamOptimizer([parameter], max_grad_norm=1.0)
        parameter.accumulate_grad(np.full(4, 100.0))
        norm = optimizer.step()
        assert norm > 1.0
        assert np.linalg.norm(parameter.grad) <= 1.0 + 1e-9

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.array([10.0]))
        optimizer = AdamOptimizer([parameter], learning_rate=0.5, weight_decay=0.1,
                                  max_grad_norm=None)
        for _ in range(50):
            optimizer.zero_grad()
            optimizer.step()
        assert abs(parameter.value[0]) < 10.0

    def test_learning_rate_override(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = AdamOptimizer([parameter], learning_rate=0.0)
        parameter.accumulate_grad(np.array([1.0]))
        optimizer.step(learning_rate=0.1)
        assert parameter.value[0] != 1.0


class TestSampleBatch:
    def test_shape(self, small_dataset, rng):
        batch = sample_batch(small_dataset.train, 4, 16, rng)
        assert batch.shape == (4, 16)

    def test_contents_are_contiguous_slices(self, small_dataset, rng):
        batch = sample_batch(small_dataset.train, 2, 8, rng)
        tokens = small_dataset.train.tokens
        for row in batch:
            starts = np.flatnonzero(tokens == row[0])
            assert any(np.array_equal(tokens[s : s + 8], row) for s in starts)

    def test_rejects_too_long_sequences(self, small_dataset, rng):
        with pytest.raises(ValueError):
            sample_batch(small_dataset.train, 1, len(small_dataset.train) + 1, rng)


class TestTrainLanguageModel:
    def test_loss_decreases(self, small_dataset):
        model = TransformerLM(make_tiny_config(name="train-test"), seed=2)
        history = train_language_model(
            model,
            small_dataset.train,
            TrainingConfig(steps=60, batch_size=8, sequence_length=17, learning_rate=1e-2, seed=1),
        )
        first = np.mean(history["loss"][:5])
        last = np.mean(history["loss"][-5:])
        assert last < first - 0.3

    def test_history_lengths(self, small_dataset):
        model = TransformerLM(make_tiny_config(name="train-hist"), seed=2)
        history = train_language_model(
            model, small_dataset.train, TrainingConfig(steps=10, batch_size=4, sequence_length=9)
        )
        assert len(history["loss"]) == 10
        assert len(history["grad_norm"]) == 10

    def test_callback_invoked(self, small_dataset):
        model = TransformerLM(make_tiny_config(name="train-cb"), seed=2)
        seen = []
        train_language_model(
            model,
            small_dataset.train,
            TrainingConfig(steps=5, batch_size=4, sequence_length=9),
            callback=lambda step, loss: seen.append(step),
        )
        assert seen == list(range(5))

    def test_training_is_deterministic(self, small_dataset):
        config = TrainingConfig(steps=15, batch_size=4, sequence_length=9, seed=3)
        model_a = TransformerLM(make_tiny_config(name="det"), seed=4)
        model_b = TransformerLM(make_tiny_config(name="det"), seed=4)
        hist_a = train_language_model(model_a, small_dataset.train, config)
        hist_b = train_language_model(model_b, small_dataset.train, config)
        np.testing.assert_allclose(hist_a["loss"], hist_b["loss"])
        np.testing.assert_allclose(
            model_a.lm_head.weight.value, model_b.lm_head.weight.value
        )
