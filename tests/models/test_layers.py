"""Tests for the neural-network layers, including numerical gradient checks.

Every layer's analytic backward pass is validated against central finite
differences on a small input — the single most important correctness property
of the hand-written substrate.
"""

import numpy as np
import pytest

from repro.models.layers import (
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    MultiHeadAttention,
    RMSNorm,
    TransformerBlock,
    cross_entropy,
    cross_entropy_backward,
    softmax,
)
from repro.models.parameters import Parameter


def numerical_gradient(f, x, eps=1e-5):
    """Central finite-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = x[index]
        x[index] = original + eps
        up = f()
        x[index] = original - eps
        down = f()
        x[index] = original
        grad[index] = (up - down) / (2 * eps)
        it.iternext()
    return grad


def check_input_gradient(layer_forward, layer_backward, x, tolerance=1e-5):
    """Verify d(sum of outputs)/dx against finite differences."""
    y, cache = layer_forward(x)
    dx = layer_backward(np.ones_like(y), cache)
    numeric = numerical_gradient(lambda: layer_forward(x)[0].sum(), x)
    np.testing.assert_allclose(dx, numeric, atol=tolerance, rtol=1e-4)


def check_parameter_gradient(module, parameter: Parameter, forward, tolerance=1e-5):
    """Verify an accumulated parameter gradient against finite differences."""
    module.zero_grad()
    y, cache = forward()
    module_backward = getattr(module, "backward")
    module_backward(np.ones_like(y), cache)
    analytic = parameter.grad.copy()
    numeric = numerical_gradient(lambda: forward()[0].sum(), parameter.value)
    np.testing.assert_allclose(analytic, numeric, atol=tolerance, rtol=1e-4)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestSoftmaxAndCrossEntropy:
    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), np.ones(4))

    def test_softmax_stability_with_large_values(self):
        x = np.array([[1e4, 1e4 + 1.0]])
        probs = softmax(x)
        assert np.all(np.isfinite(probs))

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(5, 6))
        targets = rng.integers(0, 6, size=5)
        loss, probs = cross_entropy(logits, targets)
        manual = -np.mean(np.log(probs[np.arange(5), targets]))
        assert np.isclose(loss, manual)

    def test_cross_entropy_backward_is_gradient(self, rng):
        logits = rng.normal(size=(3, 5))
        targets = rng.integers(0, 5, size=3)

        def loss_fn():
            return cross_entropy(logits, targets)[0]

        _, probs = cross_entropy(logits, targets)
        analytic = cross_entropy_backward(probs, targets)
        numeric = numerical_gradient(loss_fn, logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_cross_entropy_input_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 3)), np.zeros(3, dtype=int))


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 6, rng)
        y, _ = layer.forward(rng.normal(size=(2, 3, 4)))
        assert y.shape == (2, 3, 6)

    def test_forward_matches_manual(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(5, 3))
        y, _ = layer.forward(x)
        np.testing.assert_allclose(y, x @ layer.weight.value.T + layer.bias.value)

    def test_input_gradient(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(2, 4))
        check_input_gradient(layer.forward, layer.backward, x)

    def test_weight_gradient(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(2, 4))
        check_parameter_gradient(layer, layer.weight, lambda: layer.forward(x))

    def test_bias_gradient(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(2, 4))
        check_parameter_gradient(layer, layer.bias, lambda: layer.forward(x))

    def test_no_bias_option(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        y, _ = layer.forward(rng.normal(size=(1, 4)))
        assert y.shape == (1, 3)

    def test_capture_records_input(self, rng):
        class _Capture:
            def __init__(self):
                self.calls = []

            def update(self, name, x):
                self.calls.append((name, x.shape))

        layer = Linear(4, 3, rng)
        layer.full_name = "probe"
        capture = _Capture()
        layer.forward(rng.normal(size=(2, 4)), capture)
        assert capture.calls == [("probe", (2, 4))]


class TestEmbedding:
    def test_forward_gathers_rows(self, rng):
        embed = Embedding(10, 4, rng)
        ids = np.array([[1, 2], [3, 1]])
        y, _ = embed.forward(ids)
        np.testing.assert_allclose(y[0, 0], embed.weight.value[1])
        assert y.shape == (2, 2, 4)

    def test_backward_scatter_adds(self, rng):
        embed = Embedding(10, 4, rng)
        ids = np.array([[1, 1]])
        _, cache = embed.forward(ids)
        embed.zero_grad()
        embed.backward(np.ones((1, 2, 4)), cache)
        # Token 1 appears twice, so its gradient row accumulates twice.
        np.testing.assert_allclose(embed.weight.grad[1], 2 * np.ones(4))
        np.testing.assert_allclose(embed.weight.grad[0], np.zeros(4))


class TestNorms:
    @pytest.mark.parametrize("norm_cls", [LayerNorm, RMSNorm])
    def test_output_shape(self, norm_cls, rng):
        norm = norm_cls(6)
        x = rng.normal(size=(2, 3, 6))
        y, _ = norm.forward(x)
        assert y.shape == x.shape

    def test_layernorm_normalises(self, rng):
        norm = LayerNorm(8)
        x = rng.normal(size=(4, 8)) * 3 + 1
        y, _ = norm.forward(x)
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=1e-2)

    @pytest.mark.parametrize("norm_cls", [LayerNorm, RMSNorm])
    def test_input_gradient(self, norm_cls, rng):
        norm = norm_cls(5)
        # Give gamma a non-trivial value so the gradient exercises it.
        norm.gamma.value[:] = rng.normal(size=5) + 1.5
        x = rng.normal(size=(3, 5))
        check_input_gradient(norm.forward, norm.backward, x, tolerance=1e-4)

    @pytest.mark.parametrize("norm_cls", [LayerNorm, RMSNorm])
    def test_gamma_gradient(self, norm_cls, rng):
        norm = norm_cls(5)
        x = rng.normal(size=(3, 5))
        check_parameter_gradient(norm, norm.gamma, lambda: norm.forward(x), tolerance=1e-4)

    def test_outlier_channels_amplify_gain(self):
        norm = LayerNorm(8, outlier_channels=np.array([2, 5]), outlier_gain=4.0)
        assert norm.gamma.value[2] == 4.0
        assert norm.gamma.value[0] == 1.0


class TestAttention:
    def test_forward_shape(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        y, _ = attn.forward(rng.normal(size=(2, 5, 8)))
        assert y.shape == (2, 5, 8)

    def test_causality(self, rng):
        """Changing a future token must not affect earlier outputs."""
        attn = MultiHeadAttention(8, 2, rng)
        x = rng.normal(size=(1, 6, 8))
        y1, _ = attn.forward(x)
        x2 = x.copy()
        x2[0, 5] += 10.0
        y2, _ = attn.forward(x2)
        np.testing.assert_allclose(y1[0, :5], y2[0, :5], atol=1e-10)

    def test_input_gradient(self, rng):
        attn = MultiHeadAttention(4, 2, rng)
        x = rng.normal(size=(1, 3, 4))
        check_input_gradient(attn.forward, attn.backward, x, tolerance=1e-4)

    def test_rejects_indivisible_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(6, 4, rng)


class TestFeedForward:
    @pytest.mark.parametrize("activation", ["relu", "silu", "gelu"])
    def test_forward_shape(self, activation, rng):
        mlp = FeedForward(6, 12, rng, activation=activation)
        y, _ = mlp.forward(rng.normal(size=(2, 4, 6)))
        assert y.shape == (2, 4, 6)

    @pytest.mark.parametrize("activation", ["relu", "silu", "gelu"])
    def test_input_gradient(self, activation, rng):
        mlp = FeedForward(4, 7, rng, activation=activation)
        # Shift inputs away from the ReLU kink to keep finite differences valid.
        x = rng.normal(size=(2, 4)) + 0.05
        check_input_gradient(mlp.forward, mlp.backward, x, tolerance=1e-4)

    def test_unknown_activation_rejected(self, rng):
        mlp = FeedForward(4, 7, rng, activation="tanhish")
        with pytest.raises(ValueError):
            mlp.forward(rng.normal(size=(1, 4)))


class TestTransformerBlock:
    @pytest.mark.parametrize("norm_type,activation", [("layernorm", "relu"), ("rmsnorm", "silu")])
    def test_forward_shape(self, norm_type, activation, rng):
        block = TransformerBlock(8, 2, 16, rng, norm_type=norm_type, activation=activation)
        y, _ = block.forward(rng.normal(size=(2, 5, 8)))
        assert y.shape == (2, 5, 8)

    def test_input_gradient(self, rng):
        block = TransformerBlock(4, 2, 8, rng)
        x = rng.normal(size=(1, 3, 4))
        check_input_gradient(block.forward, block.backward, x, tolerance=1e-4)

    def test_residual_path_present(self, rng):
        """With zeroed projections the block must reduce to the identity."""
        block = TransformerBlock(4, 2, 8, rng)
        block.attn.o_proj.weight.value[...] = 0.0
        block.attn.o_proj.bias.value[...] = 0.0
        block.mlp.fc_out.weight.value[...] = 0.0
        block.mlp.fc_out.bias.value[...] = 0.0
        x = rng.normal(size=(1, 3, 4))
        y, _ = block.forward(x)
        np.testing.assert_allclose(y, x, atol=1e-12)
