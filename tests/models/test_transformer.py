"""Tests for the TransformerLM model."""

import numpy as np
import pytest

from repro.models.transformer import TransformerLM

from tests.conftest import make_tiny_config, make_tiny_llama_config


class TestConstruction:
    def test_same_seed_same_weights(self, tiny_config):
        a = TransformerLM(tiny_config, seed=7)
        b = TransformerLM(tiny_config, seed=7)
        for (name_a, pa), (name_b, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.value, pb.value)

    def test_different_seeds_differ(self, tiny_config):
        a = TransformerLM(tiny_config, seed=7)
        b = TransformerLM(tiny_config, seed=8)
        assert not np.array_equal(a.lm_head.weight.value, b.lm_head.weight.value)

    def test_parameter_count_matches_config(self, tiny_config):
        model = TransformerLM(tiny_config, seed=0)
        assert model.num_parameters() == tiny_config.num_parameters()

    def test_llama_has_no_positional_embedding(self):
        model = TransformerLM(make_tiny_llama_config(), seed=0)
        assert not model.uses_positional_embedding
        assert not hasattr(model, "position_embedding")

    def test_opt_has_positional_embedding(self, tiny_config):
        model = TransformerLM(tiny_config, seed=0)
        assert model.uses_positional_embedding


class TestLinearLayerEnumeration:
    def test_six_linears_per_block(self, untrained_model, tiny_config):
        names = untrained_model.linear_layer_names()
        assert len(names) == tiny_config.n_layers * 6
        assert untrained_model.num_quantization_layers == len(names)

    def test_lm_head_excluded_by_default(self, untrained_model):
        assert "lm_head" not in untrained_model.linear_layer_names()

    def test_lm_head_included_on_request(self, untrained_model):
        names = [n for n, _ in untrained_model.named_linear_layers(include_lm_head=True)]
        assert "lm_head" in names

    def test_order_is_stable(self, untrained_model):
        first = untrained_model.linear_layer_names()
        second = untrained_model.linear_layer_names()
        assert first == second

    def test_get_linear(self, untrained_model):
        name = untrained_model.linear_layer_names()[0]
        layer = untrained_model.get_linear(name)
        assert layer.full_name == name

    def test_get_linear_unknown_raises(self, untrained_model):
        with pytest.raises(KeyError):
            untrained_model.get_linear("blocks.99.attn.q_proj")


class TestForward:
    def test_logits_shape(self, untrained_model, tiny_config):
        tokens = np.zeros((2, 10), dtype=np.int64)
        logits = untrained_model.forward(tokens)
        assert logits.shape == (2, 10, tiny_config.vocab_size)

    def test_1d_input_promoted_to_batch(self, untrained_model, tiny_config):
        logits = untrained_model.forward(np.zeros(5, dtype=np.int64))
        assert logits.shape == (1, 5, tiny_config.vocab_size)

    def test_sequence_length_limit_enforced(self, untrained_model, tiny_config):
        too_long = np.zeros((1, tiny_config.max_seq_len + 1), dtype=np.int64)
        with pytest.raises(ValueError):
            untrained_model.forward(too_long)

    def test_forward_is_deterministic(self, untrained_model, rng):
        tokens = rng.integers(0, 100, size=(2, 8))
        np.testing.assert_array_equal(
            untrained_model.forward(tokens), untrained_model.forward(tokens)
        )

    def test_causality_of_full_model(self, untrained_model, rng):
        tokens = rng.integers(4, 100, size=(1, 8))
        logits_full = untrained_model.forward(tokens)
        altered = tokens.copy()
        altered[0, -1] = (altered[0, -1] + 1) % 100
        logits_altered = untrained_model.forward(altered)
        np.testing.assert_allclose(logits_full[0, :-1], logits_altered[0, :-1], atol=1e-10)


class TestLossAndGradients:
    def test_loss_positive_and_near_uniform_for_untrained(self, untrained_model, tiny_config, rng):
        tokens = rng.integers(4, tiny_config.vocab_size, size=(4, 16))
        loss = untrained_model.loss(tokens)
        assert 0 < loss < np.log(tiny_config.vocab_size) + 1.0

    def test_loss_and_gradients_populates_grads(self, untrained_model, rng):
        tokens = rng.integers(4, 100, size=(2, 12))
        untrained_model.zero_grad()
        untrained_model.loss_and_gradients(tokens)
        grad_norms = [np.abs(p.grad).sum() for p in untrained_model.parameters()]
        assert sum(g > 0 for g in grad_norms) > len(grad_norms) * 0.8

    def test_loss_matches_loss_and_gradients(self, untrained_model, rng):
        tokens = rng.integers(4, 100, size=(2, 12))
        assert np.isclose(untrained_model.loss(tokens), untrained_model.loss_and_gradients(tokens))

    def test_model_gradient_check_on_small_subset(self, rng):
        """Finite-difference check of the end-to-end loss for a few weights."""
        config = make_tiny_config(name="grad-check", d_model=8, n_layers=1, n_heads=2, d_ff=16,
                                  vocab_size=32, max_seq_len=8)
        model = TransformerLM(config, seed=1)
        tokens = rng.integers(4, 32, size=(2, 6))
        model.zero_grad()
        model.loss_and_gradients(tokens)
        target = model.blocks[0].attn.q_proj.weight
        eps = 1e-5
        for index in [(0, 0), (3, 5), (7, 2)]:
            original = target.value[index]
            target.value[index] = original + eps
            up = model.loss(tokens)
            target.value[index] = original - eps
            down = model.loss(tokens)
            target.value[index] = original
            numeric = (up - down) / (2 * eps)
            assert np.isclose(target.grad[index], numeric, atol=1e-5)


class TestScoringUtilities:
    def test_token_log_probs_shape(self, untrained_model, rng):
        tokens = rng.integers(4, 100, size=(3, 9))
        log_probs = untrained_model.token_log_probs(tokens)
        assert log_probs.shape == (3, 8)
        assert np.all(log_probs <= 0)

    def test_sequence_log_likelihood_prefers_trained_patterns(self, trained_model, small_dataset):
        """A trained model should prefer real corpus text over noise."""
        tokens = small_dataset.validation.tokens[:20]
        context, continuation = tokens[:12], tokens[12:16]
        noise = np.full(4, small_dataset.vocabulary.first_regular_id + 90)
        good = trained_model.sequence_log_likelihood(context, continuation)
        bad = trained_model.sequence_log_likelihood(context, noise)
        assert good > bad

    def test_sequence_log_likelihood_requires_continuation(self, untrained_model):
        with pytest.raises(ValueError):
            untrained_model.sequence_log_likelihood(np.array([4, 5]), np.array([]))

    def test_greedy_generate_length(self, untrained_model):
        out = untrained_model.greedy_generate(np.array([4, 5, 6]), num_tokens=5)
        assert out.size == 8


class TestCloneAndState:
    def test_clone_preserves_function(self, untrained_model, rng):
        tokens = rng.integers(4, 100, size=(1, 8))
        clone = untrained_model.clone()
        np.testing.assert_allclose(untrained_model.forward(tokens), clone.forward(tokens))

    def test_clone_is_independent(self, untrained_model):
        clone = untrained_model.clone()
        clone.lm_head.weight.value[...] = 0.0
        assert not np.array_equal(clone.lm_head.weight.value, untrained_model.lm_head.weight.value)
