"""End-to-end integration tests spanning the whole pipeline.

These tests follow the full lifecycle a downstream user would run: train (or
load) a model, quantize it with each framework the paper uses, watermark it,
persist the key, ship the model, and later prove ownership — including after
attacks and against unrelated models.
"""

import numpy as np
import pytest

from repro.attacks.overwrite import OverwriteAttackConfig, parameter_overwrite_attack
from repro.core import EmMark, EmMarkConfig, WatermarkKey
from repro.eval.harness import EvaluationHarness
from repro.models.activations import collect_activation_stats
from repro.quant.api import quantize_model
from repro.models.transformer import TransformerLM

from tests.conftest import make_tiny_llama_config


@pytest.mark.parametrize("method,bits", [("smoothquant", 8), ("llm_int8", 8), ("awq", 4), ("gptq", 4)])
def test_full_lifecycle_per_quantizer(trained_model, activation_stats, method, bits, tmp_path):
    """Quantize → watermark → save key → reload key → verify ownership."""
    quantized = quantize_model(trained_model, method, bits=bits, activations=activation_stats)
    emmark = EmMark(EmMarkConfig.scaled_for_model(quantized, bits_per_layer=6))
    watermarked, key, report = emmark.insert_with_key(quantized, activation_stats)

    key_dir = tmp_path / f"key-{method}-{bits}"
    key.save(key_dir)
    restored_key = WatermarkKey.load(key_dir)

    assert emmark.extract_with_key(watermarked, restored_key).wer_percent == 100.0
    assert not emmark.verify(quantized, restored_key)
    assert report.total_seconds < 30.0


def test_watermark_quality_and_robustness_end_to_end(
    trained_model, activation_stats, quantized_awq4, small_dataset
):
    """The full fidelity + robustness story on one model."""
    harness = EvaluationHarness(small_dataset, max_sequences=10, num_task_examples=6)
    baseline = harness.evaluate(quantized_awq4)

    emmark = EmMark(EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8))
    watermarked, key, _ = emmark.insert_with_key(quantized_awq4, activation_stats)
    watermarked_quality = harness.evaluate(watermarked)

    # Fidelity: the watermark is quality-neutral within a tight tolerance.
    assert abs(watermarked_quality.perplexity - baseline.perplexity) / baseline.perplexity < 0.05
    assert abs(watermarked_quality.zero_shot_accuracy - baseline.zero_shot_accuracy) <= 10.0

    # Robustness: an overwriting attack leaves the watermark extractable.
    attacked = parameter_overwrite_attack(watermarked, OverwriteAttackConfig(40, seed=9))
    assert emmark.extract_with_key(attacked, key).wer_percent > 90.0

    # Integrity: an architecturally identical but unrelated model never
    # verifies (its accidental bit matches stay far below the threshold and
    # carry no statistical weight).
    unrelated = TransformerLM(trained_model.config, seed=123)
    unrelated_stats = collect_activation_stats(unrelated, small_dataset.calibration)
    unrelated_quantized = quantize_model(unrelated, "awq", bits=4, activations=unrelated_stats)
    unrelated_result = emmark.extract_with_key(unrelated_quantized, key)
    assert unrelated_result.wer_percent < 40.0
    assert unrelated_result.false_claim_probability > 1e-3
    assert not emmark.verify(unrelated_quantized, key)


def test_llama_style_model_lifecycle(small_dataset):
    """The LLaMA-2-style architecture (RMSNorm/SiLU, LLM.int8) works end to end."""
    from repro.models.training import TrainingConfig, train_language_model

    model = TransformerLM(make_tiny_llama_config(), seed=1)
    train_language_model(
        model, small_dataset.train,
        TrainingConfig(steps=40, batch_size=4, sequence_length=17, seed=2),
    )
    stats = collect_activation_stats(model, small_dataset.calibration)
    quantized = quantize_model(model, "llm_int8", bits=8, activations=stats)
    emmark = EmMark(EmMarkConfig.scaled_for_model(quantized, bits_per_layer=10))
    watermarked, key, _ = emmark.insert_with_key(quantized, stats)
    assert emmark.extract_with_key(watermarked, key).wer_percent == 100.0
    # Outlier columns (kept in FP16 by LLM.int8) never carry watermark bits.
    diff = watermarked.weight_difference(quantized)
    for name, layer in quantized.layers.items():
        if layer.outlier_columns is None:
            continue
        assert np.all(diff[name][:, layer.outlier_columns] == 0)


def test_two_owners_signatures_do_not_collide(quantized_awq4, activation_stats):
    """Different owners (different signature seeds) never cross-verify."""
    config = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8)
    owner_a = EmMark(config.with_overrides(signature_seed=1, seed=100))
    owner_b = EmMark(config.with_overrides(signature_seed=2, seed=200))
    model_a, key_a, _ = owner_a.insert_with_key(quantized_awq4, activation_stats)
    model_b, key_b, _ = owner_b.insert_with_key(quantized_awq4, activation_stats)
    assert owner_a.extract_with_key(model_a, key_a).wer_percent == 100.0
    assert owner_b.extract_with_key(model_b, key_b).wer_percent == 100.0
    assert owner_a.extract_with_key(model_b, key_a).wer_percent < 60.0
    assert owner_b.extract_with_key(model_a, key_b).wer_percent < 60.0
