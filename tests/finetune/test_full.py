"""Tests for full-precision fine-tuning."""

import numpy as np

from repro.data.alpaca import build_alpaca_sim
from repro.finetune.full import FineTuneConfig, fine_tune_full_precision


class TestFineTuneFullPrecision:
    def test_returns_new_model_by_default(self, trained_model, small_dataset):
        tuned, _ = fine_tune_full_precision(
            trained_model, small_dataset.train, FineTuneConfig(steps=5, batch_size=4)
        )
        assert tuned is not trained_model

    def test_in_place_option(self, trained_model, small_dataset):
        clone = trained_model.clone()
        tuned, _ = fine_tune_full_precision(
            clone, small_dataset.train, FineTuneConfig(steps=5, batch_size=4), in_place=True
        )
        assert tuned is clone

    def test_weights_actually_move(self, trained_model, small_dataset):
        alpaca = build_alpaca_sim(small_dataset.vocabulary, num_pairs=40)
        tuned, _ = fine_tune_full_precision(
            trained_model, alpaca.as_corpus(), FineTuneConfig(steps=30, batch_size=4)
        )
        name = trained_model.linear_layer_names()[0]
        before = trained_model.get_linear(name).weight.value
        after = tuned.get_linear(name).weight.value
        relative_change = np.abs(after - before).mean() / (np.abs(before).mean() + 1e-12)
        assert relative_change > 0.01

    def test_original_model_untouched(self, trained_model, small_dataset):
        snapshot = trained_model.state_dict()
        fine_tune_full_precision(
            trained_model, small_dataset.train, FineTuneConfig(steps=5, batch_size=4)
        )
        for name, value in trained_model.state_dict().items():
            np.testing.assert_array_equal(value, snapshot[name])

    def test_loss_history_returned(self, trained_model, small_dataset):
        _, history = fine_tune_full_precision(
            trained_model, small_dataset.train, FineTuneConfig(steps=7, batch_size=4)
        )
        assert len(history["loss"]) == 7

    def test_adapts_to_new_corpus(self, trained_model, small_dataset):
        """Fine-tuning on Alpaca-sim should reduce the loss on Alpaca-sim."""
        alpaca = build_alpaca_sim(small_dataset.vocabulary, num_pairs=60).as_corpus()
        eval_windows = alpaca.as_matrix(17, 12)
        loss_before = trained_model.loss(eval_windows)
        tuned, _ = fine_tune_full_precision(
            trained_model, alpaca, FineTuneConfig(steps=40, batch_size=6, sequence_length=17)
        )
        loss_after = tuned.loss(eval_windows)
        assert loss_after < loss_before
