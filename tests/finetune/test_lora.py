"""Tests for the LoRA adapters on quantized models."""

import numpy as np
import pytest

from repro.finetune.lora import LoRAAdapter, LoRAConfig, LoRAFineTuner
from repro.utils.rng import new_rng


class TestLoRAAdapter:
    def test_initial_delta_is_zero(self):
        adapter = LoRAAdapter("probe", 8, 6, rank=2, alpha=4.0, rng=new_rng(0))
        np.testing.assert_allclose(adapter.delta_weight(), np.zeros((8, 6)))

    def test_scaling(self):
        adapter = LoRAAdapter("probe", 4, 4, rank=2, alpha=8.0, rng=new_rng(0))
        assert adapter.scaling == 4.0

    def test_delta_rank_bounded(self):
        adapter = LoRAAdapter("probe", 8, 6, rank=2, alpha=4.0, rng=new_rng(0))
        adapter.b.value[...] = new_rng(1).normal(size=adapter.b.value.shape)
        assert np.linalg.matrix_rank(adapter.delta_weight()) <= 2

    def test_gradient_projection_shapes(self):
        adapter = LoRAAdapter("probe", 8, 6, rank=2, alpha=4.0, rng=new_rng(0))
        adapter.accumulate_gradient_from_weight_grad(np.ones((8, 6)))
        assert adapter.a.grad.shape == (2, 6)
        assert adapter.b.grad.shape == (8, 2)

    def test_rank_validated(self):
        with pytest.raises(ValueError):
            LoRAAdapter("probe", 8, 6, rank=0, alpha=4.0, rng=new_rng(0))


class TestLoRAFineTuner:
    def test_adapters_created_for_every_layer(self, quantized_awq4):
        tuner = LoRAFineTuner(quantized_awq4, LoRAConfig(steps=1))
        assert set(tuner.adapters) == set(quantized_awq4.layer_names())

    def test_quantized_weights_frozen(self, quantized_awq4, small_dataset):
        reference = quantized_awq4.clone()
        tuner = LoRAFineTuner(quantized_awq4, LoRAConfig(steps=4, batch_size=4, rank=2))
        tuner.fine_tune(small_dataset.train)
        assert tuner.quantized_weights_unchanged(reference)

    def test_adapters_learn(self, quantized_awq4, small_dataset):
        tuner = LoRAFineTuner(quantized_awq4, LoRAConfig(steps=15, batch_size=4, rank=2))
        history = tuner.fine_tune(small_dataset.train)
        # Adapter matrices must have moved away from the zero initialisation.
        moved = any(np.abs(adapter.b.value).sum() > 0 for adapter in tuner.adapters.values())
        assert moved
        assert len(history["loss"]) == 15

    def test_materialize_includes_adapter_delta(self, quantized_awq4):
        tuner = LoRAFineTuner(quantized_awq4, LoRAConfig(steps=1, rank=2))
        name = quantized_awq4.layer_names()[0]
        adapter = tuner.adapters[name]
        adapter.b.value[...] = 0.1
        model = tuner.materialize()
        expected = quantized_awq4.get_layer(name).effective_weight() + adapter.delta_weight()
        np.testing.assert_allclose(model.get_linear(name).weight.value, expected)
