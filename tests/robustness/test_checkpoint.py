"""Checkpoint/resume semantics of the gauntlet.

The load-bearing guarantee: a sweep interrupted after any number of
checkpointed cells and later resumed produces a decision digest
**bit-identical** to an uninterrupted run — JSON-exact cell fields plus
grid-order reassembly, regardless of worker count on either side.
"""

from __future__ import annotations

import json

import pytest

from repro.robustness import (
    CellCheckpoint,
    CheckpointError,
    Gauntlet,
    GauntletCancelled,
    GauntletSubject,
    build_attack,
    grid_fingerprint,
    run_gauntlet,
)
from repro.robustness.checkpoint import merge_completed
from repro.robustness.gauntlet import GauntletConfig

ATTACKS = ("overwrite", "pruning")
STRENGTHS = {"overwrite": (0, 10, 20), "pruning": (0.3, 0.5)}


def _attacks():
    return [build_attack(name) for name in ATTACKS]


def _bare(subject):
    return GauntletSubject(model=subject.model, key=subject.key)


def _run(subject, engine, checkpoint=None, on_cell=None, should_stop=None, workers=1):
    return run_gauntlet(
        {"m": _bare(subject)},
        _attacks(),
        strengths=STRENGTHS,
        engine=engine,
        checkpoint=checkpoint,
        on_cell=on_cell,
        should_stop=should_stop,
        evaluate_quality=False,
        max_workers=workers,
        seed=3,
    )


class TestGridFingerprint:
    def test_deterministic(self):
        kwargs = dict(
            subject_ids=["m"],
            attack_strengths={"overwrite": (0, 10)},
            seed=3,
            wer_threshold=95.0,
            max_false_claim_probability=1e-6,
            evaluate_quality=False,
        )
        assert grid_fingerprint(**kwargs) == grid_fingerprint(**kwargs)

    @pytest.mark.parametrize(
        "override",
        [
            {"subject_ids": ["other"]},
            {"attack_strengths": {"overwrite": (0, 20)}},
            {"seed": 4},
            {"wer_threshold": 90.0},
            {"max_false_claim_probability": None},
            {"evaluate_quality": True},
            {"extra": {"suspect_content": "abc"}},
        ],
    )
    def test_decision_relevant_inputs_change_it(self, override):
        base = dict(
            subject_ids=["m"],
            attack_strengths={"overwrite": (0, 10)},
            seed=3,
            wer_threshold=95.0,
            max_false_claim_probability=1e-6,
            evaluate_quality=False,
        )
        assert grid_fingerprint(**base) != grid_fingerprint(**{**base, **override})


class TestCellCheckpoint:
    def test_missing_file_loads_empty(self, tmp_path):
        ckpt = CellCheckpoint(tmp_path / "none.jsonl", fingerprint="f" * 64)
        assert ckpt.load() == {}

    def test_fingerprint_mismatch_rejected(self, tmp_path, awq_subject, gauntlet_engine):
        path = tmp_path / "ck.jsonl"
        full = _run(awq_subject, gauntlet_engine, checkpoint=path)
        assert full.num_cells == 5
        with pytest.raises(CheckpointError, match="different grid"):
            CellCheckpoint(path, fingerprint="0" * 64).load()

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(CheckpointError, match="not a gauntlet checkpoint"):
            CellCheckpoint(path, fingerprint="f" * 64).load()

    def test_torn_final_line_tolerated(self, tmp_path, awq_subject, gauntlet_engine):
        path = tmp_path / "ck.jsonl"
        _run(awq_subject, gauntlet_engine, checkpoint=path)
        lines = path.read_text().splitlines()
        fingerprint = json.loads(lines[0])["fingerprint"]
        # Simulate a crash mid-append: truncate the last record.
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        completed = CellCheckpoint(path, fingerprint=fingerprint).load()
        assert len(completed) == len(lines) - 2  # header + torn line dropped

    def test_corrupt_mid_file_rejected(self, tmp_path, awq_subject, gauntlet_engine):
        path = tmp_path / "ck.jsonl"
        _run(awq_subject, gauntlet_engine, checkpoint=path)
        lines = path.read_text().splitlines()
        fingerprint = json.loads(lines[0])["fingerprint"]
        lines[2] = lines[2][: len(lines[2]) // 2]  # torn *before* later records
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt record mid-file"):
            CellCheckpoint(path, fingerprint=fingerprint).load()

    def test_merge_completed_orders_by_grid(self):
        class _Cell:
            def __init__(self, cell_id):
                self.cell_id = cell_id

        cells, replayed = merge_completed(
            ["a", "b", "c"],
            {"b": _Cell("b")},
            {"a": _Cell("a"), "c": _Cell("c")},
        )
        assert [c.cell_id for c in cells] == ["a", "b", "c"]
        assert replayed == 1


class TestResume:
    def test_cancel_then_resume_digest_identical(
        self, tmp_path, awq_subject, gauntlet_engine
    ):
        full = _run(awq_subject, gauntlet_engine)
        path = tmp_path / "ck.jsonl"
        seen = {"n": 0}

        def on_cell(_result, _replayed):
            seen["n"] += 1

        with pytest.raises(GauntletCancelled) as info:
            _run(
                awq_subject,
                gauntlet_engine,
                checkpoint=path,
                on_cell=on_cell,
                should_stop=lambda: seen["n"] >= 2,
            )
        assert info.value.completed == 2
        assert info.value.total == 5

        events = []
        resumed = _run(
            awq_subject,
            gauntlet_engine,
            checkpoint=path,
            on_cell=lambda r, replayed: events.append((r.cell_id, replayed)),
        )
        assert resumed.decision_digest() == full.decision_digest()
        replayed = [cell_id for cell_id, was_replayed in events if was_replayed]
        fresh = [cell_id for cell_id, was_replayed in events if not was_replayed]
        assert len(replayed) == 2 and len(fresh) == 3
        assert set(replayed + fresh) == {c.cell_id for c in full.cells}

    def test_resume_with_different_worker_count(
        self, tmp_path, awq_subject, gauntlet_engine
    ):
        """Serial checkpoint, threaded resume — digests still match."""
        full = _run(awq_subject, gauntlet_engine)
        path = tmp_path / "ck.jsonl"
        seen = {"n": 0}

        def on_cell(_result, _replayed):
            seen["n"] += 1

        with pytest.raises(GauntletCancelled):
            _run(
                awq_subject,
                gauntlet_engine,
                checkpoint=path,
                on_cell=on_cell,
                should_stop=lambda: seen["n"] >= 1,
            )
        resumed = _run(awq_subject, gauntlet_engine, checkpoint=path, workers=4)
        assert resumed.decision_digest() == full.decision_digest()

    def test_completed_checkpoint_replays_everything(
        self, tmp_path, awq_subject, gauntlet_engine
    ):
        path = tmp_path / "ck.jsonl"
        full = _run(awq_subject, gauntlet_engine, checkpoint=path)
        events = []
        replayed = _run(
            awq_subject,
            gauntlet_engine,
            checkpoint=path,
            on_cell=lambda r, was_replayed: events.append(was_replayed),
        )
        assert replayed.decision_digest() == full.decision_digest()
        assert events == [True] * 5

    def test_checkpoint_instance_passthrough(
        self, tmp_path, awq_subject, gauntlet_engine
    ):
        """A caller-built CellCheckpoint (the job manager's path) is honoured."""
        gauntlet = Gauntlet(
            engine=gauntlet_engine,
            config=GauntletConfig(seed=3, evaluate_quality=False, max_workers=1),
        )
        subjects = {"m": _bare(awq_subject)}
        fingerprint = gauntlet.grid_fingerprint_for(
            subjects, _attacks(), STRENGTHS, extra={"suspect_content": "abc"}
        )
        ckpt = CellCheckpoint(tmp_path / "ck.jsonl", fingerprint=fingerprint)
        report = gauntlet.run(subjects, _attacks(), STRENGTHS, checkpoint=ckpt)
        assert report.num_cells == 5
        reopened = CellCheckpoint(tmp_path / "ck.jsonl", fingerprint=fingerprint)
        assert len(reopened.load()) == 5

    def test_cancel_before_first_cell(self, awq_subject, gauntlet_engine):
        with pytest.raises(GauntletCancelled) as info:
            _run(awq_subject, gauntlet_engine, should_stop=lambda: True)
        assert info.value.completed == 0
