"""Streaming-gauntlet guarantees: digest equality and O(workers) memory.

The streaming pipeline's two promises are (1) its decisions are bit-identical
to the batched reference pipeline at any worker count, and (2) it never holds
more than ``max_workers`` attacked models alive at once.  The first is a
digest comparison; the second is proven with a weakref-instrumented attack
spec that counts the attacked models currently alive.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np
import pytest

from repro.engine import WatermarkEngine
from repro.robustness import (
    GauntletConfig,
    GauntletSubject,
    build_attack,
    run_gauntlet,
)
from repro.robustness.attacks import AttackSpec

GRID_STRENGTHS = {"overwrite": (0, 20, 40), "pruning": (0.0, 0.4)}


def _grid_attacks():
    return [build_attack("overwrite"), build_attack("pruning")]


class TestStreamingVsBatchedEquivalence:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_digests_identical_across_modes(
        self, awq_subject, int8_subject, gauntlet_engine, small_dataset, workers
    ):
        def attacks():
            return _grid_attacks() + [
                build_attack("rewatermark", calibration_corpus=small_dataset.calibration)
            ]
        strengths = {**GRID_STRENGTHS, "rewatermark": (0, 6)}
        subjects = {"awq": awq_subject, "int8": int8_subject}
        streaming = run_gauntlet(subjects, attacks(), strengths,
                                 engine=gauntlet_engine, max_workers=workers,
                                 seed=9, mode="streaming")
        batched = run_gauntlet(subjects, attacks(), strengths,
                               engine=gauntlet_engine, max_workers=workers,
                               seed=9, mode="batched")
        assert streaming.mode == "streaming" and batched.mode == "batched"
        assert streaming.decision_digest() == batched.decision_digest()
        for a, b in zip(streaming.cells, batched.cells):
            assert a.decision_fields() == b.decision_fields()
            assert a.false_claim_probability == b.false_claim_probability

    def test_streaming_is_the_default_mode(self, awq_subject, gauntlet_engine):
        report = run_gauntlet({"m": awq_subject}, [build_attack("none")],
                              engine=gauntlet_engine)
        assert report.mode == "streaming"
        assert report.to_dict()["mode"] == "streaming"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            GauntletConfig(mode="clairvoyant")

    def test_streaming_warm_rerun_hits_plan_cache(self, awq_subject):
        engine = WatermarkEngine()
        strengths = {"overwrite": (0, 20)}
        run_gauntlet({"m": awq_subject}, [build_attack("overwrite")], strengths,
                     engine=engine, mode="streaming")
        warm = run_gauntlet({"m": awq_subject}, [build_attack("overwrite")], strengths,
                            engine=engine, mode="streaming")
        assert warm.cache_misses == 0
        assert warm.cache_hits >= awq_subject.model.num_quantization_layers


class _TrackedOverwrite(AttackSpec):
    """Overwrite wrapper counting how many attacked models are alive.

    ``apply`` increments an alive counter and attaches a weakref finalizer
    that decrements it when the attacked model is garbage collected;
    ``peak`` therefore records the maximum number of attacked models that
    ever coexisted.  CPython's refcounting frees each model as soon as the
    pipeline drops its last reference, so the peak is deterministic.
    """

    name = "tracked-overwrite"
    strength_unit = "weights/layer"
    default_strengths = (10,)

    def __init__(self) -> None:
        self._inner = build_attack("overwrite")
        self._lock = threading.Lock()
        self.alive = 0
        self.peak = 0

    def _release(self) -> None:
        with self._lock:
            self.alive -= 1

    def apply(self, model, strength, rng):
        outcome = self._inner.apply(model, strength, rng)
        with self._lock:
            self.alive += 1
            self.peak = max(self.peak, self.alive)
        weakref.finalize(outcome.model, self._release)
        return outcome


class TestPeakAliveModels:
    """The O(workers × model size) claim, measured rather than asserted."""

    STRENGTHS = {"tracked-overwrite": (5, 10, 15, 20, 25, 30, 35, 40)}
    WORKERS = 2

    def _run(self, subject, engine, mode):
        spec = _TrackedOverwrite()
        bare = GauntletSubject(model=subject.model, key=subject.key)
        report = run_gauntlet({"m": bare}, [spec], self.STRENGTHS,
                              engine=engine, max_workers=self.WORKERS,
                              evaluate_quality=False, mode=mode)
        return spec, report

    def test_streaming_peak_is_bounded_by_workers(self, awq_subject, gauntlet_engine):
        spec, report = self._run(awq_subject, gauntlet_engine, "streaming")
        assert report.num_cells == 8
        # At most one attacked model per in-flight worker (+1 slack for a
        # result the pool is momentarily handing over).
        assert spec.peak <= self.WORKERS + 1
        assert spec.alive == 0

    def test_batched_peak_is_the_whole_grid(self, awq_subject, gauntlet_engine):
        """The contrast proving the instrument detects batching: the batched
        reference pipeline really does hold every attacked model at once."""
        spec, report = self._run(awq_subject, gauntlet_engine, "batched")
        assert spec.peak == report.num_cells == 8

    def test_streaming_and_batched_digests_agree_under_tracking(
        self, awq_subject, gauntlet_engine
    ):
        _, streaming = self._run(awq_subject, gauntlet_engine, "streaming")
        _, batched = self._run(awq_subject, gauntlet_engine, "batched")
        assert streaming.decision_digest() == batched.decision_digest()


class TestVerificationSession:
    """The engine-level incremental API underneath the streaming gauntlet."""

    def test_verify_matches_verify_fleet_evidence(self, awq_subject, int8_subject):
        engine = WatermarkEngine()
        suspects = {"a": awq_subject.model, "b": int8_subject.model}
        keys = {"ka": awq_subject.key, "kb": int8_subject.key}
        fleet = engine.verify_fleet(suspects, keys)
        session = engine.verification_session(keys=keys)
        for pair in fleet.pairs:
            incremental = session.verify(pair.suspect_id, suspects[pair.suspect_id], pair.key_id)
            assert incremental.wer_percent == pair.wer_percent
            assert incremental.matched_bits == pair.matched_bits
            assert incremental.total_bits == pair.total_bits
            assert incremental.owned == pair.owned
            assert incremental.false_claim_probability == pair.false_claim_probability

    def test_locations_reproduced_once_per_key(self, awq_subject):
        engine = WatermarkEngine()
        session = engine.verification_session(keys={"k": awq_subject.key})
        session.verify("s1", awq_subject.model, "k")
        first = session.cache_traffic()
        session.verify("s2", awq_subject.model, "k")
        second = session.cache_traffic()
        # The second suspect is a pure match pass: zero new cache traffic.
        assert second.misses == first.misses
        assert second.hits == first.hits

    def test_verify_once_retains_nothing_and_matches_registered_verify(
        self, awq_subject, int8_subject
    ):
        """One-shot keys (per-cell attacker keys) must neither register nor
        cache — that is what keeps attacker-heavy streaming grids O(workers)
        — while producing the exact evidence a registered verify would."""
        engine = WatermarkEngine()
        session = engine.verification_session(keys={"owner": awq_subject.key})
        once = session.verify_once(
            "s", awq_subject.model, int8_subject.key, "oneshot"
        )
        assert session.key_ids() == ["owner"]
        assert once.key_id == "oneshot"
        registered = engine.verification_session(
            keys={"k": int8_subject.key}
        ).verify("s", awq_subject.model, "k")
        assert once.wer_percent == registered.wer_percent
        assert once.matched_bits == registered.matched_bits
        assert once.owned == registered.owned
        assert once.false_claim_probability == registered.false_claim_probability

    def test_add_key_is_idempotent_for_same_object(self, awq_subject):
        engine = WatermarkEngine()
        session = engine.verification_session()
        session.add_key("k", awq_subject.key)
        session.add_key("k", awq_subject.key)
        assert session.key_ids() == ["k"]

    def test_rebinding_id_to_different_key_rejected(self, awq_subject, int8_subject):
        engine = WatermarkEngine()
        session = engine.verification_session(keys={"k": awq_subject.key})
        with pytest.raises(ValueError, match="already bound"):
            session.add_key("k", int8_subject.key)

    def test_unknown_key_id_rejected(self, awq_subject):
        engine = WatermarkEngine()
        session = engine.verification_session()
        with pytest.raises(KeyError, match="unknown key id"):
            session.verify("s", awq_subject.model, "nobody")

    def test_concurrent_cold_verifies_race_safely(self, awq_subject):
        """Two workers racing on a cold key must both get correct verdicts
        (and the key's plans must be reproduced exactly once)."""
        from concurrent.futures import ThreadPoolExecutor

        engine = WatermarkEngine()
        session = engine.verification_session(keys={"k": awq_subject.key})
        with ThreadPoolExecutor(max_workers=4) as pool:
            pairs = list(pool.map(
                lambda i: session.verify(f"s{i}", awq_subject.model, "k"), range(8)
            ))
        assert all(pair.wer_percent == 100.0 for pair in pairs)
        traffic = session.cache_traffic()
        layers = awq_subject.model.num_quantization_layers
        assert traffic.hits + traffic.misses == layers

    def test_report_wraps_pairs_with_cache_traffic(self, awq_subject):
        engine = WatermarkEngine()
        session = engine.verification_session(keys={"k": awq_subject.key})
        pair = session.verify("s", awq_subject.model, "k")
        report = session.report([pair])
        assert report.pairs == [pair]
        assert report.cache_hits + report.cache_misses > 0
        assert report.wall_clock_seconds > 0


def test_structured_prune_streams_through_full_grid(awq_subject, gauntlet_engine):
    """End-to-end: a reshaping attack flows through the streaming pipeline
    (quality via materialize-scatter, verification via strict_layout=False)."""
    report = run_gauntlet(
        {"m": awq_subject},
        [build_attack("structured-prune"), build_attack("scale-tamper")],
        strengths={"structured-prune": (0.0, 0.5), "scale-tamper": (0.3,)},
        engine=gauntlet_engine, max_workers=4, seed=2,
    )
    by_cell = {(c.attack, c.strength): c for c in report.cells}
    assert by_cell[("structured-prune", 0.0)].wer_percent == 100.0
    assert by_cell[("structured-prune", 0.5)].wer_percent < 50.0
    assert not by_cell[("structured-prune", 0.5)].owned
    assert by_cell[("scale-tamper", 0.3)].wer_percent == 100.0
    assert all(np.isfinite(c.perplexity) for c in report.cells)
