"""Tests for the gauntlet runner and the robustness report."""

import json

import numpy as np
import pytest

from repro.engine import WatermarkEngine
from repro.robustness import (
    GauntletConfig,
    GauntletSubject,
    build_attack,
    run_gauntlet,
)

GRID_STRENGTHS = {"overwrite": (0, 20, 40), "pruning": (0.0, 0.4)}


def _grid_attacks():
    return [build_attack("overwrite"), build_attack("pruning")]


class TestGauntletExecution:
    def test_grid_shape_and_order(self, awq_subject, gauntlet_engine):
        report = run_gauntlet(
            {"deploy": awq_subject}, _grid_attacks(), GRID_STRENGTHS,
            engine=gauntlet_engine, max_workers=2,
        )
        assert report.num_cells == 5
        assert [(c.attack, c.strength) for c in report.cells] == [
            ("overwrite", 0.0), ("overwrite", 20.0), ("overwrite", 40.0),
            ("pruning", 0.0), ("pruning", 0.4),
        ]
        assert report.attacks() == ["overwrite", "pruning"]
        assert report.model_ids() == ["deploy"]

    def test_zero_strength_cells_extract_fully(self, awq_subject, gauntlet_engine):
        report = run_gauntlet(
            {"deploy": awq_subject}, _grid_attacks(), GRID_STRENGTHS,
            engine=gauntlet_engine,
        )
        for cell in report.cells:
            if cell.strength == 0.0:
                assert cell.wer_percent == 100.0 and cell.owned

    def test_quality_measured_per_cell(self, awq_subject, gauntlet_engine):
        report = run_gauntlet(
            {"deploy": awq_subject}, [build_attack("none")], engine=gauntlet_engine,
        )
        cell = report.cells[0]
        assert cell.perplexity is not None and cell.perplexity > 1.0
        assert cell.zero_shot_accuracy is not None

    def test_subject_model_never_mutated(self, awq_subject, gauntlet_engine):
        snapshot = awq_subject.model.integer_weight_snapshot()
        run_gauntlet(
            {"deploy": awq_subject}, _grid_attacks(), GRID_STRENGTHS,
            engine=gauntlet_engine, max_workers=4,
        )
        for name, weights in snapshot.items():
            np.testing.assert_array_equal(
                weights, awq_subject.model.get_layer(name).weight_int
            )

    def test_rewatermark_cells_report_attacker_wer(
        self, awq_subject, gauntlet_engine, small_dataset
    ):
        report = run_gauntlet(
            {"deploy": awq_subject},
            [build_attack("rewatermark", calibration_corpus=small_dataset.calibration)],
            strengths={"rewatermark": (0, 6)},
            engine=gauntlet_engine,
        )
        baseline, attacked = report.cells
        assert baseline.attacker_wer_percent is None
        # The adversary extracts his own fresh signature near-perfectly.
        assert attacked.attacker_wer_percent > 90.0
        # The owner's watermark survives a light re-watermarking.
        assert attacked.wer_percent > 80.0

    def test_single_subject_shorthand(self, awq_subject, gauntlet_engine):
        report = run_gauntlet(
            awq_subject, [build_attack("none")], engine=gauntlet_engine,
        )
        assert report.model_ids() == ["subject-0"]


class TestGauntletDeterminism:
    def test_reports_identical_across_worker_counts(self, awq_subject, int8_subject,
                                                    gauntlet_engine, small_dataset):
        attacks = _grid_attacks() + [
            build_attack("rewatermark", calibration_corpus=small_dataset.calibration)
        ]
        strengths = {**GRID_STRENGTHS, "rewatermark": (0, 6)}
        subjects = {"awq": awq_subject, "int8": int8_subject}
        serial = run_gauntlet(subjects, attacks, strengths,
                              engine=gauntlet_engine, max_workers=1, seed=9)
        parallel = run_gauntlet(subjects, attacks, strengths,
                                engine=gauntlet_engine, max_workers=4, seed=9)
        assert serial.decision_digest() == parallel.decision_digest()
        for a, b in zip(serial.cells, parallel.cells):
            assert a.decision_fields() == b.decision_fields()
            assert a.false_claim_probability == b.false_claim_probability

    def test_seed_changes_attack_randomness(self, awq_subject, gauntlet_engine):
        a = run_gauntlet({"m": awq_subject}, [build_attack("overwrite")],
                         {"overwrite": (30,)}, engine=gauntlet_engine, seed=1)
        b = run_gauntlet({"m": awq_subject}, [build_attack("overwrite")],
                         {"overwrite": (30,)}, engine=gauntlet_engine, seed=2)
        assert a.decision_digest() != b.decision_digest()

    def test_warm_rerun_hits_plan_cache(self, awq_subject):
        engine = WatermarkEngine()
        attacks = [build_attack("overwrite")]
        strengths = {"overwrite": (0, 20)}
        run_gauntlet({"m": awq_subject}, attacks, strengths, engine=engine)
        warm = run_gauntlet({"m": awq_subject}, attacks, strengths, engine=engine)
        # The owner key's location plans are reproduced from cache: one hit
        # per layer, zero rescoring, no matter how many sweep points ran.
        assert warm.cache_misses == 0
        assert warm.cache_hits >= awq_subject.model.num_quantization_layers


class TestGauntletValidation:
    def test_empty_attacks_rejected(self, awq_subject, gauntlet_engine):
        with pytest.raises(ValueError, match="at least one attack"):
            run_gauntlet({"m": awq_subject}, [], engine=gauntlet_engine)

    def test_empty_subjects_rejected(self, gauntlet_engine):
        with pytest.raises(ValueError, match="at least one subject"):
            run_gauntlet({}, _grid_attacks(), engine=gauntlet_engine)

    def test_duplicate_attacks_rejected(self, awq_subject, gauntlet_engine):
        with pytest.raises(ValueError, match="duplicate"):
            run_gauntlet({"m": awq_subject},
                         [build_attack("pruning"), build_attack("pruning")],
                         engine=gauntlet_engine)

    def test_unknown_strength_key_rejected(self, awq_subject, gauntlet_engine):
        with pytest.raises(ValueError, match="not in the grid"):
            run_gauntlet({"m": awq_subject}, [build_attack("pruning")],
                         {"overwrite": (1,)}, engine=gauntlet_engine)

    def test_quality_requires_harness(self, awq_subject, gauntlet_engine):
        bare = GauntletSubject(model=awq_subject.model, key=awq_subject.key)
        with pytest.raises(ValueError, match="no harness"):
            run_gauntlet({"m": bare}, [build_attack("none")], engine=gauntlet_engine)

    def test_quality_free_run_without_harness(self, awq_subject, gauntlet_engine):
        bare = GauntletSubject(model=awq_subject.model, key=awq_subject.key)
        report = run_gauntlet({"m": bare}, [build_attack("none")],
                              engine=gauntlet_engine, evaluate_quality=False)
        assert report.cells[0].perplexity is None
        assert report.cells[0].wer_percent == 100.0

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            GauntletConfig(max_workers=0)

    def test_colliding_cell_ids_rejected(self, awq_subject, gauntlet_engine):
        # Duplicate strengths (or values differing only past the %g
        # rendering) would alias two cells onto one suspect id.
        with pytest.raises(ValueError, match="collide"):
            run_gauntlet({"m": awq_subject}, [build_attack("pruning")],
                         {"pruning": (0.3, 0.3)}, engine=gauntlet_engine)
        with pytest.raises(ValueError, match="collide"):
            run_gauntlet({"m": awq_subject}, [build_attack("pruning")],
                         {"pruning": (0.3, 0.3000000001)}, engine=gauntlet_engine)


class TestMultiOwnerGauntlet:
    """Grids over subjects carrying several co-resident watermarks."""

    def test_baseline_cells_verify_every_owner_at_full_wer(
        self, multi_owner_subject, gauntlet_engine
    ):
        report = run_gauntlet(
            {"deploy": multi_owner_subject}, _grid_attacks(), GRID_STRENGTHS,
            engine=gauntlet_engine,
        )
        for cell in report.cells:
            assert set(cell.co_owner_wer_percent) == {"globex"}
            if cell.strength == 0.0:
                assert cell.wer_percent == 100.0 and cell.owned
                assert cell.co_owner_wer_percent["globex"] == 100.0
                assert cell.co_owner_owned["globex"] is True

    def test_modes_and_worker_counts_agree_on_co_owner_evidence(
        self, multi_owner_subject, gauntlet_engine
    ):
        kwargs = dict(engine=gauntlet_engine, seed=5)
        streaming = run_gauntlet({"m": multi_owner_subject}, _grid_attacks(),
                                 GRID_STRENGTHS, max_workers=4, mode="streaming", **kwargs)
        batched = run_gauntlet({"m": multi_owner_subject}, _grid_attacks(),
                               GRID_STRENGTHS, max_workers=1, mode="batched", **kwargs)
        assert streaming.decision_digest() == batched.decision_digest()
        for a, b in zip(streaming.cells, batched.cells):
            assert a.co_owner_wer_percent == b.co_owner_wer_percent
            assert a.co_owner_owned == b.co_owner_owned

    def test_min_wer_by_owner_covers_all_owners(self, multi_owner_subject, gauntlet_engine):
        report = run_gauntlet(
            {"deploy": multi_owner_subject}, _grid_attacks(), GRID_STRENGTHS,
            engine=gauntlet_engine,
        )
        worst = report.min_wer_by_owner()
        assert set(worst) == {"<primary>", "globex"}
        assert worst["globex"] == min(
            c.co_owner_wer_percent["globex"] for c in report.cells
        )

    def test_co_owner_fields_survive_json(self, multi_owner_subject, gauntlet_engine):
        report = run_gauntlet(
            {"deploy": multi_owner_subject}, [build_attack("none")],
            engine=gauntlet_engine,
        )
        payload = json.loads(report.to_json())
        assert payload["cells"][0]["co_owner_wer_percent"] == {"globex": 100.0}
        assert payload["cells"][0]["co_owner_owned"] == {"globex": True}

    def test_single_owner_digest_unchanged_by_the_co_owner_fields(
        self, awq_subject, gauntlet_engine
    ):
        # decision_fields only grows for multi-owner cells, so single-owner
        # digests (pinned by the versioned benchmark gates) stay stable.
        report = run_gauntlet(
            {"deploy": awq_subject}, [build_attack("none")], engine=gauntlet_engine,
        )
        assert report.cells[0].co_owner_wer_percent == {}
        assert len(report.cells[0].decision_fields()) == 8


class TestTrueSoupInGauntlet:
    def test_soup_cells_report_both_owners_wer(
        self, awq_subject, quantized_awq4, activation_stats, gauntlet_engine
    ):
        report = run_gauntlet(
            {"deploy": awq_subject},
            [build_attack("soup", base_model=quantized_awq4,
                          base_activations=activation_stats)],
            strengths={"soup": (0.0, 0.5, 1.0)},
            engine=gauntlet_engine, seed=3,
        )
        by_strength = {cell.strength: cell for cell in report.cells}
        # t=0: untouched deployment — owner A alone, at 100%.
        assert by_strength[0.0].wer_percent == 100.0
        assert by_strength[0.0].attacker_wer_percent is None
        # t=0.5: both owners present, each near the soup share.
        half = by_strength[0.5]
        assert 25.0 < half.wer_percent < 75.0
        assert 25.0 < half.attacker_wer_percent < 75.0
        # t=1: the soup *is* clone B.
        full = by_strength[1.0]
        assert full.attacker_wer_percent == 100.0
        assert full.wer_percent < 30.0
        assert full.info["true_two_clone"] is True


class TestRobustnessReport:
    @pytest.fixture(scope="class")
    def report(self, awq_subject, gauntlet_engine):
        return run_gauntlet(
            {"deploy": awq_subject}, _grid_attacks(), GRID_STRENGTHS,
            engine=gauntlet_engine, max_workers=2, seed=4,
        )

    def test_min_wer_by_attack(self, report):
        worst = report.min_wer_by_attack()
        assert set(worst) == {"overwrite", "pruning"}
        for attack, wer in worst.items():
            assert wer == min(c.wer_percent for c in report.cells_for(attack=attack))

    def test_frontier_sorted_by_descending_wer(self, report):
        frontier = report.frontier()
        assert len(frontier) == report.num_cells
        wers = [entry["wer_percent"] for entry in frontier]
        assert wers == sorted(wers, reverse=True)

    def test_render_and_table(self, report):
        rendered = report.render()
        assert "Robustness gauntlet" in rendered
        assert "min WER under overwrite" in rendered
        assert "deploy" in rendered

    def test_to_dict_round_trips_through_json(self, report):
        payload = json.loads(report.to_json())
        assert payload["num_cells"] == report.num_cells
        assert payload["decision_digest"] == report.decision_digest()
        assert len(payload["cells"]) == report.num_cells
        assert payload["min_wer_by_attack"] == report.min_wer_by_attack()

    def test_summary_mentions_worst_attack(self, report):
        worst = report.min_wer_by_attack()
        worst_attack = min(worst, key=worst.get)
        assert worst_attack in report.summary()
