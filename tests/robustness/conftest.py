"""Robustness-suite fixtures.

On top of the session substrate from ``tests/conftest.py`` this adds an
LLM.int8() quantization with *guaranteed* outlier columns (the INT8
attack-effectiveness regression tests need full-precision columns to exist)
and a watermarked subject pair shared across the gauntlet tests.
"""

from __future__ import annotations

import pytest

from repro.core.config import EmMarkConfig
from repro.engine import WatermarkEngine
from repro.eval.harness import EvaluationHarness
from repro.quant.api import quantize_model
from repro.robustness import GauntletSubject


@pytest.fixture(scope="session")
def quantized_llm_int8(trained_model, activation_stats):
    """LLM.int8() quantization with at least one outlier column per layer."""
    quantized = quantize_model(
        trained_model,
        "llm_int8",
        bits=8,
        activations=activation_stats,
        outlier_threshold=1.05,
        max_outlier_fraction=0.25,
    )
    layers_with_outliers = [
        layer for layer in quantized.iter_layers() if layer.outlier_columns is not None
    ]
    assert layers_with_outliers, "fixture must produce outlier columns"
    return quantized


@pytest.fixture(scope="session")
def tiny_harness(small_dataset):
    """A small, fast evaluation harness for gauntlet quality measurements."""
    return EvaluationHarness(small_dataset, num_task_examples=4, max_sequences=8)


@pytest.fixture(scope="session")
def gauntlet_engine():
    """A private engine so cache-traffic assertions see only gauntlet work."""
    return WatermarkEngine()


@pytest.fixture(scope="session")
def awq_subject(quantized_awq4, activation_stats, tiny_harness, gauntlet_engine):
    """A watermarked AWQ INT4 subject with harness, ready for the gauntlet."""
    config = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8)
    watermarked, key, _ = gauntlet_engine.insert(
        quantized_awq4, activation_stats, config=config
    )
    return GauntletSubject(model=watermarked, key=key, harness=tiny_harness)


@pytest.fixture(scope="session")
def int8_subject(quantized_llm_int8, activation_stats, tiny_harness, gauntlet_engine):
    """A watermarked LLM.int8() subject (outlier columns present)."""
    config = EmMarkConfig.scaled_for_model(quantized_llm_int8, bits_per_layer=8)
    watermarked, key, _ = gauntlet_engine.insert(
        quantized_llm_int8, activation_stats, config=config
    )
    return GauntletSubject(model=watermarked, key=key, harness=tiny_harness)


@pytest.fixture(scope="session")
def multi_owner_subject(quantized_awq4, activation_stats, tiny_harness, gauntlet_engine):
    """One AWQ model carrying two co-resident owners ('acme' and 'globex')."""
    from dataclasses import replace

    base = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8)
    result = gauntlet_engine.insert_multi(
        quantized_awq4,
        activation_stats,
        {
            "acme": base,
            "globex": replace(base, seed=base.seed + 11, signature_seed=base.signature_seed + 11),
        },
    )
    return GauntletSubject(
        model=result.model,
        key=result.key_for("acme"),
        harness=tiny_harness,
        co_keys={"globex": result.key_for("globex")},
    )
