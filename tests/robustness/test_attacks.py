"""Tests for the attack registry and the LLM.int8() attack-effectiveness fix.

The regression class here is the one the gauntlet was built to close:
attacks that write into LLM.int8() outlier columns change integer values
that ``effective_weight()`` overrides with full precision, so the deployed
model — and the watermark, which never lives there — would see a weaker
attack than reported.
"""

import numpy as np
import pytest

from repro.attacks.overwrite import OverwriteAttackConfig, parameter_overwrite_attack
from repro.robustness import (
    ATTACK_REGISTRY,
    AttackOutcome,
    available_attacks,
    build_attack,
    corpus_free_attacks,
    register_attack,
)
from repro.robustness.attacks import AttackSpec
from repro.utils.rng import new_rng


class TestRegistry:
    def test_builtin_attacks_registered(self):
        assert {"none", "overwrite", "rewatermark", "pruning",
                "lora-finetune", "requantize"} <= set(available_attacks())

    def test_corpus_free_subset(self):
        free = set(corpus_free_attacks())
        assert "rewatermark" not in free and "lora-finetune" not in free
        assert {"none", "overwrite", "pruning", "requantize"} <= free

    def test_unknown_attack_raises(self):
        with pytest.raises(KeyError, match="unknown attack"):
            build_attack("weight-exorcism")

    def test_corpus_required(self):
        with pytest.raises(ValueError, match="calibration corpus"):
            build_attack("rewatermark")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_attack
            class Duplicate(AttackSpec):
                name = "overwrite"

    def test_custom_attack_pluggable(self):
        @register_attack
        class NoiseAttack(AttackSpec):
            name = "test-noise"
            strength_unit = "levels"
            default_strengths = (1,)

            def apply(self, model, strength, rng):
                return AttackOutcome(model=model.clone())

        try:
            spec = build_attack("test-noise")
            assert spec.describe()["name"] == "test-noise"
        finally:
            del ATTACK_REGISTRY["test-noise"]

    def test_describe_is_jsonable(self):
        import json

        for name in available_attacks():
            cls = ATTACK_REGISTRY[name]
            spec = cls.__new__(cls)  # describe() only reads class attributes
            json.dumps(AttackSpec.describe(spec))


class TestSpecBehaviour:
    def test_identity_returns_equal_copy(self, quantized_awq4):
        outcome = build_attack("none").apply(quantized_awq4, 0, new_rng(0))
        assert outcome.model is not quantized_awq4
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                outcome.model.get_layer(name).weight_int,
                quantized_awq4.get_layer(name).weight_int,
            )

    def test_overwrite_spec_deterministic_per_rng(self, quantized_awq4):
        spec = build_attack("overwrite")
        a = spec.apply(quantized_awq4, 30, new_rng(5, "cell")).model
        b = spec.apply(quantized_awq4, 30, new_rng(5, "cell")).model
        c = spec.apply(quantized_awq4, 30, new_rng(6, "cell")).model
        name = quantized_awq4.layer_names()[0]
        np.testing.assert_array_equal(a.get_layer(name).weight_int,
                                      b.get_layer(name).weight_int)
        assert not np.array_equal(a.get_layer(name).weight_int,
                                  c.get_layer(name).weight_int)

    def test_requantize_preserves_layout(self, quantized_awq4):
        outcome = build_attack("requantize").apply(quantized_awq4, 8, new_rng(0))
        assert outcome.model.layer_names() == quantized_awq4.layer_names()
        assert outcome.model.bits == 8
        assert outcome.info["requantized_bits"] == 8

    def test_rewatermark_spec_zero_strength_is_identity(self, quantized_awq4, small_dataset):
        spec = build_attack("rewatermark", calibration_corpus=small_dataset.calibration)
        outcome = spec.apply(quantized_awq4, 0, new_rng(0))
        assert outcome.attacker_key is None
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                outcome.model.get_layer(name).weight_int,
                quantized_awq4.get_layer(name).weight_int,
            )


class TestLLMInt8AttackEffectiveness:
    """Attack strength must reflect *effective* weights on LLM.int8() models."""

    def test_overwrite_avoids_outlier_columns(self, quantized_llm_int8):
        attacked = parameter_overwrite_attack(
            quantized_llm_int8, OverwriteAttackConfig(weights_per_layer=50, seed=11)
        )
        for name in quantized_llm_int8.layer_names():
            layer = quantized_llm_int8.get_layer(name)
            delta = attacked.get_layer(name).weight_int - layer.weight_int
            if layer.outlier_columns is not None:
                assert not np.any(delta[:, layer.outlier_columns]), (
                    f"attack wrote into full-precision outlier columns of {name}"
                )

    def test_every_integer_hit_lands_in_effective_weights(self, quantized_llm_int8):
        """No silent no-ops: integer changes == effective-weight changes."""
        attacked = parameter_overwrite_attack(
            quantized_llm_int8, OverwriteAttackConfig(weights_per_layer=60, seed=3)
        )
        total_int_changes = 0
        for name in quantized_llm_int8.layer_names():
            before = quantized_llm_int8.get_layer(name)
            after = attacked.get_layer(name)
            int_changed = before.weight_int != after.weight_int
            effective_changed = before.effective_weight() != after.effective_weight()
            np.testing.assert_array_equal(int_changed, effective_changed)
            total_int_changes += int(np.count_nonzero(int_changed))
        assert total_int_changes > 0

    def test_full_strength_touches_every_quantized_position(self, quantized_llm_int8):
        """Saturating the attack rewrites the whole quantized mask — no more."""
        biggest = max(layer.num_weights for layer in quantized_llm_int8.iter_layers())
        attacked = parameter_overwrite_attack(
            quantized_llm_int8,
            OverwriteAttackConfig(weights_per_layer=biggest, style="increment", seed=1),
        )
        for name in quantized_llm_int8.layer_names():
            before = quantized_llm_int8.get_layer(name)
            after = attacked.get_layer(name)
            delta = after.weight_int - before.weight_int
            mask = before.quantized_mask()
            assert not np.any(delta[~mask])
            # ±1 increments only miss where clipping pinned a saturated level.
            unchanged_quantized = np.count_nonzero((delta == 0) & mask)
            saturated = np.count_nonzero(before.saturated_mask() & mask)
            assert unchanged_quantized <= saturated

    def test_watermarked_int8_wer_drops_under_saturating_attack(
        self, int8_subject, gauntlet_engine
    ):
        """The headline regression: on INT8 models the attack must actually
        reach the watermark (pre-fix, hits in outlier columns were wasted)."""
        biggest = max(layer.num_weights for layer in int8_subject.model.iter_layers())
        attacked = parameter_overwrite_attack(
            int8_subject.model, OverwriteAttackConfig(weights_per_layer=biggest, seed=2)
        )
        wer = gauntlet_engine.extract(attacked, int8_subject.key, strict_layout=False).wer_percent
        # A full-strength resample leaves each bit only a chance match.
        assert wer < 50.0
