"""Tests for the attack registry and the LLM.int8() attack-effectiveness fix.

The regression class here is the one the gauntlet was built to close:
attacks that write into LLM.int8() outlier columns change integer values
that ``effective_weight()`` overrides with full precision, so the deployed
model — and the watermark, which never lives there — would see a weaker
attack than reported.
"""

import numpy as np
import pytest

from repro.attacks.overwrite import OverwriteAttackConfig, parameter_overwrite_attack
from repro.robustness import (
    ATTACK_REGISTRY,
    AttackOutcome,
    available_attacks,
    build_attack,
    corpus_free_attacks,
    register_attack,
)
from repro.robustness.attacks import AttackSpec
from repro.utils.rng import new_rng


class TestRegistry:
    def test_builtin_attacks_registered(self):
        assert {"none", "overwrite", "rewatermark", "pruning",
                "lora-finetune", "requantize", "gptq-requantize",
                "scale-tamper", "outlier-rewrite", "structured-prune",
                "adaptive-overwrite", "adaptive-oracle", "soup"} <= set(available_attacks())

    def test_registry_holds_eleven_plus_attacks(self):
        # The adversary-expansion acceptance bar.
        assert len(available_attacks()) >= 11

    def test_corpus_free_subset(self):
        free = set(corpus_free_attacks())
        for needs_resources in ("rewatermark", "lora-finetune", "gptq-requantize",
                                "adaptive-overwrite", "adaptive-oracle", "soup"):
            assert needs_resources not in free
        assert {"none", "overwrite", "pruning", "requantize",
                "scale-tamper", "outlier-rewrite", "structured-prune"} <= free

    def test_base_model_required_for_soup(self):
        # The true two-clone soup needs the virgin base, not a corpus.
        with pytest.raises(ValueError, match="virgin base model"):
            build_attack("soup")
        with pytest.raises(ValueError, match="virgin base model"):
            build_attack("soup", calibration_corpus=object())

    def test_unknown_attack_raises(self):
        with pytest.raises(KeyError, match="unknown attack"):
            build_attack("weight-exorcism")

    def test_corpus_required(self):
        with pytest.raises(ValueError, match="calibration corpus"):
            build_attack("rewatermark")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_attack
            class Duplicate(AttackSpec):
                name = "overwrite"

    def test_custom_attack_pluggable(self):
        @register_attack
        class NoiseAttack(AttackSpec):
            name = "test-noise"
            strength_unit = "levels"
            default_strengths = (1,)

            def apply(self, model, strength, rng):
                return AttackOutcome(model=model.clone())

        try:
            spec = build_attack("test-noise")
            assert spec.describe()["name"] == "test-noise"
        finally:
            del ATTACK_REGISTRY["test-noise"]

    def test_describe_is_jsonable(self):
        import json

        for name in available_attacks():
            cls = ATTACK_REGISTRY[name]
            spec = cls.__new__(cls)  # describe() only reads class attributes
            json.dumps(AttackSpec.describe(spec))


class TestSpecBehaviour:
    def test_identity_returns_equal_copy(self, quantized_awq4):
        outcome = build_attack("none").apply(quantized_awq4, 0, new_rng(0))
        assert outcome.model is not quantized_awq4
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                outcome.model.get_layer(name).weight_int,
                quantized_awq4.get_layer(name).weight_int,
            )

    def test_overwrite_spec_deterministic_per_rng(self, quantized_awq4):
        spec = build_attack("overwrite")
        a = spec.apply(quantized_awq4, 30, new_rng(5, "cell")).model
        b = spec.apply(quantized_awq4, 30, new_rng(5, "cell")).model
        c = spec.apply(quantized_awq4, 30, new_rng(6, "cell")).model
        name = quantized_awq4.layer_names()[0]
        np.testing.assert_array_equal(a.get_layer(name).weight_int,
                                      b.get_layer(name).weight_int)
        assert not np.array_equal(a.get_layer(name).weight_int,
                                  c.get_layer(name).weight_int)

    def test_requantize_preserves_layout(self, quantized_awq4):
        outcome = build_attack("requantize").apply(quantized_awq4, 8, new_rng(0))
        assert outcome.model.layer_names() == quantized_awq4.layer_names()
        assert outcome.model.bits == 8
        assert outcome.info["requantized_bits"] == 8

    def test_rewatermark_spec_zero_strength_is_identity(self, quantized_awq4, small_dataset):
        spec = build_attack("rewatermark", calibration_corpus=small_dataset.calibration)
        outcome = spec.apply(quantized_awq4, 0, new_rng(0))
        assert outcome.attacker_key is None
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                outcome.model.get_layer(name).weight_int,
                quantized_awq4.get_layer(name).weight_int,
            )


class TestLLMInt8AttackEffectiveness:
    """Attack strength must reflect *effective* weights on LLM.int8() models."""

    def test_overwrite_avoids_outlier_columns(self, quantized_llm_int8):
        attacked = parameter_overwrite_attack(
            quantized_llm_int8, OverwriteAttackConfig(weights_per_layer=50, seed=11)
        )
        for name in quantized_llm_int8.layer_names():
            layer = quantized_llm_int8.get_layer(name)
            delta = attacked.get_layer(name).weight_int - layer.weight_int
            if layer.outlier_columns is not None:
                assert not np.any(delta[:, layer.outlier_columns]), (
                    f"attack wrote into full-precision outlier columns of {name}"
                )

    def test_every_integer_hit_lands_in_effective_weights(self, quantized_llm_int8):
        """No silent no-ops: integer changes == effective-weight changes."""
        attacked = parameter_overwrite_attack(
            quantized_llm_int8, OverwriteAttackConfig(weights_per_layer=60, seed=3)
        )
        total_int_changes = 0
        for name in quantized_llm_int8.layer_names():
            before = quantized_llm_int8.get_layer(name)
            after = attacked.get_layer(name)
            int_changed = before.weight_int != after.weight_int
            effective_changed = before.effective_weight() != after.effective_weight()
            np.testing.assert_array_equal(int_changed, effective_changed)
            total_int_changes += int(np.count_nonzero(int_changed))
        assert total_int_changes > 0

    def test_full_strength_touches_every_quantized_position(self, quantized_llm_int8):
        """Saturating the attack rewrites the whole quantized mask — no more."""
        biggest = max(layer.num_weights for layer in quantized_llm_int8.iter_layers())
        attacked = parameter_overwrite_attack(
            quantized_llm_int8,
            OverwriteAttackConfig(weights_per_layer=biggest, style="increment", seed=1),
        )
        for name in quantized_llm_int8.layer_names():
            before = quantized_llm_int8.get_layer(name)
            after = attacked.get_layer(name)
            delta = after.weight_int - before.weight_int
            mask = before.quantized_mask()
            assert not np.any(delta[~mask])
            # ±1 increments only miss where clipping pinned a saturated level.
            unchanged_quantized = np.count_nonzero((delta == 0) & mask)
            saturated = np.count_nonzero(before.saturated_mask() & mask)
            assert unchanged_quantized <= saturated

    def test_watermarked_int8_wer_drops_under_saturating_attack(
        self, int8_subject, gauntlet_engine
    ):
        """The headline regression: on INT8 models the attack must actually
        reach the watermark (pre-fix, hits in outlier columns were wasted)."""
        biggest = max(layer.num_weights for layer in int8_subject.model.iter_layers())
        attacked = parameter_overwrite_attack(
            int8_subject.model, OverwriteAttackConfig(weights_per_layer=biggest, seed=2)
        )
        wer = gauntlet_engine.extract(attacked, int8_subject.key, strict_layout=False).wer_percent
        # A full-strength resample leaves each bit only a chance match.
        assert wer < 50.0


class TestScaleTamperingAttack:
    """Float-domain tampering must never reach the integer-domain watermark."""

    def test_zero_strength_is_identity(self, quantized_awq4):
        outcome = build_attack("scale-tamper").apply(quantized_awq4, 0.0, new_rng(0))
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                outcome.model.get_layer(name).scale,
                quantized_awq4.get_layer(name).scale,
            )

    def test_perturbs_scales_and_smoothing_but_not_weights(self, quantized_awq4):
        outcome = build_attack("scale-tamper").apply(quantized_awq4, 0.2, new_rng(1))
        assert outcome.info["weight_int_untouched"] is True
        assert outcome.info["layers_with_smoothing"] > 0
        for name in quantized_awq4.layer_names():
            before = quantized_awq4.get_layer(name)
            after = outcome.model.get_layer(name)
            np.testing.assert_array_equal(before.weight_int, after.weight_int)
            assert not np.array_equal(before.scale, after.scale)
            assert np.all(after.scale > 0)
            if before.input_smoothing is not None:
                assert not np.array_equal(before.input_smoothing, after.input_smoothing)

    def test_wer_stays_perfect_under_heavy_tampering(self, awq_subject, gauntlet_engine):
        outcome = build_attack("scale-tamper").apply(awq_subject.model, 0.5, new_rng(7))
        result = gauntlet_engine.extract(outcome.model, awq_subject.key, strict_layout=False)
        assert result.wer_percent == 100.0

    def test_quality_actually_damaged(self, awq_subject):
        outcome = build_attack("scale-tamper").apply(awq_subject.model, 0.5, new_rng(7))
        baseline = awq_subject.harness.evaluate(awq_subject.model)
        tampered = awq_subject.harness.evaluate(outcome.model)
        assert tampered.perplexity > baseline.perplexity


class TestOutlierColumnAttack:
    """Rewriting LLM.int8() full-precision columns: quality-only damage."""

    def test_rewrites_outlier_entries_only(self, quantized_llm_int8):
        outcome = build_attack("outlier-rewrite").apply(quantized_llm_int8, 1.0, new_rng(2))
        assert outcome.info["entries_rewritten"] > 0
        for name in quantized_llm_int8.layer_names():
            before = quantized_llm_int8.get_layer(name)
            after = outcome.model.get_layer(name)
            np.testing.assert_array_equal(before.weight_int, after.weight_int)
            np.testing.assert_array_equal(before.scale, after.scale)
            if before.outlier_weight is not None and before.outlier_weight.size:
                assert not np.array_equal(before.outlier_weight, after.outlier_weight)
                # The damage lands exactly in the outlier columns of the
                # effective weights — nowhere else.
                changed = before.effective_weight() != after.effective_weight()
                outside = np.ones(before.in_features, dtype=bool)
                outside[before.outlier_columns] = False
                assert not np.any(changed[:, outside])

    def test_noop_on_backends_without_outliers(self, quantized_awq4):
        outcome = build_attack("outlier-rewrite").apply(quantized_awq4, 1.0, new_rng(2))
        assert outcome.info["entries_rewritten"] == 0
        assert outcome.info["layers_with_outliers"] == 0
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                outcome.model.get_layer(name).weight_int,
                quantized_awq4.get_layer(name).weight_int,
            )

    def test_watermark_untouched_at_full_strength(self, int8_subject, gauntlet_engine):
        outcome = build_attack("outlier-rewrite").apply(int8_subject.model, 1.0, new_rng(3))
        result = gauntlet_engine.extract(outcome.model, int8_subject.key, strict_layout=False)
        assert result.wer_percent == 100.0


class TestStructuredPruningAttack:
    """Head/row removal: real shape changes, tolerated by strict_layout=False."""

    def test_zero_strength_is_identity(self, quantized_awq4):
        outcome = build_attack("structured-prune").apply(quantized_awq4, 0.0, new_rng(0))
        assert outcome.model.layer_names() == quantized_awq4.layer_names()
        assert "pruned_rows" not in outcome.model.metadata

    def test_rows_removed_from_qkv_and_fc_in_only(self, quantized_awq4):
        outcome = build_attack("structured-prune").apply(quantized_awq4, 0.5, new_rng(4))
        pruned = outcome.model.metadata["pruned_rows"]
        for name in quantized_awq4.layer_names():
            before = quantized_awq4.get_layer(name)
            after = outcome.model.get_layer(name)
            if name.endswith((".attn.q_proj", ".attn.k_proj", ".attn.v_proj", ".mlp.fc_in")):
                assert after.out_features < before.out_features
                assert name in pruned
                assert pruned[name]["out_features"] == before.out_features
                kept = np.asarray(pruned[name]["kept_rows"])
                np.testing.assert_array_equal(after.weight_int, before.weight_int[kept])
            else:
                assert after.out_features == before.out_features
                np.testing.assert_array_equal(after.weight_int, before.weight_int)

    def test_same_heads_dropped_across_qkv_of_a_block(self, quantized_awq4):
        outcome = build_attack("structured-prune").apply(quantized_awq4, 0.5, new_rng(4))
        pruned = outcome.model.metadata["pruned_rows"]
        for block in range(quantized_awq4.config.n_layers):
            kept = {
                proj: tuple(pruned[f"blocks.{block}.attn.{proj}"]["kept_rows"])
                for proj in ("q_proj", "k_proj", "v_proj")
            }
            assert kept["q_proj"] == kept["k_proj"] == kept["v_proj"]

    def test_materialize_and_quality_eval_still_work(self, awq_subject):
        outcome = build_attack("structured-prune").apply(awq_subject.model, 0.5, new_rng(5))
        quality = awq_subject.harness.evaluate(outcome.model)
        baseline = awq_subject.harness.evaluate(awq_subject.model)
        # Deleting half of every block must hurt (the attack's cost story).
        assert quality.perplexity > baseline.perplexity

    def test_extraction_tolerates_reshaped_layers(self, awq_subject, gauntlet_engine):
        outcome = build_attack("structured-prune").apply(awq_subject.model, 0.25, new_rng(6))
        result = gauntlet_engine.extract(outcome.model, awq_subject.key, strict_layout=False)
        # Reshaped layers contribute 0; every untouched layer keeps its bits.
        assert 0.0 < result.wer_percent < 100.0
        reshaped = set(outcome.model.metadata["pruned_rows"])
        assert reshaped
        for name, wer in result.per_layer_wer.items():
            assert wer == (0.0 if name in reshaped else 100.0)


class TestAdaptiveOverwriteAttack:
    def test_zero_strength_is_identity(self, quantized_awq4, small_dataset):
        spec = build_attack("adaptive-overwrite", calibration_corpus=small_dataset.calibration)
        outcome = spec.apply(quantized_awq4, 0, new_rng(0))
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                outcome.model.get_layer(name).weight_int,
                quantized_awq4.get_layer(name).weight_int,
            )

    def test_deterministic_per_rng(self, quantized_awq4, small_dataset):
        spec = build_attack("adaptive-overwrite", calibration_corpus=small_dataset.calibration)
        a = spec.apply(quantized_awq4, 40, new_rng(5, "cell")).model
        b = spec.apply(quantized_awq4, 40, new_rng(5, "cell")).model
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                a.get_layer(name).weight_int, b.get_layer(name).weight_int
            )

    def test_overwrites_concentrate_inside_union_pool(self, quantized_awq4, small_dataset):
        spec = build_attack("adaptive-overwrite", calibration_corpus=small_dataset.calibration)
        outcome = spec.apply(quantized_awq4, 40, new_rng(8))
        assert 0.0 < outcome.info["mean_union_pool_fraction"] < 1.0
        assert outcome.info["positions_overwritten"] > 0
        for name in quantized_awq4.layer_names():
            changed = np.count_nonzero(
                outcome.model.get_layer(name).weight_int
                != quantized_awq4.get_layer(name).weight_int
            )
            # Resampling can land on the current value, so <= strength.
            assert changed <= 40

    def test_describe_reports_guesses(self, small_dataset):
        spec = build_attack("adaptive-overwrite", calibration_corpus=small_dataset.calibration)
        described = spec.describe()
        assert described["pool_fraction"] == 0.25
        assert [1.0, 1.5] in described["guesses"]

    def test_union_pools_memoized_per_subject(self, quantized_awq4, small_dataset, monkeypatch):
        """A sweep over one subject estimates activations exactly once —
        the pools are strength- and RNG-independent."""
        import repro.models.activations as activations_module

        spec = build_attack("adaptive-overwrite", calibration_corpus=small_dataset.calibration)
        calls = []
        real = activations_module.collect_activation_stats

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(activations_module, "collect_activation_stats", counting)
        spec.apply(quantized_awq4, 20, new_rng(1))
        spec.apply(quantized_awq4, 40, new_rng(2))
        assert len(calls) == 1
        # A second subject gets its own entry without evicting the first:
        # interleaved multi-subject sweeps stay once-per-subject.
        other = quantized_awq4.clone()
        spec.apply(other, 20, new_rng(3))
        spec.apply(quantized_awq4, 60, new_rng(4))
        spec.apply(other, 40, new_rng(5))
        assert len(calls) == 2


class TestOracleAdaptiveAttack:
    """The adversary holding the owner's exact (α, β) and pool size — not seed d."""

    def test_requires_corpus(self):
        with pytest.raises(ValueError, match="calibration corpus"):
            build_attack("adaptive-oracle")

    def test_zero_coverage_is_identity(self, quantized_awq4, small_dataset):
        spec = build_attack("adaptive-oracle", calibration_corpus=small_dataset.calibration)
        outcome = spec.apply(quantized_awq4, 0.0, new_rng(0))
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                outcome.model.get_layer(name).weight_int,
                quantized_awq4.get_layer(name).weight_int,
            )

    def test_coverage_out_of_range_raises(self, quantized_awq4, small_dataset):
        spec = build_attack("adaptive-oracle", calibration_corpus=small_dataset.calibration)
        with pytest.raises(ValueError, match="adaptive-oracle strength"):
            spec.apply(quantized_awq4, 1.5, new_rng(0))

    def test_full_coverage_overwrites_the_entire_estimated_pool(
        self, awq_subject, small_dataset
    ):
        spec = build_attack("adaptive-oracle", calibration_corpus=small_dataset.calibration)
        outcome = spec.apply(awq_subject.model, 1.0, new_rng(1))
        assert outcome.info["positions_overwritten"] == outcome.info["estimated_pool_size"]
        assert outcome.info["knows_exact_coefficients"] is True
        assert outcome.info["knows_seed"] is False
        assert outcome.info["pool_coverage"] == 1.0

    def test_owner_config_is_read_for_coefficients(self, quantized_awq4, small_dataset):
        from repro.core.config import EmMarkConfig

        config = EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8)
        spec = build_attack(
            "adaptive-oracle",
            calibration_corpus=small_dataset.calibration,
            owner_config=config,
        )
        described = spec.describe()
        assert described["owner_config_supplied"] is True
        assert described["alpha"] == config.alpha
        assert described["beta"] == config.beta

    def test_pools_memoized_per_subject(self, quantized_awq4, small_dataset):
        spec = build_attack("adaptive-oracle", calibration_corpus=small_dataset.calibration)
        first = spec._exact_pools(quantized_awq4)
        assert spec._exact_pools(quantized_awq4) is first

    def test_sweeping_coverage_erodes_the_owner_wer(
        self, awq_subject, gauntlet_engine, small_dataset
    ):
        spec = build_attack(
            "adaptive-oracle",
            calibration_corpus=small_dataset.calibration,
            owner_config=awq_subject.key.config,
        )
        outcome = spec.apply(awq_subject.model, 1.0, new_rng(2))
        owner = gauntlet_engine.extract(outcome.model, awq_subject.key, strict_layout=False)
        # Full pool coverage with the exact coefficients must actually reach
        # watermark positions (the estimated pool overlaps the true one).
        assert owner.wer_percent < 100.0


class TestSoupAttack:
    """True two-clone souping: two independent custodies of one virgin base."""

    @pytest.fixture()
    def soup_spec(self, quantized_awq4, activation_stats):
        return build_attack(
            "soup", base_model=quantized_awq4, base_activations=activation_stats
        )

    def test_zero_ratio_is_identity_without_partner(self, soup_spec, quantized_awq4):
        outcome = soup_spec.apply(quantized_awq4, 0.0, new_rng(0))
        assert outcome.attacker_key is None
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                outcome.model.get_layer(name).weight_int,
                quantized_awq4.get_layer(name).weight_int,
            )

    def test_full_ratio_is_exactly_the_partner_clone(
        self, soup_spec, awq_subject, gauntlet_engine
    ):
        outcome = soup_spec.apply(awq_subject.model, 1.0, new_rng(1))
        assert outcome.attacker_key is not None
        assert outcome.info["true_two_clone"] is True
        partner = gauntlet_engine.extract(
            outcome.model, outcome.attacker_key, strict_layout=False
        )
        owner = gauntlet_engine.extract(outcome.model, awq_subject.key, strict_layout=False)
        # The soup *is* clone B: owner B extracts perfectly, owner A's bits
        # are gone (B's clone holds virgin values at A's locations).
        assert partner.wer_percent == 100.0
        assert owner.wer_percent < 30.0

    def test_half_ratio_degrades_both_owners_gracefully(
        self, soup_spec, awq_subject, gauntlet_engine
    ):
        outcome = soup_spec.apply(awq_subject.model, 0.5, new_rng(2))
        owner = gauntlet_engine.extract(outcome.model, awq_subject.key, strict_layout=False)
        partner = gauntlet_engine.extract(
            outcome.model, outcome.attacker_key, strict_layout=False
        )
        # Each owner's extraction tracks the share of the soup drawn from
        # their clone: ~50% each at t=0.5, neither vanishing.
        assert 25.0 < owner.wer_percent < 75.0
        assert 25.0 < partner.wer_percent < 75.0

    def test_partner_is_independent_of_the_subject_watermark(
        self, soup_spec, awq_subject, quantized_awq4, gauntlet_engine
    ):
        # The partner clone derives from the *base*, not the deployed model:
        # souping the virgin base and souping the watermarked deployment at
        # the same cell RNG produce the identical partner key locations.
        out_a = soup_spec.apply(awq_subject.model, 1.0, new_rng(7))
        out_b = soup_spec.apply(quantized_awq4, 1.0, new_rng(7))
        locs_a = gauntlet_engine.reproduce_locations(out_a.attacker_key)
        locs_b = gauntlet_engine.reproduce_locations(out_b.attacker_key)
        for name in locs_a:
            np.testing.assert_array_equal(locs_a[name], locs_b[name])

    def test_info_counts_positions(self, soup_spec, quantized_awq4):
        outcome = soup_spec.apply(quantized_awq4, 0.5, new_rng(3))
        assert outcome.info["positions_differing"] > 0
        assert 0 < outcome.info["positions_taken_from_partner"] <= outcome.info["positions_differing"]


class TestGPTQRequantizeAttack:
    def test_requires_corpus(self):
        with pytest.raises(ValueError, match="calibration corpus"):
            build_attack("gptq-requantize")

    def test_preserves_layout_and_reports_method(self, quantized_awq4, small_dataset):
        spec = build_attack("gptq-requantize", calibration_corpus=small_dataset.calibration)
        outcome = spec.apply(quantized_awq4, 4, new_rng(0))
        assert outcome.model.layer_names() == quantized_awq4.layer_names()
        assert outcome.model.method == "gptq"
        assert outcome.model.bits == 4
        assert outcome.info == {"requantized_bits": 4, "method": "gptq"}

    def test_error_compensation_moves_levels_where_rtn_does_not(
        self, quantized_awq4, small_dataset
    ):
        """GPTQ's error feedback shifts integer levels relative to plain RTN
        at the same bit-width — the gap the GPTQ grids exist to measure."""
        gptq = build_attack(
            "gptq-requantize", calibration_corpus=small_dataset.calibration
        ).apply(quantized_awq4, 4, new_rng(1)).model
        rtn = build_attack("requantize").apply(quantized_awq4, 4, new_rng(1)).model
        differing = sum(
            np.count_nonzero(gptq.get_layer(n).weight_int != rtn.get_layer(n).weight_int)
            for n in quantized_awq4.layer_names()
        )
        assert differing > 0
