"""Process-pool gauntlet guarantees: digest equality, auto mode, shm hygiene.

``mode="process"`` promises exactly what the streaming thread mode promises —
bit-identical decisions at any worker count — plus two of its own: shared
model residency (workers see zero-copy read-only views, never copies) and a
shared-memory segment that is unlinked exactly once even when a worker is
killed mid-cell.  Digest equality is asserted against both in-process modes,
under both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import glob
import os
import signal

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.engine import WatermarkEngine
from repro.engine.engine import get_default_engine
from repro.engine.shm import SHM_NAME_PREFIX
from repro.robustness import GauntletConfig, GauntletSubject, build_attack, run_gauntlet
from repro.robustness.attacks import AttackSpec
from repro.robustness.procpool import resolve_start_method

GRID_STRENGTHS = {"overwrite": (0, 20), "pruning": (0.4,), "rewatermark": (6,)}


def _stale_segments():
    return glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}*")


def _grid_attacks(small_dataset):
    return [
        build_attack("overwrite"),
        build_attack("pruning"),
        build_attack("rewatermark", calibration_corpus=small_dataset.calibration),
    ]


@pytest.fixture(scope="module")
def reference_digests(awq_subject, small_dataset):
    """Serial and thread digests of the shared grid, computed once."""
    subjects = {"awq": awq_subject}
    serial = run_gauntlet(
        subjects, _grid_attacks(small_dataset), GRID_STRENGTHS,
        max_workers=1, seed=11, evaluate_quality=False,
    )
    threaded = run_gauntlet(
        subjects, _grid_attacks(small_dataset), GRID_STRENGTHS,
        max_workers=4, seed=11, evaluate_quality=False,
    )
    assert serial.executor == "serial" and threaded.executor == "thread"
    assert serial.decision_digest() == threaded.decision_digest()
    return serial


class TestDigestEquality:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_matches_serial_and_thread(
        self, awq_subject, small_dataset, reference_digests, workers, start_method
    ):
        report = run_gauntlet(
            {"awq": awq_subject}, _grid_attacks(small_dataset), GRID_STRENGTHS,
            max_workers=workers, seed=11, evaluate_quality=False,
            mode="process", start_method=start_method,
        )
        assert report.mode == "process"
        assert report.executor == "process"
        assert report.start_method == start_method
        assert report.decision_digest() == reference_digests.decision_digest()
        for ours, theirs in zip(report.cells, reference_digests.cells):
            assert ours.decision_fields() == theirs.decision_fields()
            assert ours.false_claim_probability == theirs.false_claim_probability

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_quality_evaluation_matches_across_executors(
        self, awq_subject, small_dataset, start_method
    ):
        """Harnesses ship to workers and perplexity/zero-shot agree exactly."""
        subjects = {"awq": awq_subject}
        attacks = [build_attack("overwrite")]
        strengths = {"overwrite": (0, 20)}
        streaming = run_gauntlet(subjects, attacks, strengths, max_workers=2, seed=3)
        process = run_gauntlet(
            subjects, attacks, strengths, max_workers=2, seed=3,
            mode="process", start_method=start_method,
        )
        assert process.decision_digest() == streaming.decision_digest()
        for ours, theirs in zip(process.cells, streaming.cells):
            assert ours.perplexity == theirs.perplexity
            assert ours.zero_shot_accuracy == theirs.zero_shot_accuracy

    def test_multi_owner_co_keys_verified_in_workers(self, multi_owner_subject):
        subjects = {"multi": multi_owner_subject}
        attacks = [build_attack("overwrite"), build_attack("pruning")]
        strengths = {"overwrite": (0, 30), "pruning": (0.3,)}
        streaming = run_gauntlet(
            subjects, attacks, strengths, max_workers=2, seed=5, evaluate_quality=False
        )
        process = run_gauntlet(
            subjects, attacks, strengths, max_workers=2, seed=5, evaluate_quality=False,
            mode="process", start_method="fork",
        )
        assert process.decision_digest() == streaming.decision_digest()
        assert all(cell.co_owner_wer_percent for cell in process.cells)

    def test_rewatermark_runs_after_parent_engine_warmed(
        self, awq_subject, small_dataset
    ):
        """Fork hygiene: a forked worker inherits the parent's default engine
        — thread pool and all — and re-watermarking inserts through it.  With
        a deliberately warmed (live-threaded) parent pool, the run still
        completes because the at-fork reset drops the dead executor."""
        engine = get_default_engine()
        engine._pool()  # force a live ThreadPoolExecutor in the parent
        report = run_gauntlet(
            {"awq": awq_subject},
            [build_attack("rewatermark", calibration_corpus=small_dataset.calibration)],
            {"rewatermark": (6,)},
            max_workers=2, seed=7, evaluate_quality=False,
            mode="process", start_method="fork",
        )
        assert report.num_cells == 1
        assert report.cells[0].attacker_wer_percent is not None


class TestAutoMode:
    ATTACKS_KW = dict(seed=2, evaluate_quality=False, mode="auto")

    def test_single_core_falls_back_to_serial(self, awq_subject, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        report = run_gauntlet(
            {"m": awq_subject}, [build_attack("overwrite")],
            {"overwrite": (0, 10, 20)}, max_workers=4, **self.ATTACKS_KW,
        )
        assert report.mode == "streaming"
        assert report.executor == "serial"
        assert report.workers == 1

    def test_small_grid_falls_back_to_serial(self, awq_subject, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        report = run_gauntlet(
            {"m": awq_subject}, [build_attack("overwrite")],
            {"overwrite": (0, 10)}, max_workers=4, **self.ATTACKS_KW,
        )
        assert report.mode == "streaming"
        assert report.executor == "serial"

    def test_multi_core_large_grid_takes_process_mode(self, awq_subject, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        report = run_gauntlet(
            {"m": awq_subject}, [build_attack("overwrite")],
            {"overwrite": (0, 10, 20)}, max_workers=2, **self.ATTACKS_KW,
        )
        assert report.mode == "process"
        assert report.executor == "process"
        assert report.to_dict()["mode"] == "process"

    def test_resolved_choice_lands_in_report_dict(self, awq_subject, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        report = run_gauntlet(
            {"m": awq_subject}, [build_attack("overwrite")],
            {"overwrite": (0, 10)}, max_workers=2, **self.ATTACKS_KW,
        )
        payload = report.to_dict()
        assert payload["mode"] == "streaming"
        assert payload["executor"] == "serial"
        assert payload["start_method"] is None

    def test_invalid_start_method_rejected(self):
        with pytest.raises(ValueError, match="start_method"):
            GauntletConfig(start_method="telepathy")

    def test_env_var_start_method(self, monkeypatch):
        monkeypatch.setenv("REPRO_GAUNTLET_START_METHOD", "spawn")
        assert resolve_start_method(None) == "spawn"
        assert resolve_start_method("fork") == "fork"  # explicit wins
        monkeypatch.setenv("REPRO_GAUNTLET_START_METHOD", "nonsense")
        assert resolve_start_method(None) in ("fork", "spawn", "forkserver")


class _KillerAttack(AttackSpec):
    """SIGKILLs its worker at any non-zero strength (crash-path instrument).

    Defined at test-module scope, so it is only usable under ``fork`` (spawn
    workers re-import and cannot see pytest's test modules) — which is all
    the crash test needs.
    """

    name = "killer"
    strength_unit = "kills"
    default_strengths = (1,)

    def apply(self, model, strength, rng):
        if strength > 0:
            os.kill(os.getpid(), signal.SIGKILL)
        from repro.robustness.attacks import AttackOutcome

        return AttackOutcome(model=model.clone())


class TestSharedMemoryHygiene:
    def test_no_stale_segments_after_run(self, awq_subject):
        run_gauntlet(
            {"m": awq_subject}, [build_attack("overwrite")], {"overwrite": (0, 10)},
            max_workers=2, seed=1, evaluate_quality=False,
            mode="process", start_method="fork",
        )
        assert not _stale_segments()

    def test_killed_worker_leaves_no_stale_segments(self, awq_subject):
        bare = GauntletSubject(model=awq_subject.model, key=awq_subject.key)
        with pytest.raises(BrokenProcessPool):
            run_gauntlet(
                {"m": bare}, [_KillerAttack()], {"killer": (0, 1)},
                max_workers=2, seed=1, evaluate_quality=False,
                mode="process", start_method="fork",
            )
        assert not _stale_segments()


class TestPreloadedLocations:
    def test_preloaded_session_matches_fresh_reproduction(self, awq_subject):
        engine = WatermarkEngine()
        fresh = engine.verification_session(keys={"k": awq_subject.key})
        expected = fresh.verify("s", awq_subject.model, "k")
        locations = fresh.locations("k")

        other = WatermarkEngine()
        preloaded = other.verification_session(keys={"k": awq_subject.key})
        preloaded.preload_locations("k", locations)
        got = preloaded.verify("s", awq_subject.model, "k")
        assert got.wer_percent == expected.wer_percent
        assert got.matched_bits == expected.matched_bits
        assert got.owned == expected.owned
        # The whole point: a preloaded key costs zero plan-cache traffic.
        traffic = preloaded.cache_traffic()
        assert traffic.hits == 0 and traffic.misses == 0

    def test_preload_unknown_key_rejected(self, awq_subject):
        session = WatermarkEngine().verification_session()
        with pytest.raises(KeyError, match="register the key first"):
            session.preload_locations("nobody", {})
