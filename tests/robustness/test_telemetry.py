"""Telemetry must never perturb decisions.

The hard invariant of the observability layer: gauntlet decision digests are
bit-identical with tracing and progress enabled vs disabled, across the
serial, thread, and process executors (the latter under both ``fork`` and
``spawn``).  Spans are measurement-only; the progress renderer is I/O-only;
worker telemetry (pids, utilization) never enters ``decision_fields``.
"""

from __future__ import annotations

import io
import os

import pytest

from repro.obs import MetricsRegistry, TraceCollector, tracing
from repro.robustness import Gauntlet, GauntletConfig, build_attack, run_gauntlet

GRID = {"overwrite": (0, 20), "pruning": (0.4,)}  # 3 cells


def _attacks():
    return [build_attack("overwrite"), build_attack("pruning")]


@pytest.fixture(scope="module")
def untraced_reference(awq_subject):
    """Digest of the shared grid with no telemetry whatsoever."""
    return run_gauntlet(
        {"awq": awq_subject}, _attacks(), GRID,
        max_workers=1, seed=13, evaluate_quality=False,
    )


class TestTracingDigestInvariance:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_streaming_digest_identical_with_tracing(
        self, awq_subject, untraced_reference, workers
    ):
        collector = TraceCollector()
        with tracing(collector):
            traced = run_gauntlet(
                {"awq": awq_subject}, _attacks(), GRID,
                max_workers=workers, seed=13, evaluate_quality=False,
            )
        assert traced.decision_digest() == untraced_reference.decision_digest()
        for ours, theirs in zip(traced.cells, untraced_reference.cells):
            assert ours.decision_fields() == theirs.decision_fields()
        names = {record.name for record in collector.records}
        assert "gauntlet.run" in names
        assert "gauntlet.cell" in names
        assert "engine.verify_pair" in names

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_process_digest_identical_with_tracing(
        self, awq_subject, untraced_reference, workers, start_method
    ):
        collector = TraceCollector()
        with tracing(collector):
            traced = run_gauntlet(
                {"awq": awq_subject}, _attacks(), GRID,
                max_workers=workers, seed=13, evaluate_quality=False,
                mode="process", start_method=start_method,
            )
        assert traced.executor == "process"
        assert traced.decision_digest() == untraced_reference.decision_digest()
        # Worker spans shipped back to the parent: one gauntlet.cell span per
        # cell, recorded under the worker's pid, plus the shm round-trip.
        cell_spans = [r for r in collector.records if r.name == "gauntlet.cell"]
        assert len(cell_spans) == traced.num_cells
        assert all(span.pid != os.getpid() for span in cell_spans)
        names = {record.name for record in collector.records}
        assert "shm.publish" in names
        assert "shm.restore" in names

    def test_process_worker_utilization_reported_not_digested(self, awq_subject):
        report = run_gauntlet(
            {"awq": awq_subject}, _attacks(), GRID,
            max_workers=2, seed=13, evaluate_quality=False,
            mode="process", start_method="fork",
        )
        assert report.worker_utilization
        assert all(value >= 0.0 for value in report.worker_utilization.values())
        assert report.cells_per_second > 0.0
        payload = report.to_dict()
        assert payload["worker_utilization"] == report.worker_utilization
        # Informational only — no cell decision carries worker telemetry.
        for cell in report.cells:
            fields = repr(cell.decision_fields())
            assert "worker" not in fields and "pid" not in fields


class TestProgressDigestInvariance:
    def _run_with_progress(self, subject, **config_kwargs):
        stream = io.StringIO()
        gauntlet = Gauntlet(
            config=GauntletConfig(
                seed=13, evaluate_quality=False, progress=True, **config_kwargs
            ),
            progress_stream=stream,
        )
        report = gauntlet.run({"awq": subject}, _attacks(), GRID)
        return report, stream.getvalue()

    def test_serial_progress_renders_and_digest_unchanged(
        self, awq_subject, untraced_reference
    ):
        report, output = self._run_with_progress(awq_subject, max_workers=1)
        assert report.executor == "serial"
        assert report.decision_digest() == untraced_reference.decision_digest()
        assert "[3/3]" in output
        assert "cells/s" in output
        assert "min WER" in output
        assert output.endswith("\n")

    def test_thread_progress_renders_and_digest_unchanged(
        self, awq_subject, untraced_reference
    ):
        report, output = self._run_with_progress(awq_subject, max_workers=4)
        assert report.executor == "thread"
        assert report.decision_digest() == untraced_reference.decision_digest()
        assert "[3/3]" in output

    def test_process_progress_renders_and_digest_unchanged(
        self, awq_subject, untraced_reference
    ):
        report, output = self._run_with_progress(
            awq_subject, max_workers=2, mode="process", start_method="fork"
        )
        assert report.executor == "process"
        assert report.decision_digest() == untraced_reference.decision_digest()
        assert "[3/3]" in output


class TestSweepMetrics:
    def test_gauntlet_records_into_registry(self, awq_subject):
        registry = MetricsRegistry()
        gauntlet = Gauntlet(
            config=GauntletConfig(max_workers=1, seed=13, evaluate_quality=False),
            metrics=registry,
        )
        report = gauntlet.run({"awq": awq_subject}, _attacks(), GRID)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["repro_gauntlet_cells_total"] == report.num_cells
        assert snapshot["gauges"]["repro_gauntlet_cells_per_second"] > 0.0
        assert "repro_gauntlet_cell_verify_seconds" in snapshot["histograms"]
