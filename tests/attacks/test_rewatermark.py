"""Tests for the re-watermarking attack."""

import numpy as np
import pytest

from repro.attacks.rewatermark import RewatermarkAttackConfig, rewatermark_attack
from repro.core import EmMark, EmMarkConfig


@pytest.fixture(scope="module")
def owner_watermarked(request):
    quantized = request.getfixturevalue("quantized_awq4")
    stats = request.getfixturevalue("activation_stats")
    emmark = EmMark(EmMarkConfig.scaled_for_model(quantized, bits_per_layer=8))
    watermarked, key, _ = emmark.insert_with_key(quantized, stats)
    return emmark, watermarked, key


class TestRewatermarkAttack:
    def test_requires_attacker_activation_source(self, owner_watermarked):
        _, watermarked, _ = owner_watermarked
        with pytest.raises(ValueError):
            rewatermark_attack(watermarked, RewatermarkAttackConfig(bits_per_layer=8))

    def test_attack_perturbs_weights(self, owner_watermarked, small_dataset):
        _, watermarked, _ = owner_watermarked
        attacked, _ = rewatermark_attack(
            watermarked,
            RewatermarkAttackConfig(bits_per_layer=8),
            calibration_corpus=small_dataset.calibration,
        )
        diff = attacked.weight_difference(watermarked)
        assert sum(np.count_nonzero(d) for d in diff.values()) > 0

    def test_attacker_can_extract_own_signature(self, owner_watermarked, small_dataset):
        emmark, watermarked, _ = owner_watermarked
        attacked, attacker_key = rewatermark_attack(
            watermarked,
            RewatermarkAttackConfig(bits_per_layer=8),
            calibration_corpus=small_dataset.calibration,
        )
        attacker_result = emmark.extract_with_key(attacked, attacker_key)
        assert attacker_result.wer_percent > 95.0

    def test_owner_watermark_survives(self, owner_watermarked, small_dataset):
        """The paper's claim: the owner's WER stays above 95% under attack."""
        emmark, watermarked, owner_key = owner_watermarked
        attacked, _ = rewatermark_attack(
            watermarked,
            RewatermarkAttackConfig(bits_per_layer=24),
            calibration_corpus=small_dataset.calibration,
        )
        owner_result = emmark.extract_with_key(attacked, owner_key)
        assert owner_result.wer_percent > 90.0

    def test_attacker_key_does_not_extract_from_original(
        self, owner_watermarked, quantized_awq4, small_dataset
    ):
        emmark, watermarked, _ = owner_watermarked
        _, attacker_key = rewatermark_attack(
            watermarked,
            RewatermarkAttackConfig(bits_per_layer=8),
            calibration_corpus=small_dataset.calibration,
        )
        result = emmark.extract_with_key(quantized_awq4, attacker_key)
        assert result.wer_percent < 30.0

    def test_paper_attacker_hyperparameters(self):
        config = RewatermarkAttackConfig()
        assert config.alpha == 1.0
        assert config.beta == 1.5
        assert config.seed == 22

    def test_bits_per_layer_validated(self):
        with pytest.raises(ValueError):
            RewatermarkAttackConfig(bits_per_layer=0)
