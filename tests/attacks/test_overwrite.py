"""Tests for the parameter-overwriting attack."""

import numpy as np
import pytest

from repro.attacks.overwrite import OverwriteAttackConfig, parameter_overwrite_attack


class TestOverwriteAttack:
    def test_zero_strength_is_identity(self, quantized_awq4):
        attacked = parameter_overwrite_attack(quantized_awq4, OverwriteAttackConfig(0))
        for name in quantized_awq4.layer_names():
            np.testing.assert_array_equal(
                attacked.get_layer(name).weight_int, quantized_awq4.get_layer(name).weight_int
            )

    def test_original_model_untouched(self, quantized_awq4):
        snapshot = quantized_awq4.integer_weight_snapshot()
        parameter_overwrite_attack(quantized_awq4, OverwriteAttackConfig(50))
        for name, weights in snapshot.items():
            np.testing.assert_array_equal(weights, quantized_awq4.get_layer(name).weight_int)

    def test_resample_touches_at_most_requested_count(self, quantized_awq4):
        attacked = parameter_overwrite_attack(
            quantized_awq4, OverwriteAttackConfig(30, style="resample", seed=3)
        )
        diff = attacked.weight_difference(quantized_awq4)
        for delta in diff.values():
            assert np.count_nonzero(delta) <= 30

    def test_increment_changes_are_small(self, quantized_awq4):
        attacked = parameter_overwrite_attack(
            quantized_awq4, OverwriteAttackConfig(30, style="increment", seed=3)
        )
        diff = attacked.weight_difference(quantized_awq4)
        for delta in diff.values():
            assert np.max(np.abs(delta)) <= 1

    def test_grid_respected(self, quantized_awq4):
        attacked = parameter_overwrite_attack(
            quantized_awq4, OverwriteAttackConfig(200, style="resample", seed=1)
        )
        for layer in attacked.iter_layers():
            assert layer.weight_int.max() <= layer.grid.qmax
            assert layer.weight_int.min() >= layer.grid.qmin

    def test_strength_larger_than_layer_handled(self, quantized_awq4):
        biggest = max(layer.num_weights for layer in quantized_awq4.iter_layers())
        attacked = parameter_overwrite_attack(
            quantized_awq4, OverwriteAttackConfig(biggest + 1000, style="resample")
        )
        assert attacked.num_quantization_layers == quantized_awq4.num_quantization_layers

    def test_seed_controls_positions(self, quantized_awq4):
        a = parameter_overwrite_attack(quantized_awq4, OverwriteAttackConfig(40, seed=1))
        b = parameter_overwrite_attack(quantized_awq4, OverwriteAttackConfig(40, seed=2))
        name = quantized_awq4.layer_names()[0]
        assert not np.array_equal(a.get_layer(name).weight_int, b.get_layer(name).weight_int)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OverwriteAttackConfig(-1)
        with pytest.raises(ValueError):
            OverwriteAttackConfig(10, style="flip")

    def test_watermark_survives_moderate_attack(self, quantized_awq4, activation_stats):
        """The headline robustness claim: WER stays high under overwriting."""
        from repro.core import EmMark, EmMarkConfig

        emmark = EmMark(EmMarkConfig.scaled_for_model(quantized_awq4, bits_per_layer=8))
        watermarked, key, _ = emmark.insert_with_key(quantized_awq4, activation_stats)
        attacked = parameter_overwrite_attack(watermarked, OverwriteAttackConfig(60, seed=5))
        wer = emmark.extract_with_key(attacked, key).wer_percent
        # 60 random overwrites in layers of ~1k-4k weights leave the
        # watermark overwhelmingly intact.
        assert wer > 90.0
