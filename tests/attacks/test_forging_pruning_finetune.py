"""Tests for the forging, pruning and LoRA fine-tuning attacks."""

import numpy as np
import pytest

from repro.attacks.finetune_attack import lora_finetune_attack
from repro.attacks.forging import counterfeit_key_attack, forge_with_fake_locations
from repro.attacks.pruning import PruningAttackConfig, magnitude_pruning_attack
from repro.attacks.rewatermark import RewatermarkAttackConfig, rewatermark_attack
from repro.core import EmMark, EmMarkConfig
from repro.eval.perplexity import compute_perplexity
from repro.finetune.lora import LoRAConfig


@pytest.fixture(scope="module")
def owner_setup(request):
    quantized = request.getfixturevalue("quantized_awq4")
    stats = request.getfixturevalue("activation_stats")
    emmark = EmMark(EmMarkConfig.scaled_for_model(quantized, bits_per_layer=8))
    watermarked, key, _ = emmark.insert_with_key(quantized, stats)
    return emmark, quantized, watermarked, key


class TestForging:
    def test_fake_locations_rejected(self, owner_setup):
        _, _, watermarked, _ = owner_setup
        outcome = forge_with_fake_locations(watermarked, bits_per_layer=8)
        assert not outcome.accepted
        assert not outcome.reproducible
        assert outcome.location_overlap_fraction < 0.5

    def test_counterfeit_key_dispute_resolves_for_owner(self, owner_setup, small_dataset):
        emmark, original, watermarked, owner_key = owner_setup
        attacked, attacker_key = rewatermark_attack(
            watermarked,
            RewatermarkAttackConfig(bits_per_layer=8),
            calibration_corpus=small_dataset.calibration,
        )
        outcomes = counterfeit_key_attack(original, attacked, owner_key, attacker_key)
        assert outcomes["owner_on_attacked"].accepted
        assert not outcomes["attacker_on_original"].accepted

    def test_outcome_summary_strings(self, owner_setup):
        _, _, watermarked, _ = owner_setup
        outcome = forge_with_fake_locations(watermarked, bits_per_layer=4)
        assert "REJECTED" in outcome.summary()


class TestPruning:
    def test_zero_sparsity_identity(self, quantized_awq4):
        attacked = magnitude_pruning_attack(quantized_awq4, PruningAttackConfig(0.0))
        name = quantized_awq4.layer_names()[0]
        np.testing.assert_array_equal(
            attacked.get_layer(name).weight_int, quantized_awq4.get_layer(name).weight_int
        )

    def test_sparsity_achieved(self, quantized_awq4):
        attacked = magnitude_pruning_attack(quantized_awq4, PruningAttackConfig(0.5))
        for layer in attacked.iter_layers():
            zero_fraction = np.mean(layer.weight_int == 0)
            assert zero_fraction >= 0.45

    def test_smallest_magnitudes_pruned_first(self, quantized_awq4):
        attacked = magnitude_pruning_attack(quantized_awq4, PruningAttackConfig(0.3))
        name = quantized_awq4.layer_names()[0]
        original = quantized_awq4.get_layer(name).weight_int
        pruned = attacked.get_layer(name).weight_int
        newly_zeroed = (original != 0) & (pruned == 0)
        surviving = pruned != 0
        if newly_zeroed.any() and surviving.any():
            assert np.abs(original[newly_zeroed]).max() <= np.abs(original[surviving]).min() + 1

    def test_sparsity_validated(self):
        with pytest.raises(ValueError):
            PruningAttackConfig(1.5)

    def test_moderate_pruning_leaves_watermark_intact(self, owner_setup):
        """Pruning light enough to keep the model alive barely touches the WER."""
        emmark, _, watermarked, key = owner_setup
        attacked = magnitude_pruning_attack(watermarked, PruningAttackConfig(0.4))
        wer = emmark.extract_with_key(attacked, key).wer_percent
        assert wer > 80.0

    def test_heavy_pruning_destroys_quality(self, owner_setup, small_dataset):
        """The paper's argument: pruning strong enough to threaten the
        watermark has already broken the compressed model."""
        emmark, quantized, watermarked, key = owner_setup
        attacked = magnitude_pruning_attack(watermarked, PruningAttackConfig(0.9))
        base_ppl = compute_perplexity(quantized, small_dataset.validation, max_sequences=12)
        attacked_ppl = compute_perplexity(attacked, small_dataset.validation, max_sequences=12)
        assert attacked_ppl > base_ppl * 1.2


class TestLoRAFineTuneAttack:
    def test_quantized_weights_unchanged(self, owner_setup, small_dataset):
        _, _, watermarked, _ = owner_setup
        result = lora_finetune_attack(
            watermarked.clone(), small_dataset.train, LoRAConfig(steps=4, batch_size=4, rank=2)
        )
        assert result.quantized_weights_unchanged

    def test_watermark_fully_extractable_after_attack(self, owner_setup, small_dataset):
        emmark, _, watermarked, key = owner_setup
        result = lora_finetune_attack(
            watermarked.clone(), small_dataset.train, LoRAConfig(steps=4, batch_size=4, rank=2)
        )
        assert emmark.extract_with_key(result.attacked_model, key).wer_percent == 100.0

    def test_final_loss_reported(self, owner_setup, small_dataset):
        _, _, watermarked, _ = owner_setup
        result = lora_finetune_attack(
            watermarked.clone(), small_dataset.train, LoRAConfig(steps=3, batch_size=4, rank=2)
        )
        assert np.isfinite(result.final_loss)
