"""Re-watermarking attack (Figure 2b).

The adversary knows EmMark's insertion algorithm but not the owner's secrets.
He therefore runs the same scoring + insertion procedure on the watermarked
model with *his own* hyper-parameters — the paper uses α=1, β=1.5, seed 22 —
and, crucially, with activation statistics measured on the **quantized**
model he possesses, because the full-precision model (whose activations drive
the owner's robustness score) is not available to him.

The perturbed positions partially overlap the owner's watermark, so the
attack nibbles at the WER, but Section 5.3 shows the owner's signature stays
above 95% extractable even when the attacker has inserted enough bits to
visibly damage the model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro.core.config import EmMarkConfig
from repro.core.insertion import insert_watermark
from repro.core.keys import WatermarkKey
from repro.models.activations import ActivationStats, collect_activation_stats
from repro.quant.base import QuantizedModel
from repro.utils.rng import new_rng

__all__ = ["RewatermarkAttackConfig", "rewatermark_attack"]

#: Attacker hyper-parameters from Section 5.3.
PAPER_ATTACK_ALPHA = 1.0
PAPER_ATTACK_BETA = 1.5
PAPER_ATTACK_SEED = 22


@dataclass(frozen=True)
class RewatermarkAttackConfig:
    """Configuration of one re-watermarking attack.

    Attributes
    ----------
    bits_per_layer:
        Number of signature bits the adversary inserts per layer (the x-axis
        of Figure 2b).
    alpha, beta, seed:
        The adversary's scoring coefficients and sub-sampling seed; the paper
        sets them to 1, 1.5 and 22 (all different from the owner's values).
    signature_seed:
        Seed of the adversary's own Rademacher signature.
    """

    bits_per_layer: int = 100
    alpha: float = PAPER_ATTACK_ALPHA
    beta: float = PAPER_ATTACK_BETA
    seed: int = PAPER_ATTACK_SEED
    signature_seed: int = 999

    def __post_init__(self) -> None:
        if self.bits_per_layer < 1:
            raise ValueError("bits_per_layer must be >= 1")


def rewatermark_attack(
    model: QuantizedModel,
    config: RewatermarkAttackConfig,
    calibration_corpus=None,
    attacker_activations: Optional[ActivationStats] = None,
) -> Tuple[QuantizedModel, WatermarkKey]:
    """Re-watermark ``model`` with the adversary's parameters.

    Parameters
    ----------
    model:
        The (already watermarked) deployed model.
    config:
        Attacker hyper-parameters.
    calibration_corpus:
        Corpus the attacker uses to measure activations on the *quantized*
        model (he has no full-precision model).  Required unless
        ``attacker_activations`` is given.
    attacker_activations:
        Pre-computed attacker-side activation statistics.

    Returns
    -------
    (attacked_model, attacker_key)
        The doubly-watermarked model and the adversary's own key (with which
        he can of course extract *his* signature — but not remove the
        owner's).
    """
    if attacker_activations is None:
        if calibration_corpus is None:
            raise ValueError(
                "the attacker needs either a calibration corpus or activation statistics"
            )
        # The adversary can only run the model he has: the quantized one.
        attacker_activations = collect_activation_stats(
            model.materialize(), calibration_corpus
        )
    attacker_signature_rng = new_rng(config.signature_seed, "attacker-signature")
    total_bits = config.bits_per_layer * model.num_quantization_layers
    attacker_signature = attacker_signature_rng.choice(
        np.array([-1, 1], dtype=np.int64), size=total_bits
    )
    # replace() on a default config: only the fields the attacker actually
    # controls are overridden, so every other EmMarkConfig field (present or
    # future) keeps its default instead of silently falling back to whatever
    # a field-by-field rebuild happened to forward.
    attacker_config = replace(
        EmMarkConfig(),
        bits_per_layer=config.bits_per_layer,
        alpha=config.alpha,
        beta=config.beta,
        seed=config.seed,
        signature_seed=config.signature_seed,
    )
    attacked, attacker_key, _ = insert_watermark(
        model,
        attacker_activations,
        config=attacker_config,
        signature=attacker_signature,
    )
    return attacked, attacker_key
