"""Fine-tuning (QLoRA-style) as an attempted removal attack.

The paper rules fine-tuning out as a removal attack because parameter-
efficient fine-tuning of quantized models (QLoRA) freezes the quantized
weights and learns additive low-rank adapters instead.  This module carries
the argument out mechanically: it LoRA-fine-tunes the watermarked quantized
model on an attacker-chosen corpus and reports that (a) the integer weights —
and therefore the watermark — are bit-identical afterwards, and (b) the
adapted model may well behave differently, but ownership verification reads
the deployed quantized tensors, not the adapter outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.data.corpus import TokenCorpus
from repro.finetune.lora import LoRAConfig, LoRAFineTuner
from repro.quant.base import QuantizedModel

__all__ = ["FineTuneAttackResult", "lora_finetune_attack"]


@dataclass
class FineTuneAttackResult:
    """Outcome of the LoRA fine-tuning attack.

    Attributes
    ----------
    attacked_model:
        The quantized model after the attack.  Its integer weights are
        untouched; only the attacker-side adapters changed (and those are not
        part of the deployed quantized tensors the owner queries).
    quantized_weights_unchanged:
        Mechanical check that no integer weight moved.
    final_loss:
        The attacker's fine-tuning loss after the last step (shows the
        adapters did learn something, i.e. the attack was actually run).
    """

    attacked_model: QuantizedModel
    quantized_weights_unchanged: bool
    final_loss: float


def lora_finetune_attack(
    model: QuantizedModel,
    corpus: TokenCorpus,
    config: Optional[LoRAConfig] = None,
) -> FineTuneAttackResult:
    """Run a QLoRA-style fine-tuning attack against ``model``.

    Parameters
    ----------
    model:
        The watermarked quantized model.
    corpus:
        The attacker's fine-tuning corpus.
    config:
        LoRA hyper-parameters (rank, steps, learning rate).
    """
    reference = model.clone()
    tuner = LoRAFineTuner(model, config=config)
    history = tuner.fine_tune(corpus)
    unchanged = tuner.quantized_weights_unchanged(reference)
    final_loss = history["loss"][-1] if history["loss"] else float("nan")
    return FineTuneAttackResult(
        attacked_model=model,
        quantized_weights_unchanged=unchanged,
        final_loss=float(final_loss),
    )
