"""Parameter overwriting attack (Figure 2a).

The threat model (Section 3) defines parameter overwriting as "other values
replace model parameters": the adversary, hoping to destroy whatever
signature might be hidden in the weights, rewrites a number of randomly
chosen weight positions in every quantization layer.  Section 5.3 sweeps the
number of overwritten parameters per layer from 100 to 500 and shows that the
model quality collapses well before the watermark does (EmMark keeps >99%
WER).

Two overwrite styles are provided:

* ``"resample"`` (default) — the chosen weights are replaced with fresh
  uniform values from the quantization grid, the literal reading of
  "other values replace model parameters".
* ``"increment"`` — the chosen weights are incremented by a random ±1 step
  (the lighter variant described in Section 5.3's prose); on its own this is
  far gentler on model quality.

Both styles are oblivious to the watermark locations, which is why the WER
only decreases in proportion to the fraction of weights touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.quant.base import QuantizedModel
from repro.utils.rng import new_rng

__all__ = ["OverwriteAttackConfig", "parameter_overwrite_attack"]

OverwriteStyle = Literal["resample", "increment"]


@dataclass(frozen=True)
class OverwriteAttackConfig:
    """Configuration of one parameter-overwriting attack.

    Attributes
    ----------
    weights_per_layer:
        Number of weight positions rewritten in every quantization layer
        (the x-axis of Figure 2a).
    style:
        ``"resample"`` replaces the weight with a uniform random grid level;
        ``"increment"`` adds ±1.
    seed:
        Attacker randomness (position choice and replacement values).
    """

    weights_per_layer: int = 100
    style: OverwriteStyle = "resample"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.weights_per_layer < 0:
            raise ValueError("weights_per_layer must be >= 0")
        if self.style not in ("resample", "increment"):
            raise ValueError("style must be 'resample' or 'increment'")


def parameter_overwrite_attack(
    model: QuantizedModel, config: OverwriteAttackConfig
) -> QuantizedModel:
    """Apply the overwriting attack and return the attacked model copy.

    The attacker has no knowledge of the watermark locations, so positions
    are drawn uniformly at random per layer.
    """
    attacked = model.clone()
    if config.weights_per_layer == 0:
        return attacked
    for layer in attacked.iter_layers():
        rng = new_rng(config.seed, "overwrite", layer.name)
        flat = layer.weight_int.reshape(-1)
        count = min(config.weights_per_layer, flat.size)
        positions = rng.choice(flat.size, size=count, replace=False)
        if config.style == "resample":
            replacement = rng.integers(layer.grid.qmin, layer.grid.qmax + 1, size=count)
            flat[positions] = replacement
        else:
            deltas = rng.choice(np.array([-1, 1], dtype=np.int64), size=count)
            layer.add_to_weights(positions, deltas)
    return attacked
