"""Parameter overwriting attack (Figure 2a).

The threat model (Section 3) defines parameter overwriting as "other values
replace model parameters": the adversary, hoping to destroy whatever
signature might be hidden in the weights, rewrites a number of randomly
chosen weight positions in every quantization layer.  Section 5.3 sweeps the
number of overwritten parameters per layer from 100 to 500 and shows that the
model quality collapses well before the watermark does (EmMark keeps >99%
WER).

Two overwrite styles are provided:

* ``"resample"`` (default) — the chosen weights are replaced with fresh
  uniform values from the quantization grid, the literal reading of
  "other values replace model parameters".
* ``"increment"`` — the chosen weights are incremented by a random ±1 step
  (the lighter variant described in Section 5.3's prose); on its own this is
  far gentler on model quality.

Both styles are oblivious to the watermark locations, which is why the WER
only decreases in proportion to the fraction of weights touched.

Positions are drawn from :meth:`~repro.quant.base.QuantizedLinear.quantized_mask`
— the set of weights that actually carry quantized values.  On LLM.int8()
models the full-precision outlier columns are re-inserted by
``effective_weight()`` over whatever the integer tensor holds, so an
"overwrite" landing there would change nothing the deployed model computes
(and nothing the watermark reads): counting such positions toward the attack
strength would silently under-report the attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.quant.base import QuantizedModel
from repro.utils.rng import new_rng

__all__ = ["OverwriteAttackConfig", "parameter_overwrite_attack"]

OverwriteStyle = Literal["resample", "increment"]


@dataclass(frozen=True)
class OverwriteAttackConfig:
    """Configuration of one parameter-overwriting attack.

    Attributes
    ----------
    weights_per_layer:
        Number of weight positions rewritten in every quantization layer
        (the x-axis of Figure 2a).
    style:
        ``"resample"`` replaces the weight with a uniform random grid level;
        ``"increment"`` adds ±1.
    seed:
        Attacker randomness (position choice and replacement values).
    """

    weights_per_layer: int = 100
    style: OverwriteStyle = "resample"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.weights_per_layer < 0:
            raise ValueError("weights_per_layer must be >= 0")
        if self.style not in ("resample", "increment"):
            raise ValueError("style must be 'resample' or 'increment'")


def parameter_overwrite_attack(
    model: QuantizedModel, config: OverwriteAttackConfig
) -> QuantizedModel:
    """Apply the overwriting attack and return the attacked model copy.

    The attacker has no knowledge of the watermark locations, so positions
    are drawn uniformly at random per layer.
    """
    attacked = model.clone()
    if config.weights_per_layer == 0:
        return attacked
    for layer in attacked.iter_layers():
        rng = new_rng(config.seed, "overwrite", layer.name)
        # Only positions that carry quantized values are worth attacking:
        # LLM.int8() outlier columns are overridden with full-precision
        # weights by effective_weight(), so hits there would be no-ops.
        eligible = np.flatnonzero(layer.quantized_mask().reshape(-1))
        count = min(config.weights_per_layer, eligible.size)
        if count == 0:
            continue
        positions = rng.choice(eligible, size=count, replace=False)
        current = layer.weight_int.reshape(-1)[positions]
        if config.style == "resample":
            replacement = rng.integers(layer.grid.qmin, layer.grid.qmax + 1, size=count)
            deltas = replacement - current
        else:
            deltas = rng.choice(np.array([-1, 1], dtype=np.int64), size=count)
        # Route through the shared mutation primitive so grid-overflow
        # handling matches watermark insertion exactly.
        layer.add_to_weights(positions, deltas)
    return attacked
