"""Watermark removal and forging attacks (Section 3 and 5.3).

The threat model assumes an adversary with full access to the deployed
(watermarked) integer weights and knowledge of the EmMark algorithm, but
without the full-precision model, the owner's signature, or the random seed.
The package implements every attack the paper evaluates:

* :mod:`repro.attacks.overwrite` — parameter overwriting: random weights are
  replaced / perturbed (Figure 2a).
* :mod:`repro.attacks.rewatermark` — re-watermarking: the adversary runs
  EmMark's own insertion procedure with different hyper-parameters and the
  *quantized* model's activations (Figure 2b).
* :mod:`repro.attacks.forging` — forging: counterfeit watermark locations /
  counterfeit keys on top of the watermarked model (Section 5.3).
* :mod:`repro.attacks.pruning` — magnitude pruning of the quantized weights,
  included to demonstrate the paper's claim that pruning an already-compressed
  model destroys it.
* :mod:`repro.attacks.finetune_attack` — LoRA fine-tuning as an attempted
  removal attack; it cannot change the quantized weights.
"""

from repro.attacks.overwrite import OverwriteAttackConfig, parameter_overwrite_attack
from repro.attacks.rewatermark import RewatermarkAttackConfig, rewatermark_attack
from repro.attacks.forging import (
    ForgingOutcome,
    counterfeit_key_attack,
    forge_with_fake_locations,
)
from repro.attacks.pruning import PruningAttackConfig, magnitude_pruning_attack
from repro.attacks.finetune_attack import lora_finetune_attack

__all__ = [
    "OverwriteAttackConfig",
    "parameter_overwrite_attack",
    "RewatermarkAttackConfig",
    "rewatermark_attack",
    "ForgingOutcome",
    "forge_with_fake_locations",
    "counterfeit_key_attack",
    "PruningAttackConfig",
    "magnitude_pruning_attack",
    "lora_finetune_attack",
]
