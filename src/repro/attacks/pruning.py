"""Pruning attack on the quantized model.

Sections 3 and 5.3 argue that pruning is not a viable removal attack against
an embedded model: the model is *already* compressed and quantized, and
zeroing additional weights "results in model ability breakdown".  The
reproduction includes the attack so the claim can be demonstrated: magnitude
pruning at the attack strengths needed to disturb the watermark destroys the
model's perplexity long before the WER drops meaningfully (the watermark sits
on large-magnitude weights, which magnitude pruning removes *last*).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scoring import topk_argsort_stable
from repro.quant.base import QuantizedModel

__all__ = ["PruningAttackConfig", "magnitude_pruning_attack"]


@dataclass(frozen=True)
class PruningAttackConfig:
    """Configuration of a magnitude-pruning attack.

    Attributes
    ----------
    sparsity:
        Fraction of weights (per layer) set to zero, smallest magnitudes
        first.
    """

    sparsity: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.sparsity <= 1.0:
            raise ValueError("sparsity must be in [0, 1]")


def magnitude_pruning_attack(
    model: QuantizedModel, config: PruningAttackConfig
) -> QuantizedModel:
    """Zero the smallest-magnitude fraction of every layer's integer weights."""
    attacked = model.clone()
    if config.sparsity == 0.0:
        return attacked
    for layer in attacked.iter_layers():
        # flat_weight_view guarantees a real view: a plain reshape(-1) on a
        # non-contiguous tensor returns a copy and the zeroing writes below
        # would be silently discarded.
        flat = layer.flat_weight_view()
        count = int(round(flat.size * config.sparsity))
        if count == 0:
            continue
        # O(n + k log k) argpartition top-k; bit-identical to the stable full
        # argsort it replaces (ties admitted in index order).
        smallest = topk_argsort_stable(np.abs(flat), count)
        flat[smallest] = 0
    return attacked
