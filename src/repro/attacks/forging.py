"""Forging attacks (Section 5.3).

Instead of removing the owner's watermark, a forging adversary tries to claim
the model as his own.  The paper analyses two settings:

1. **Counterfeit locations** — the adversary invents watermark locations
   ``L_a`` and a fake signature and asserts that the deployed model carries
   them.  The claim fails verification because the locations cannot be
   *reproduced* from key material: reproducing them requires the
   full-precision activations, the scoring coefficients and the seed, and
   when a verifier re-runs the location-selection procedure with whatever
   "key" the adversary supplies, the reproduced locations do not coincide
   with the claimed ones (or, if the adversary simply defines the signature
   as "whatever the weights happen to be", the claim carries no statistical
   weight because it matches any model of the same lineage, including the
   owner's original — it cannot distinguish the adversary's alleged insertion
   from no insertion at all).
2. **Counterfeit re-watermarking** — the adversary actually inserts his own
   signature (the re-watermark attack) and can prove *that* signature, but
   the owner's original signature remains extractable (Figure 2b), so the
   dispute resolves in the owner's favour: the owner's key extracts from the
   adversary's model, while the adversary's key does not extract from the
   owner's original (pre-attack) model, establishing temporal precedence.

This module provides both forgeries plus the verification logic a neutral
judge would run, so the experiments can measure exactly the quantities the
paper argues about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.extraction import extract_watermark, reproduce_locations
from repro.core.keys import WatermarkKey
from repro.core.strength import false_claim_probability
from repro.quant.base import QuantizedModel
from repro.utils.rng import new_rng

__all__ = ["ForgingOutcome", "forge_with_fake_locations", "counterfeit_key_attack"]


@dataclass
class ForgingOutcome:
    """Result of a forging attempt as seen by a neutral verifier.

    Attributes
    ----------
    claimed_wer:
        WER the adversary can demonstrate at his claimed locations.
    reproducible:
        Whether the claimed locations can be re-derived from the adversary's
        alleged key material (the core of the verification protocol).
    location_overlap_fraction:
        Fraction of the claimed locations that coincide with the locations
        reproduced from the adversary's key material (1.0 for an honest key).
    false_claim_probability:
        Probability that the adversary's "match" could arise by chance.
    accepted:
        Final verdict of the verifier.
    """

    claimed_wer: float
    reproducible: bool
    location_overlap_fraction: float
    false_claim_probability: float
    accepted: bool

    def summary(self) -> str:
        """One-line human-readable verdict."""
        status = "ACCEPTED" if self.accepted else "REJECTED"
        return (
            f"{status}: claimed WER {self.claimed_wer:.1f}%, locations reproducible: "
            f"{self.reproducible} (overlap {self.location_overlap_fraction:.2f}), "
            f"P_c {self.false_claim_probability:.2e}"
        )


def forge_with_fake_locations(
    model: QuantizedModel,
    bits_per_layer: int = 12,
    seed: int = 7,
) -> ForgingOutcome:
    """Setting 1: claim ownership with invented locations and signature.

    The adversary picks arbitrary locations in the deployed model and declares
    the signature to be whatever weight values sit there (so his "extraction"
    trivially matches).  The verifier then asks for the key material that
    generated those locations; since the adversary has no full-precision
    activations and no scoring-consistent seed, the locations cannot be
    reproduced and the claim is rejected.
    """
    rng = new_rng(seed, "forge-locations")
    claimed_locations: Dict[str, np.ndarray] = {}
    total = 0
    for name, layer in model.layers.items():
        flat_size = layer.weight_int.size
        count = min(bits_per_layer, flat_size)
        claimed_locations[name] = rng.choice(flat_size, size=count, replace=False)
        total += count
    # The adversary "extracts" perfectly at his own locations by construction.
    claimed_wer = 100.0
    # Verification: a reproduction attempt requires a full watermark key.  The
    # adversary can at best fabricate one with the quantized model's weights
    # and arbitrary activations; the reproduced locations will not match the
    # claimed ones except by chance.
    fabricated_activations = _fabricated_activation_stats(model, seed)
    fabricated_key = WatermarkKey(
        signature=rng.choice(np.array([-1, 1], dtype=np.int64), size=total),
        config=_fabricated_config(bits_per_layer, seed),
        reference_weights=model.integer_weight_snapshot(),
        activations=fabricated_activations,
        layer_names=model.layer_names(),
        method=model.method,
        bits=model.bits,
        model_name=model.config.name,
    )
    reproduced = reproduce_locations(fabricated_key)
    overlap = _location_overlap(claimed_locations, reproduced)
    # Being unable to tie the claimed locations to reproducible key material,
    # the verifier treats the claim as carrying no statistical weight.
    probability = 1.0
    accepted = overlap > 0.99
    return ForgingOutcome(
        claimed_wer=claimed_wer,
        reproducible=accepted,
        location_overlap_fraction=overlap,
        false_claim_probability=probability,
        accepted=accepted,
    )


def counterfeit_key_attack(
    original_model: QuantizedModel,
    attacked_model: QuantizedModel,
    owner_key: WatermarkKey,
    attacker_key: WatermarkKey,
    wer_threshold: float = 90.0,
) -> Dict[str, ForgingOutcome]:
    """Setting 2: the adversary re-watermarked the model and claims ownership.

    A neutral judge runs both keys against both models:

    * the owner's key against the adversary's (re-watermarked) model — should
      still extract (the owner wins on the disputed artefact), and
    * the adversary's key against the owner's *original* model — should fail,
      because the adversary's signature was not present before his attack.

    Returns the two outcomes keyed by ``"owner_on_attacked"`` and
    ``"attacker_on_original"``.
    """
    owner_result = extract_watermark(attacked_model, owner_key, strict_layout=False)
    attacker_result = extract_watermark(original_model, attacker_key, strict_layout=False)
    outcomes = {
        "owner_on_attacked": ForgingOutcome(
            claimed_wer=owner_result.wer_percent,
            reproducible=True,
            location_overlap_fraction=1.0,
            false_claim_probability=owner_result.false_claim_probability,
            accepted=owner_result.wer_percent >= wer_threshold,
        ),
        "attacker_on_original": ForgingOutcome(
            claimed_wer=attacker_result.wer_percent,
            reproducible=True,
            location_overlap_fraction=1.0,
            false_claim_probability=attacker_result.false_claim_probability,
            accepted=attacker_result.wer_percent >= wer_threshold,
        ),
    }
    return outcomes


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _fabricated_config(bits_per_layer: int, seed: int):
    """An arbitrary configuration the adversary might fabricate."""
    from repro.core.config import EmMarkConfig

    return EmMarkConfig(bits_per_layer=bits_per_layer, alpha=1.0, beta=1.0, seed=seed)


def _fabricated_activation_stats(model: QuantizedModel, seed: int):
    """Activation statistics the adversary fabricates (he lacks the FP model)."""
    from repro.models.activations import ActivationStats

    rng = new_rng(seed, "forge-activations")
    mean_abs = {
        name: rng.random(layer.in_features) + 0.1 for name, layer in model.layers.items()
    }
    return ActivationStats(mean_abs=mean_abs)


def _location_overlap(
    claimed: Dict[str, np.ndarray], reproduced: Dict[str, np.ndarray]
) -> float:
    """Fraction of claimed locations present in the reproduced set."""
    total = 0
    overlap = 0
    for name, claimed_positions in claimed.items():
        reproduced_positions = set(np.asarray(reproduced.get(name, np.array([]))).tolist())
        total += len(claimed_positions)
        overlap += sum(1 for p in claimed_positions.tolist() if p in reproduced_positions)
    if total == 0:
        return 0.0
    return overlap / total
