"""Round-to-nearest (RTN) quantization.

The simplest post-training quantizer: every weight matrix is independently
mapped onto the symmetric integer grid with per-output-channel step sizes
(Equation 1 of the paper).  RTN is both a baseline in its own right and the
final step of every other algorithm in this package — SmoothQuant, LLM.int8(),
AWQ and GPTQ all transform the weights first and then round them the same way.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedLinear, quantize_tensor
from repro.quant.quantizer import BaseQuantizer

__all__ = ["RTNQuantizer"]


class RTNQuantizer(BaseQuantizer):
    """Plain round-to-nearest weight quantization.

    Parameters
    ----------
    bits:
        Target bit width.
    per_channel:
        Per-output-channel step sizes (default) or a single per-tensor step.
    """

    method_name = "rtn"
    requires_activations = False

    def _quantize_layer(
        self,
        name: str,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        activations: Optional[ActivationStats],
    ) -> QuantizedLinear:
        weight_int, scale = quantize_tensor(weight, self.grid, per_channel=self.per_channel)
        return QuantizedLinear(
            name=name,
            weight_int=weight_int,
            scale=scale,
            grid=self.grid,
            bias=bias,
        )
