"""GPTQ: Hessian-based column-wise quantization (INT4).

GPTQ [Frantar et al., 2022] quantizes the weight matrix one input column at a
time and, after rounding each column, redistributes the rounding error onto
the not-yet-quantized columns using the inverse of the layer Hessian
``H = 2 X Xᵀ`` estimated on calibration data.  This greatly reduces the output
error of low-bit quantization compared with naive rounding.

The integrity study of the paper (Table 4, "non-WM 4") uses a GPTQ-quantized
OPT-2.7B as one of the independent, non-watermarked models, which is why the
algorithm is part of the substrate here.

The reproduction follows the standard formulation:

1. ``H = E[x xᵀ] + λ·mean(diag(H))·I`` (dampened Hessian from the calibration
   Gram matrix),
2. column order = descending ``diag(H)`` ("act-order" heuristic),
3. for each column ``j``: round it, compute the per-row error
   ``e = (w_j − q_j) / [H⁻¹]_{jj}`` and update the remaining columns with
   ``W_{:,k} -= e · [H⁻¹]_{j,k}``,

using the Cholesky factorisation of ``H⁻¹`` as in the reference
implementation.  Per-output-channel scales are fixed up-front from the
original weight maxima so every column shares the same grid.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedLinear
from repro.quant.quantizer import BaseQuantizer

__all__ = ["GPTQQuantizer", "gptq_requantize"]


def gptq_requantize(model, bits: int, calibration_corpus, **quantizer_kwargs):
    """Round-trip a quantized model through GPTQ at ``bits`` bits.

    The attack-side hook of the re-quantization scenario: the adversary
    dequantizes the (watermarked) deployment, measures fresh calibration
    activations — including the Gram matrices GPTQ's error compensation
    needs — on the model he actually has, and re-quantizes column-by-column.
    Unlike plain RTN, the error feedback redistributes each column's rounding
    residue onto later columns, so integer levels move even where RTN would
    round-trip losslessly; this is exactly the gap the GPTQ gauntlet grids
    measure.

    Returns a new :class:`~repro.quant.base.QuantizedModel`; ``model`` is
    not mutated.
    """
    # Imported lazily: quant.api imports this module at package-init time.
    from repro.quant.api import quantize_model

    return quantize_model(
        model.materialize(),
        "gptq",
        bits=int(bits),
        calibration_corpus=calibration_corpus,
        **quantizer_kwargs,
    )


class GPTQQuantizer(BaseQuantizer):
    """GPTQ weight quantization with error compensation.

    Parameters
    ----------
    bits:
        Target bit width (the reproduction uses 4, as in the paper).
    damping:
        Relative dampening λ added to the Hessian diagonal for numerical
        stability (1% in the reference implementation).
    act_order:
        Quantize columns in order of decreasing Hessian diagonal (the
        "act-order" trick); disabling it falls back to natural column order.
    """

    method_name = "gptq"
    requires_activations = True

    def __init__(
        self,
        bits: int = 4,
        damping: float = 0.01,
        act_order: bool = True,
        per_channel: bool = True,
    ) -> None:
        super().__init__(bits=bits, per_channel=per_channel)
        if damping <= 0:
            raise ValueError("damping must be positive")
        self.damping = float(damping)
        self.act_order = bool(act_order)

    def _dampened_hessian(self, gram: np.ndarray) -> np.ndarray:
        """Add relative dampening to the calibration Gram matrix."""
        hessian = np.asarray(gram, dtype=np.float64).copy()
        diag_mean = float(np.mean(np.diag(hessian)))
        if diag_mean <= 0:
            diag_mean = 1.0
        hessian[np.diag_indices_from(hessian)] += self.damping * diag_mean
        return hessian

    def _quantize_layer(
        self,
        name: str,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        activations: Optional[ActivationStats],
    ) -> QuantizedLinear:
        assert activations is not None  # guaranteed by BaseQuantizer.quantize
        gram = activations.gram.get(name)
        if gram is None:
            raise ValueError(
                f"GPTQ requires the calibration Gram matrix for layer {name!r}; "
                "collect activations with gram collection enabled"
            )
        out_features, in_features = weight.shape
        hessian = self._dampened_hessian(gram)

        if self.act_order:
            order = np.argsort(np.diag(hessian))[::-1]
        else:
            order = np.arange(in_features)
        inverse_order = np.argsort(order)

        weight_perm = weight[:, order].astype(np.float64).copy()
        hessian_perm = hessian[np.ix_(order, order)]

        # Per-row scales from the original weights; fixed before compensation
        # so the error feedback does not chase a moving grid.
        if self.per_channel:
            max_abs = np.max(np.abs(weight), axis=1, keepdims=True)
        else:
            max_abs = np.full((out_features, 1), np.max(np.abs(weight)))
        scale = self.grid.step_size(max_abs)

        # Inverse Hessian via Cholesky; fall back to stronger dampening if the
        # calibration data did not span all directions.
        try:
            hessian_inv = np.linalg.inv(hessian_perm)
            chol_upper = np.linalg.cholesky(hessian_inv).T
        except np.linalg.LinAlgError:
            hessian_perm[np.diag_indices_from(hessian_perm)] += np.mean(np.diag(hessian_perm))
            hessian_inv = np.linalg.inv(hessian_perm)
            chol_upper = np.linalg.cholesky(hessian_inv).T

        quantized = np.zeros_like(weight_perm)
        working = weight_perm
        for col in range(in_features):
            diag = chol_upper[col, col]
            column = working[:, col]
            levels = self.grid.clip(np.round(column / scale[:, 0]))
            quantized[:, col] = levels
            dequant = levels * scale[:, 0]
            error = (column - dequant) / diag
            if col + 1 < in_features:
                working[:, col + 1 :] -= np.outer(error, chol_upper[col, col + 1 :])

        weight_int = quantized[:, inverse_order].astype(np.int64)
        return QuantizedLinear(
            name=name,
            weight_int=weight_int,
            scale=scale,
            grid=self.grid,
            bias=bias,
        )
