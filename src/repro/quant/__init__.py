"""Post-training quantization substrate.

The paper watermarks models produced by four quantization frameworks:
SmoothQuant (OPT, INT8), LLM.int8() (LLaMA-2, INT8), AWQ (INT4) and — in the
integrity study — GPTQ (INT4).  This package re-implements all four on top of
the NumPy model substrate:

* :mod:`repro.quant.base` — the shared data model: symmetric integer grids,
  :class:`QuantizedLinear` (integer weights + scales + optional input
  smoothing and full-precision outlier columns) and :class:`QuantizedModel`
  (all quantized layers of one LM plus its remaining full-precision state).
* :mod:`repro.quant.rtn` — plain round-to-nearest quantization (the building
  block of the others and a baseline in its own right).
* :mod:`repro.quant.smoothquant` — activation-to-weight scale migration, INT8.
* :mod:`repro.quant.llm_int8` — mixed-precision outlier decomposition, INT8.
* :mod:`repro.quant.awq` — activation-aware per-channel weight scaling, INT4.
* :mod:`repro.quant.gptq` — Hessian-based column-wise error compensation, INT4.

Every quantizer consumes the full-precision :class:`~repro.models.TransformerLM`
plus calibration :class:`~repro.models.ActivationStats` and returns a
:class:`QuantizedModel`; watermarking then operates on the integer weights.
"""

from repro.quant.base import (
    QuantizationGrid,
    QuantizedLinear,
    QuantizedModel,
    dequantize_tensor,
    quantize_tensor,
)
from repro.quant.rtn import RTNQuantizer
from repro.quant.smoothquant import SmoothQuantQuantizer
from repro.quant.llm_int8 import LLMInt8Quantizer
from repro.quant.awq import AWQQuantizer
from repro.quant.gptq import GPTQQuantizer
from repro.quant.api import QUANTIZER_REGISTRY, get_quantizer, quantize_model

__all__ = [
    "QuantizationGrid",
    "QuantizedLinear",
    "QuantizedModel",
    "quantize_tensor",
    "dequantize_tensor",
    "RTNQuantizer",
    "SmoothQuantQuantizer",
    "LLMInt8Quantizer",
    "AWQQuantizer",
    "GPTQQuantizer",
    "QUANTIZER_REGISTRY",
    "get_quantizer",
    "quantize_model",
]
