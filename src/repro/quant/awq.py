"""AWQ: activation-aware weight quantization (INT4).

AWQ [Lin et al., 2023] protects the ~1% of weight channels that matter most
for model quality by scaling them *up* before low-bit rounding (and scaling
the activations down by the same factor), so the salient channels suffer less
relative rounding error.  Saliency is measured from calibration activation
magnitudes — exactly the signal EmMark's robustness score reuses.

The reproduction implements the per-input-channel scaling rule
``s_j = (A_j / mean(A)) ** α`` (clamped) with a small grid search over α that
minimises the layer's output reconstruction error on the calibration Gram
matrix, mirroring AWQ's search over scaling exponents.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedLinear, dequantize_tensor, quantize_tensor
from repro.quant.quantizer import BaseQuantizer

__all__ = ["AWQQuantizer"]


class AWQQuantizer(BaseQuantizer):
    """Activation-aware weight quantization.

    Parameters
    ----------
    bits:
        Bit width; AWQ targets low-bit (INT4) quantization.
    alpha_grid:
        Candidate scaling exponents searched per layer.  ``0`` disables
        scaling (plain RTN); larger values protect salient channels more
        aggressively.
    clip_range:
        Lower/upper clamp applied to the scaling factors.
    """

    method_name = "awq"
    requires_activations = True

    def __init__(
        self,
        bits: int = 4,
        alpha_grid: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
        clip_range: tuple = (0.1, 10.0),
        per_channel: bool = True,
    ) -> None:
        super().__init__(bits=bits, per_channel=per_channel)
        if not alpha_grid:
            raise ValueError("alpha_grid must contain at least one exponent")
        self.alpha_grid = tuple(float(a) for a in alpha_grid)
        self.clip_range = (float(clip_range[0]), float(clip_range[1]))

    def _scaling_for_alpha(self, saliency: np.ndarray, alpha: float) -> np.ndarray:
        """Per-input-channel scaling factors for one candidate exponent."""
        normalised = saliency / (np.mean(saliency) + 1e-12)
        factors = np.power(np.maximum(normalised, 1e-8), alpha)
        return np.clip(factors, self.clip_range[0], self.clip_range[1])

    def _reconstruction_error(
        self,
        weight: np.ndarray,
        factors: np.ndarray,
        gram: Optional[np.ndarray],
    ) -> float:
        """Expected output MSE of the quantized layer under the calibration data.

        With the activation Gram matrix ``G = E[x xᵀ]`` the expected squared
        output error of a weight perturbation ``E`` is ``trace(E G Eᵀ)``.
        When no Gram matrix is available the plain Frobenius error is used.
        """
        scaled = weight * factors[None, :]
        weight_int, scale = quantize_tensor(scaled, self.grid, per_channel=self.per_channel)
        effective = dequantize_tensor(weight_int, scale) / factors[None, :]
        error = effective - weight
        if gram is not None:
            return float(np.sum((error @ gram) * error))
        return float(np.sum(error * error))

    def _quantize_layer(
        self,
        name: str,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        activations: Optional[ActivationStats],
    ) -> QuantizedLinear:
        assert activations is not None  # guaranteed by BaseQuantizer.quantize
        saliency = np.asarray(activations.mean_abs[name], dtype=np.float64)
        gram = activations.gram.get(name)
        best_alpha = self.alpha_grid[0]
        best_error = np.inf
        for alpha in self.alpha_grid:
            factors = self._scaling_for_alpha(saliency, alpha)
            error = self._reconstruction_error(weight, factors, gram)
            if error < best_error:
                best_error = error
                best_alpha = alpha
        factors = self._scaling_for_alpha(saliency, best_alpha)
        scaled_weight = weight * factors[None, :]
        weight_int, scale = quantize_tensor(
            scaled_weight, self.grid, per_channel=self.per_channel
        )
        return QuantizedLinear(
            name=name,
            weight_int=weight_int,
            scale=scale,
            grid=self.grid,
            bias=bias,
            input_smoothing=factors,
        )
