"""Shared base class of all post-training quantizers.

Each quantization algorithm (RTN, SmoothQuant, LLM.int8(), AWQ, GPTQ) is a
subclass of :class:`BaseQuantizer`.  The base class handles the mechanics that
every algorithm shares — walking the model's linear layers, collecting the
unquantized remainder of the state dict, and packaging the result into a
:class:`~repro.quant.base.QuantizedModel` — so that each subclass only
implements :meth:`BaseQuantizer._quantize_layer` for one weight matrix.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.models.activations import ActivationStats
from repro.models.transformer import TransformerLM
from repro.quant.base import QuantizationGrid, QuantizedLinear, QuantizedModel
from repro.utils.logging import get_logger

__all__ = ["BaseQuantizer"]

logger = get_logger("quant")


class BaseQuantizer:
    """Template for post-training weight quantizers.

    Parameters
    ----------
    bits:
        Target bit width (8 for the INT8 frameworks, 4 for AWQ / GPTQ).
    per_channel:
        Whether step sizes are computed per output channel (default) or per
        tensor.
    """

    #: Registry / reporting name; subclasses override.
    method_name: str = "base"
    #: Whether the algorithm needs calibration activation statistics.
    requires_activations: bool = True

    def __init__(self, bits: int, per_channel: bool = True) -> None:
        self.grid = QuantizationGrid(bits)
        self.bits = int(bits)
        self.per_channel = bool(per_channel)

    # -- subclass hook -------------------------------------------------------
    def _quantize_layer(
        self,
        name: str,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        activations: Optional[ActivationStats],
    ) -> QuantizedLinear:
        """Quantize one linear layer; implemented by subclasses."""
        raise NotImplementedError

    # -- template -------------------------------------------------------------
    def quantize(
        self,
        model: TransformerLM,
        activations: Optional[ActivationStats] = None,
    ) -> QuantizedModel:
        """Quantize every linear layer of ``model``.

        Parameters
        ----------
        model:
            Full-precision simulated LLM.
        activations:
            Calibration statistics from
            :func:`repro.models.activations.collect_activation_stats`.
            Mandatory for activation-aware algorithms.

        Returns
        -------
        QuantizedModel
            The quantized layers plus the untouched full-precision state
            (embeddings, norms, biases, LM head).
        """
        if self.requires_activations and activations is None:
            raise ValueError(
                f"{self.method_name} requires calibration activation statistics"
            )
        quantized_layers: Dict[str, QuantizedLinear] = {}
        quantized_weight_keys = set()
        for name, linear in model.named_linear_layers():
            bias = None if linear.bias is None else linear.bias.value.copy()
            layer = self._quantize_layer(name, linear.weight.value.copy(), bias, activations)
            if layer.name != name:
                raise RuntimeError(
                    f"{type(self).__name__} returned layer named {layer.name!r} for {name!r}"
                )
            quantized_layers[name] = layer
            quantized_weight_keys.add(f"{name}.weight")
        full_precision_state = {
            key: value
            for key, value in model.state_dict().items()
            if key not in quantized_weight_keys
        }
        logger.debug(
            "%s quantized %d layers of %s to INT%d",
            self.method_name,
            len(quantized_layers),
            model.config.name,
            self.bits,
        )
        return QuantizedModel(
            config=model.config,
            layers=quantized_layers,
            full_precision_state=full_precision_state,
            method=self.method_name,
            bits=self.bits,
            base_seed=model.seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(bits={self.bits}, per_channel={self.per_channel})"
