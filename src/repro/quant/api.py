"""Convenience API over the individual quantizers.

The experiments need to say things like "OPT quantized to INT8 the way the
paper does it" without repeating the framework choice everywhere, so this
module provides:

* :data:`QUANTIZER_REGISTRY` — name → quantizer class,
* :func:`get_quantizer` — build a quantizer by name and bit width,
* :func:`quantize_model` — one-call quantization of a full-precision model,
* :func:`paper_quantizer_for` — the framework the paper pairs with a given
  model family and precision (SmoothQuant for INT8 OPT, LLM.int8() for INT8
  LLaMA-2, AWQ for INT4).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.models.activations import ActivationStats, collect_activation_stats
from repro.models.transformer import TransformerLM
from repro.quant.awq import AWQQuantizer
from repro.quant.base import QuantizedModel
from repro.quant.gptq import GPTQQuantizer
from repro.quant.llm_int8 import LLMInt8Quantizer
from repro.quant.quantizer import BaseQuantizer
from repro.quant.rtn import RTNQuantizer
from repro.quant.smoothquant import SmoothQuantQuantizer

__all__ = [
    "QUANTIZER_REGISTRY",
    "get_quantizer",
    "quantize_model",
    "paper_quantizer_for",
]

QUANTIZER_REGISTRY: Dict[str, Type[BaseQuantizer]] = {
    "rtn": RTNQuantizer,
    "smoothquant": SmoothQuantQuantizer,
    "llm_int8": LLMInt8Quantizer,
    "awq": AWQQuantizer,
    "gptq": GPTQQuantizer,
}


def get_quantizer(method: str, bits: Optional[int] = None, **kwargs) -> BaseQuantizer:
    """Build a quantizer by registry name.

    Parameters
    ----------
    method:
        One of ``"rtn"``, ``"smoothquant"``, ``"llm_int8"``, ``"awq"``,
        ``"gptq"``.
    bits:
        Bit width override; defaults to each algorithm's native precision
        (8 for SmoothQuant / LLM.int8(), 4 for AWQ / GPTQ, 8 for RTN).
    kwargs:
        Forwarded to the quantizer constructor.
    """
    try:
        cls = QUANTIZER_REGISTRY[method]
    except KeyError as exc:
        raise KeyError(
            f"unknown quantization method {method!r}; available: {sorted(QUANTIZER_REGISTRY)}"
        ) from exc
    if bits is None:
        defaults = {"rtn": 8, "smoothquant": 8, "llm_int8": 8, "awq": 4, "gptq": 4}
        bits = defaults[method]
    return cls(bits=bits, **kwargs)


def paper_quantizer_for(family: str, bits: int) -> BaseQuantizer:
    """The quantization framework the paper pairs with a model family.

    OPT models are quantized to INT8 with SmoothQuant, LLaMA-2 models to INT8
    with LLM.int8(), and both families to INT4 with AWQ (Section 5.1).
    """
    if bits == 8:
        return get_quantizer("smoothquant" if family == "opt" else "llm_int8", bits=8)
    if bits == 4:
        return get_quantizer("awq", bits=4)
    raise ValueError(f"the paper only evaluates INT8 and INT4, got {bits}-bit")


def quantize_model(
    model: TransformerLM,
    method: str,
    bits: Optional[int] = None,
    activations: Optional[ActivationStats] = None,
    calibration_corpus=None,
    **kwargs,
) -> QuantizedModel:
    """Quantize ``model`` with the named method.

    Either pre-computed ``activations`` or a ``calibration_corpus`` must be
    supplied for the activation-aware methods; RTN needs neither.
    """
    quantizer = get_quantizer(method, bits=bits, **kwargs)
    if quantizer.requires_activations and activations is None:
        if calibration_corpus is None:
            raise ValueError(
                f"{method} needs calibration data: pass `activations` or `calibration_corpus`"
            )
        activations = collect_activation_stats(model, calibration_corpus)
    return quantizer.quantize(model, activations)
