"""LLM.int8(): mixed-precision outlier decomposition (INT8).

LLM.int8() [Dettmers et al., 2022] keeps the handful of input channels whose
activations contain extreme outliers in full precision and quantizes the rest
of the weight matrix to INT8.  At inference the two partial mat-muls are summed.
The paper uses LLM.int8() to produce the INT8 LLaMA-2 models that EmMark
watermarks.

The reproduction detects outlier channels from the calibration activation
maxima (either an absolute threshold or a top-fraction rule, whichever marks
more channels), stores their full-precision weight columns separately, and
quantizes the remaining columns with per-output-channel RTN.  Watermarking
only ever touches the integer part — the outlier columns are excluded from
the candidate set via :meth:`QuantizedLinear.quantized_mask`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedLinear, quantize_tensor
from repro.quant.quantizer import BaseQuantizer

__all__ = ["LLMInt8Quantizer", "rewrite_outlier_entries"]


def rewrite_outlier_entries(
    layer: QuantizedLinear, fraction: float, rng: np.random.Generator
) -> int:
    """Resample a fraction of a layer's full-precision outlier entries.

    This is the attack-side hook of the LLM.int8() decomposition: the
    adversary rewrites entries of ``outlier_weight`` — the columns
    ``effective_weight()`` re-inserts verbatim — with fresh draws from the
    empirical distribution of the layer's own outlier values.  The integer
    tensor (where the watermark lives) is untouched, so the damage lands
    exclusively on model quality.  Mutates ``layer`` in place and returns the
    number of rewritten entries (0 when the layer has no outlier columns).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if layer.outlier_weight is None or layer.outlier_weight.size == 0:
        return 0
    if not layer.outlier_weight.flags.writeable:
        # Frozen layers (shared-memory views handed to process-pool workers,
        # see repro.engine.shm) must never be attacked in place — numpy would
        # raise on the write below anyway, but with a message that hides
        # which tensor was frozen and why.
        raise ValueError(
            f"layer {layer.name!r} holds read-only outlier weights "
            "(a frozen/shared view); clone the model before attacking it"
        )
    if not layer.outlier_weight.flags["C_CONTIGUOUS"]:
        # Same hazard flat_weight_view() guards: reshape(-1) on a
        # non-contiguous tensor is a copy and the writes below would be lost.
        layer.outlier_weight = np.ascontiguousarray(layer.outlier_weight)
    flat = layer.outlier_weight.reshape(-1)
    count = int(round(flat.size * fraction))
    if count == 0:
        return 0
    positions = rng.choice(flat.size, size=count, replace=False)
    location = float(np.mean(flat))
    spread = float(np.std(flat))
    if spread == 0.0:
        spread = max(abs(location), 1.0)
    flat[positions] = rng.normal(location, spread, size=count)
    return count


class LLMInt8Quantizer(BaseQuantizer):
    """LLM.int8() style mixed-precision quantization.

    Parameters
    ----------
    bits:
        Bit width of the non-outlier weights (8 in the original work).
    outlier_threshold:
        Activation-magnitude threshold, expressed as a multiple of the mean
        per-channel maximum, above which a channel is treated as an outlier.
    max_outlier_fraction:
        Upper bound on the fraction of channels kept in full precision
        (LLM.int8() reports <1% in practice; the simulated models have more
        pronounced outliers so a slightly larger cap keeps behaviour stable).
    """

    method_name = "llm_int8"
    requires_activations = True

    def __init__(
        self,
        bits: int = 8,
        outlier_threshold: float = 3.0,
        max_outlier_fraction: float = 0.1,
        per_channel: bool = True,
    ) -> None:
        super().__init__(bits=bits, per_channel=per_channel)
        if outlier_threshold <= 0:
            raise ValueError("outlier_threshold must be positive")
        if not 0.0 <= max_outlier_fraction <= 0.5:
            raise ValueError("max_outlier_fraction must be in [0, 0.5]")
        self.outlier_threshold = float(outlier_threshold)
        self.max_outlier_fraction = float(max_outlier_fraction)

    def _detect_outlier_columns(self, name: str, activations: ActivationStats) -> np.ndarray:
        """Indices of input channels whose activations exceed the threshold."""
        act_max = np.asarray(activations.maximum.get(name, activations.mean_abs[name]))
        if act_max.size == 0:
            return np.zeros(0, dtype=np.int64)
        reference = float(np.mean(act_max)) + 1e-12
        candidates = np.flatnonzero(act_max > self.outlier_threshold * reference)
        cap = max(0, int(np.floor(act_max.size * self.max_outlier_fraction)))
        if candidates.size > cap:
            order = np.argsort(act_max[candidates])[::-1]
            candidates = candidates[order[:cap]]
        return np.sort(candidates.astype(np.int64))

    def _quantize_layer(
        self,
        name: str,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        activations: Optional[ActivationStats],
    ) -> QuantizedLinear:
        assert activations is not None  # guaranteed by BaseQuantizer.quantize
        outlier_columns = self._detect_outlier_columns(name, activations)
        working = weight.copy()
        outlier_weight = None
        if outlier_columns.size:
            outlier_weight = weight[:, outlier_columns].copy()
            # Zero the outlier columns before computing step sizes so they do
            # not inflate the per-row maxima of the INT8 part.
            working[:, outlier_columns] = 0.0
        weight_int, scale = quantize_tensor(working, self.grid, per_channel=self.per_channel)
        if outlier_columns.size:
            weight_int[:, outlier_columns] = 0
        return QuantizedLinear(
            name=name,
            weight_int=weight_int,
            scale=scale,
            grid=self.grid,
            bias=bias,
            outlier_columns=outlier_columns if outlier_columns.size else None,
            outlier_weight=outlier_weight if outlier_columns.size else None,
        )
