"""Core quantization data structures.

Everything the watermarking layer touches lives here:

* :class:`QuantizationGrid` — a symmetric ``N``-bit integer grid
  (Equation 1 of the paper: ``X_q = round(X / Δ)``, ``Δ = max|X| / (2^{N-1}-1)``).
* :class:`QuantizedLinear` — one quantized projection: integer weights,
  per-output-channel scales, optional per-input-channel smoothing factors
  (AWQ / SmoothQuant) and optional full-precision outlier columns
  (LLM.int8()).
* :class:`QuantizedModel` — the collection of quantized layers of one model
  plus its remaining full-precision state, able to *materialize* an
  evaluation-ready :class:`~repro.models.transformer.TransformerLM` with the
  dequantized effective weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.models.config import ModelConfig
from repro.models.transformer import TransformerLM

__all__ = [
    "QuantizationGrid",
    "QuantizedLinear",
    "QuantizedModel",
    "quantize_tensor",
    "dequantize_tensor",
]


@dataclass(frozen=True)
class QuantizationGrid:
    """A symmetric signed integer grid with ``bits`` bits.

    The grid covers ``[-qmax, +qmax]`` with ``qmax = 2**(bits-1) - 1``;
    the value ``-2**(bits-1)`` is unused, matching the symmetric quantizers
    in SmoothQuant/AWQ/GPTQ.
    """

    bits: int

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 16:
            raise ValueError(f"bits must be between 2 and 16, got {self.bits}")

    @property
    def qmax(self) -> int:
        """Largest representable level."""
        return 2 ** (self.bits - 1) - 1

    @property
    def qmin(self) -> int:
        """Smallest representable level (symmetric)."""
        return -self.qmax

    @property
    def num_levels(self) -> int:
        """Number of representable levels."""
        return 2 * self.qmax + 1

    def clip(self, values: np.ndarray) -> np.ndarray:
        """Clip integer values into the representable range."""
        return np.clip(values, self.qmin, self.qmax)

    def step_size(self, max_abs: np.ndarray) -> np.ndarray:
        """Quantization step ``Δ = max|X| / qmax`` (Equation 1)."""
        max_abs = np.asarray(max_abs, dtype=np.float64)
        return np.where(max_abs > 0, max_abs / self.qmax, 1.0)


def quantize_tensor(
    weight: np.ndarray,
    grid: QuantizationGrid,
    per_channel: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantize a 2-D weight matrix onto ``grid``.

    Parameters
    ----------
    weight:
        Full-precision weight of shape ``(out_features, in_features)``.
    grid:
        Target integer grid.
    per_channel:
        When true (the default, matching weight quantization practice in
        SmoothQuant/AWQ/GPTQ) the step size is computed per output channel
        (per row); otherwise a single per-tensor step is used.

    Returns
    -------
    (weight_int, scale):
        ``weight_int`` — integer levels with the same shape as ``weight``;
        ``scale`` — per-row step sizes of shape ``(out_features, 1)`` (also
        for per-tensor mode, where every row shares the same value).
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ValueError("quantize_tensor expects a 2-D weight matrix")
    if per_channel:
        max_abs = np.max(np.abs(weight), axis=1, keepdims=True)
    else:
        max_abs = np.full((weight.shape[0], 1), np.max(np.abs(weight)))
    scale = grid.step_size(max_abs)
    weight_int = grid.clip(np.round(weight / scale)).astype(np.int64)
    return weight_int, scale


def dequantize_tensor(weight_int: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Map integer levels back to real values: ``W ≈ W_q * Δ``."""
    return np.asarray(weight_int, dtype=np.float64) * np.asarray(scale, dtype=np.float64)


@dataclass
class QuantizedLinear:
    """One quantized linear ("quantization") layer.

    Attributes
    ----------
    name:
        Dotted name of the layer inside the model (e.g.
        ``"blocks.0.attn.q_proj"``).
    weight_int:
        Integer weight levels, shape ``(out_features, in_features)``.
    scale:
        Per-output-channel step sizes, shape ``(out_features, 1)``.
    grid:
        The integer grid the levels live on.
    bias:
        Full-precision bias (biases are not quantized by any of the
        reproduced frameworks).
    input_smoothing:
        Optional per-input-channel factor ``s`` (shape ``(in_features,)``).
        The quantizer stored ``quantize(W * s)``; the mathematically
        equivalent full-precision operator is ``(W_q * Δ) / s`` applied to the
        *unscaled* input.  Used by SmoothQuant and AWQ.
    outlier_columns:
        Optional indices of input channels kept in full precision
        (LLM.int8() mixed-precision decomposition).
    outlier_weight:
        Full-precision weight values of the outlier columns, shape
        ``(out_features, len(outlier_columns))``.
    """

    name: str
    weight_int: np.ndarray
    scale: np.ndarray
    grid: QuantizationGrid
    bias: Optional[np.ndarray] = None
    input_smoothing: Optional[np.ndarray] = None
    outlier_columns: Optional[np.ndarray] = None
    outlier_weight: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.weight_int = np.asarray(self.weight_int, dtype=np.int64)
        self.scale = np.asarray(self.scale, dtype=np.float64)
        if self.weight_int.ndim != 2:
            raise ValueError("weight_int must be 2-D")
        if self.scale.shape != (self.weight_int.shape[0], 1):
            raise ValueError("scale must have shape (out_features, 1)")
        if self.input_smoothing is not None:
            self.input_smoothing = np.asarray(self.input_smoothing, dtype=np.float64)
            if self.input_smoothing.shape != (self.weight_int.shape[1],):
                raise ValueError("input_smoothing must have shape (in_features,)")
        if (self.outlier_columns is None) != (self.outlier_weight is None):
            raise ValueError("outlier_columns and outlier_weight must be given together")
        if self.outlier_columns is not None:
            self.outlier_columns = np.asarray(self.outlier_columns, dtype=np.int64)
            self.outlier_weight = np.asarray(self.outlier_weight, dtype=np.float64)
            if self.outlier_weight.shape != (
                self.weight_int.shape[0],
                self.outlier_columns.size,
            ):
                raise ValueError("outlier_weight shape must be (out_features, n_outliers)")
        out_of_grid = (self.weight_int < self.grid.qmin) | (self.weight_int > self.grid.qmax)
        if np.any(out_of_grid):
            raise ValueError("weight_int contains values outside the quantization grid")

    # -- geometry ----------------------------------------------------------
    @property
    def out_features(self) -> int:
        """Number of output channels (rows)."""
        return int(self.weight_int.shape[0])

    @property
    def in_features(self) -> int:
        """Number of input channels (columns)."""
        return int(self.weight_int.shape[1])

    @property
    def num_weights(self) -> int:
        """Total number of quantized weight parameters in the layer."""
        return int(self.weight_int.size)

    # -- dequantization ------------------------------------------------------
    def dequantized(self) -> np.ndarray:
        """Dequantize the integer weights (without undoing input smoothing)."""
        return dequantize_tensor(self.weight_int, self.scale)

    def effective_weight(self) -> np.ndarray:
        """Full-precision weight equivalent to the quantized operator.

        Undoes the input smoothing (so the weight can be applied to the
        original, unscaled activations) and re-inserts the full-precision
        outlier columns of LLM.int8().
        """
        weight = self.dequantized()
        if self.input_smoothing is not None:
            weight = weight / self.input_smoothing[None, :]
        if self.outlier_columns is not None:
            weight = weight.copy()
            weight[:, self.outlier_columns] = self.outlier_weight
        return weight

    # -- editing (used by watermarking and attacks) --------------------------
    def saturated_mask(self) -> np.ndarray:
        """Boolean mask of weights already at the minimum or maximum level.

        EmMark excludes these positions from candidate selection: adding
        ``±1`` to a saturated level would either overflow the grid or require
        clipping that destroys the signature.
        """
        return (self.weight_int <= self.grid.qmin) | (self.weight_int >= self.grid.qmax)

    def quantized_mask(self) -> np.ndarray:
        """Boolean mask of positions that actually carry quantized values.

        Outlier columns of LLM.int8() stay in full precision, so they are not
        valid carriers for an integer-domain watermark.
        """
        mask = np.ones_like(self.weight_int, dtype=bool)
        if self.outlier_columns is not None:
            mask[:, self.outlier_columns] = False
        return mask

    def add_to_weights(self, flat_indices: np.ndarray, deltas: np.ndarray) -> None:
        """Add integer ``deltas`` at flattened positions, clipping to the grid.

        This is the single mutation primitive shared by watermark insertion
        and by the perturbation attacks, so grid-overflow handling is
        identical everywhere.
        """
        flat_indices = np.asarray(flat_indices, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if flat_indices.shape != deltas.shape:
            raise ValueError("flat_indices and deltas must have the same shape")
        if not self.weight_int.flags.writeable:
            # Frozen layers (e.g. zero-copy shared-memory views in
            # process-pool workers) are strictly read-only; numpy would raise
            # on the write below, but without naming the offending layer.
            raise ValueError(
                f"layer {self.name!r} holds read-only weights (a frozen/shared "
                "view); clone the model before mutating it"
            )
        flat = self.flat_weight_view()
        flat[flat_indices] = self.grid.clip(flat[flat_indices] + deltas)

    def flat_weight_view(self) -> np.ndarray:
        """A writable 1-D view of ``weight_int``.

        ``reshape(-1)`` on a non-contiguous tensor silently returns a copy,
        so writes through it would be lost; this helper re-materializes the
        weights contiguously first when needed, guaranteeing the returned
        array aliases ``self.weight_int``.
        """
        if not self.weight_int.flags["C_CONTIGUOUS"]:
            self.weight_int = np.ascontiguousarray(self.weight_int)
        return self.weight_int.reshape(-1)

    def freeze(self) -> "QuantizedLinear":
        """Mark every array of the layer read-only (in place; returns self).

        Writes through any alias raise instead of silently corrupting shared
        state — the safety contract of the zero-copy shared-memory views the
        process-pool gauntlet hands its workers.  ``copy()`` of a frozen
        layer is writable again (``np.ndarray.copy`` never inherits the
        read-only flag), so the attack pipeline's clone-then-mutate pattern
        is unaffected.
        """
        for array in (
            self.weight_int,
            self.scale,
            self.bias,
            self.input_smoothing,
            self.outlier_columns,
            self.outlier_weight,
        ):
            if array is not None:
                array.flags.writeable = False
        return self

    def copy(self) -> "QuantizedLinear":
        """Deep copy of the layer."""
        return QuantizedLinear(
            name=self.name,
            weight_int=self.weight_int.copy(),
            scale=self.scale.copy(),
            grid=self.grid,
            bias=None if self.bias is None else self.bias.copy(),
            input_smoothing=None
            if self.input_smoothing is None
            else self.input_smoothing.copy(),
            outlier_columns=None
            if self.outlier_columns is None
            else self.outlier_columns.copy(),
            outlier_weight=None if self.outlier_weight is None else self.outlier_weight.copy(),
        )


@dataclass
class QuantizedModel:
    """A quantized simulated LLM.

    Attributes
    ----------
    config:
        Architecture of the underlying model.
    layers:
        Mapping from linear-layer name to :class:`QuantizedLinear`, in the
        canonical order produced by
        :meth:`~repro.models.transformer.TransformerLM.named_linear_layers`.
    full_precision_state:
        State-dict entries of everything that is *not* a quantized linear
        weight (embeddings, norms, biases, LM head).
    method:
        Name of the quantization algorithm that produced the model.
    bits:
        Bit width of the quantized weights.
    base_seed:
        Initialisation seed of the original model (needed to rebuild an
        architecture-identical :class:`TransformerLM` when materializing).
    """

    config: ModelConfig
    layers: Dict[str, QuantizedLinear]
    full_precision_state: Dict[str, np.ndarray]
    method: str
    bits: int
    base_seed: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- structure ------------------------------------------------------------
    def layer_names(self) -> List[str]:
        """Names of the quantized layers in canonical order."""
        return list(self.layers)

    @property
    def num_quantization_layers(self) -> int:
        """The paper's ``n``: number of quantized layers."""
        return len(self.layers)

    def iter_layers(self) -> Iterator[QuantizedLinear]:
        """Iterate over the quantized layers in canonical order."""
        return iter(self.layers.values())

    def get_layer(self, name: str) -> QuantizedLinear:
        """Look up a quantized layer by name."""
        try:
            return self.layers[name]
        except KeyError as exc:
            raise KeyError(
                f"no quantized layer named {name!r}; known layers: {self.layer_names()[:4]}..."
            ) from exc

    def total_quantized_weights(self) -> int:
        """Total number of integer weight parameters across all layers."""
        return sum(layer.num_weights for layer in self.iter_layers())

    # -- evaluation -------------------------------------------------------------
    def materialize(self) -> TransformerLM:
        """Build a full-precision model whose linears use the effective weights.

        The returned :class:`TransformerLM` computes exactly the function of
        the quantized model (dequantized weights, smoothing undone, outlier
        columns re-inserted) and can be fed to the shared evaluation harness.

        Layers recorded in ``metadata["pruned_rows"]`` (structured pruning:
        whole attention heads or MLP rows physically removed, so the integer
        tensor is narrower than the architecture) are scattered back into
        zero-filled matrices of the original shape — a removed output row
        contributes exactly nothing, which is the function a structurally
        pruned network computes.
        """
        model = TransformerLM(self.config, seed=self.base_seed)
        state = model.state_dict()
        for key, value in self.full_precision_state.items():
            state[key] = np.asarray(value, dtype=np.float64)
        pruned_rows = self.metadata.get("pruned_rows") or {}
        for name, layer in self.layers.items():
            weight = layer.effective_weight()
            bias = layer.bias
            pruning = pruned_rows.get(name)
            if pruning is not None:
                kept = np.asarray(pruning["kept_rows"], dtype=np.int64)
                full_rows = int(pruning["out_features"])
                if kept.size != weight.shape[0]:
                    raise ValueError(
                        f"pruned_rows metadata for layer {name!r} keeps {kept.size} rows "
                        f"but the layer holds {weight.shape[0]}"
                    )
                scattered = np.zeros((full_rows, weight.shape[1]))
                scattered[kept] = weight
                weight = scattered
                if bias is not None:
                    full_bias = np.zeros(full_rows)
                    full_bias[kept] = bias
                    bias = full_bias
            state[f"{name}.weight"] = weight
            if bias is not None:
                state[f"{name}.bias"] = bias
        model.load_state_dict(state)
        return model

    def freeze(self) -> "QuantizedModel":
        """Mark every layer and state array read-only (in place; returns self).

        See :meth:`QuantizedLinear.freeze`; :meth:`clone` of a frozen model
        yields a fully writable deep copy.
        """
        for layer in self.iter_layers():
            layer.freeze()
        for array in self.full_precision_state.values():
            array.flags.writeable = False
        return self

    # -- copying ---------------------------------------------------------------
    def clone(self) -> "QuantizedModel":
        """Deep copy (used before watermarking / attacking)."""
        return QuantizedModel(
            config=self.config,
            layers={name: layer.copy() for name, layer in self.layers.items()},
            full_precision_state={
                key: value.copy() for key, value in self.full_precision_state.items()
            },
            method=self.method,
            bits=self.bits,
            base_seed=self.base_seed,
            metadata=dict(self.metadata),
        )

    def integer_weight_snapshot(self) -> Dict[str, np.ndarray]:
        """Copy of every layer's integer weights, keyed by layer name.

        Watermark keys store this snapshot as the reference ``W`` used during
        extraction (Equation 6: ``ΔW = W' − W``).
        """
        return {name: layer.weight_int.copy() for name, layer in self.layers.items()}

    def weight_difference(self, other: "QuantizedModel") -> Dict[str, np.ndarray]:
        """Element-wise integer difference ``self − other`` per layer."""
        if self.layer_names() != other.layer_names():
            raise ValueError("models have different layer sets; cannot diff")
        return {
            name: self.layers[name].weight_int - other.layers[name].weight_int
            for name in self.layers
        }
