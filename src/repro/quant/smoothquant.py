"""SmoothQuant: migrating activation outliers into the weights (INT8).

SmoothQuant [Xiao et al., ICML 2023] observes that LLM activations have a few
channels with very large magnitudes while weights are comparatively flat.  It
applies a mathematically equivalent per-channel rescaling

``y = (x / s) (s ⊙ W)``

with ``s_j = max|x_j|^α / max|W_{:,j}|^{1-α}`` so that the activation outliers
shrink and the corresponding weight columns grow, making *both* tensors easy
to quantize to INT8.  The paper uses SmoothQuant to produce the INT8 OPT
models that EmMark watermarks.

This implementation stores the smoothing vector on the
:class:`~repro.quant.base.QuantizedLinear` so that
``effective_weight`` can undo it, reproducing the equivalent full-precision
operator for evaluation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.activations import ActivationStats
from repro.quant.base import QuantizedLinear, quantize_tensor
from repro.quant.quantizer import BaseQuantizer

__all__ = ["SmoothQuantQuantizer"]


class SmoothQuantQuantizer(BaseQuantizer):
    """SmoothQuant weight quantization.

    Parameters
    ----------
    bits:
        Bit width; the original paper targets INT8.
    migration_strength:
        The α of the smoothing formula; 0.5 is the value recommended by the
        SmoothQuant authors and used here by default.
    per_channel:
        Per-output-channel step sizes for the final rounding step.
    """

    method_name = "smoothquant"
    requires_activations = True

    def __init__(
        self,
        bits: int = 8,
        migration_strength: float = 0.5,
        per_channel: bool = True,
    ) -> None:
        super().__init__(bits=bits, per_channel=per_channel)
        if not 0.0 <= migration_strength <= 1.0:
            raise ValueError("migration_strength must be in [0, 1]")
        self.migration_strength = float(migration_strength)

    def _smoothing_factors(self, name: str, weight: np.ndarray, activations: ActivationStats) -> np.ndarray:
        """Per-input-channel smoothing factors ``s`` (always positive)."""
        act_max = np.asarray(activations.maximum.get(name, activations.mean_abs[name]))
        act_max = np.maximum(act_max, 1e-8)
        weight_max = np.maximum(np.max(np.abs(weight), axis=0), 1e-8)
        alpha = self.migration_strength
        factors = np.power(act_max, alpha) / np.power(weight_max, 1.0 - alpha)
        # Guard against degenerate factors that would blow up or zero out
        # columns; SmoothQuant clamps in practice as well.
        return np.clip(factors, 1e-4, 1e4)

    def _quantize_layer(
        self,
        name: str,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        activations: Optional[ActivationStats],
    ) -> QuantizedLinear:
        assert activations is not None  # guaranteed by BaseQuantizer.quantize
        factors = self._smoothing_factors(name, weight, activations)
        smoothed_weight = weight * factors[None, :]
        weight_int, scale = quantize_tensor(
            smoothed_weight, self.grid, per_channel=self.per_channel
        )
        return QuantizedLinear(
            name=name,
            weight_int=weight_int,
            scale=scale,
            grid=self.grid,
            bias=bias,
            input_smoothing=factors,
        )
