"""Thread-safe LRU cache for :class:`~repro.engine.plan.LocationPlan` objects.

The cache is the heart of the engine's "score once, reuse everywhere"
behaviour: insertion warms it, and every later extraction / ownership
verification / attack-sweep evaluation against the same key is a pure lookup
(zero rescoring — asserted by the engine test-suite via the hit/miss
counters exposed here).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.engine.plan import LocationPlan

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of cache traffic."""

    hits: int
    misses: int
    evictions: int
    entries: int
    max_entries: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-able counter snapshot (used by the service ``/stats`` endpoint)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "max_entries": self.max_entries,
            "hit_rate": self.hit_rate,
        }

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Traffic accumulated since an ``earlier`` snapshot."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            entries=self.entries,
            max_entries=self.max_entries,
        )


class PlanCache:
    """A bounded, thread-safe, least-recently-used plan cache.

    Parameters
    ----------
    max_entries:
        Capacity bound; the least recently *used* plan is evicted when a new
        plan would exceed it.  Each entry holds one layer's candidate pool and
        locations (a few KB for the simulated models), so the default
        comfortably covers many models' worth of layers.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, LocationPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- lookups ------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[LocationPlan]:
        """Return the cached plan for ``fingerprint`` (counts a hit/miss)."""
        with self._lock:
            plan = self._entries.get(fingerprint)
            if plan is None:
                self._misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self._hits += 1
            return plan

    def put(self, fingerprint: str, plan: LocationPlan) -> None:
        """Insert (or refresh) a plan, evicting the LRU entry if over capacity."""
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                self._entries[fingerprint] = plan
                return
            self._entries[fingerprint] = plan
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_compute(
        self, fingerprint: str, factory: Callable[[], LocationPlan]
    ) -> LocationPlan:
        """Cached plan for ``fingerprint``, computing it on a miss.

        The factory runs outside the lock so concurrent layers never serialize
        on each other's scoring work; two threads racing on the *same*
        fingerprint would both compute the identical plan (the computation is
        a pure function of the fingerprinted inputs) and the second insert is
        a harmless refresh.
        """
        plan = self.get(fingerprint)
        if plan is not None:
            return plan
        plan = factory()
        self.put(fingerprint, plan)
        return plan

    # -- bookkeeping ---------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    @property
    def hits(self) -> int:
        """Number of lookups served from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of lookups that required a fresh computation."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of plans dropped due to the capacity bound."""
        return self._evictions

    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                max_entries=self.max_entries,
            )

    def clear(self) -> None:
        """Drop every cached plan (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def reset_lock(self) -> None:
        """Replace the internal lock without touching entries or counters.

        Fork hygiene only (see ``repro.engine.engine._reset_engines_after_fork``):
        a child forked while another parent thread held the lock would
        deadlock on its first cache access, so the inherited lock object is
        swapped for a fresh one.  Never call this in a process with live
        threads using the cache.
        """
        self._lock = threading.Lock()
