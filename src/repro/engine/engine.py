"""The unified watermarking engine.

:class:`WatermarkEngine` is the single shared execution substrate underneath
every watermark pipeline in the repository: EmMark insertion and extraction,
the ownership-verification entry points, the baseline watermarkers' parallel
layer loops, and the attack/ablation experiment sweeps.  It combines three
mechanisms:

1. **Cached location plans** — scoring + seeded sub-sampling per layer is a
   pure function of its inputs, so the engine memoizes each
   :class:`~repro.engine.plan.LocationPlan` in an LRU
   :class:`~repro.engine.cache.PlanCache` keyed by a content fingerprint.
   Insertion warms the cache; every later extraction or verification against
   the same key performs **zero rescoring**.
2. **Fused top-k scoring** — planning calls the
   :func:`repro.core.scoring.select_candidates` kernel, which ranks with
   ``np.argpartition`` + a stable pool sort and keeps exclusions as boolean
   masks (see :mod:`repro.core.scoring`).
3. **A parallel layer executor** — independent layers are scored, inserted
   and matched concurrently on a configurable thread pool (NumPy releases the
   GIL inside the heavy kernels).

On top of the single-model operations the engine exposes the batch serving
API used by the "millions of users" verification workload:

>>> engine = WatermarkEngine()
>>> report = engine.verify_fleet({"deploy-a": suspect_a, "deploy-b": suspect_b},
...                              {"owner": key})
>>> [pair.suspect_id for pair in report.owned_pairs()]
['deploy-a']

and ``engine.insert_batch({...})`` for watermarking many models in one call.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, TypeVar, Union

import numpy as np

from repro.core.config import EmMarkConfig
from repro.core.keys import WatermarkKey
from repro.core.scoring import select_candidates
from repro.core.signature import (
    generate_signature,
    split_signature_per_layer,
    validate_signature,
)
from repro.engine.allocator import SlotAllocator
from repro.engine.cache import CacheStats, PlanCache
from repro.engine.plan import LocationPlan, plan_fingerprint
from repro.engine.reports import (
    DEFAULT_MAX_FALSE_CLAIM_PROBABILITY,
    DEFAULT_OWNERSHIP_THRESHOLD,
    BatchInsertionItem,
    BatchInsertionResult,
    ExtractionResult,
    FleetVerificationReport,
    InsertionReport,
    MultiOwnerInsertionResult,
    OwnerInsertion,
    PairVerification,
)
from repro.models.activations import ActivationStats
from repro.obs.trace import span
from repro.quant.base import QuantizationGrid, QuantizedLinear, QuantizedModel
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

__all__ = [
    "EngineConfig",
    "WatermarkEngine",
    "FleetVerificationSession",
    "get_default_engine",
    "set_default_engine",
    "configure_default_engine",
    "derive_owner_configs",
    "verify_fleet",
    "insert_batch",
]

logger = get_logger("engine")

_T = TypeVar("_T")
_R = TypeVar("_R")

ModelGroup = Union[QuantizedModel, Sequence[QuantizedModel], Mapping[str, QuantizedModel]]
KeyGroup = Union[WatermarkKey, Sequence[WatermarkKey], Mapping[str, WatermarkKey]]


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of a :class:`WatermarkEngine`.

    Attributes
    ----------
    max_workers:
        Thread-pool width for the per-layer fan-out.  ``None`` resolves to
        the ``REPRO_ENGINE_WORKERS`` environment variable, falling back to
        ``min(8, cpu_count)``; ``1`` forces fully serial execution.
    plan_cache_entries:
        Capacity of the LRU :class:`~repro.engine.cache.PlanCache`.
    parallel_threshold:
        Minimum number of independent work items before the thread pool is
        engaged (tiny models aren't worth the dispatch overhead).
    """

    max_workers: Optional[int] = None
    plan_cache_entries: int = 256
    parallel_threshold: int = 2

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None for auto)")
        if self.plan_cache_entries < 1:
            raise ValueError("plan_cache_entries must be >= 1")
        if self.parallel_threshold < 2:
            raise ValueError("parallel_threshold must be >= 2")

    def resolved_workers(self) -> int:
        """The worker count after applying the environment override."""
        if self.max_workers is not None:
            return self.max_workers
        env = os.environ.get("REPRO_ENGINE_WORKERS")
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                logger.warning("ignoring non-integer REPRO_ENGINE_WORKERS=%r", env)
        return max(1, min(8, os.cpu_count() or 1))


def _named_items(group, prefix: str) -> List[Tuple[str, object]]:
    """Normalize a model/key group into ``(id, item)`` pairs."""
    if isinstance(group, Mapping):
        return list(group.items())
    if isinstance(group, (list, tuple)):
        return [(f"{prefix}-{index}", item) for index, item in enumerate(group)]
    return [(f"{prefix}-0", group)]


class FleetVerificationSession:
    """Incremental fleet verification: register keys once, stream suspects.

    The batched :meth:`WatermarkEngine.verify_fleet` needs every suspect in
    memory before the sweep starts, which pins a whole grid of attacked
    models at once.  A session inverts the control flow: keys are registered
    up front (or added as they appear), each key's location plans are
    reproduced **exactly once** — lazily, on the first suspect that needs
    them — and :meth:`verify` turns one ``(suspect, key)`` pair into a
    :class:`~repro.engine.reports.PairVerification` the moment the suspect
    exists.  The caller can then drop the suspect immediately, so a
    streaming pipeline holds O(in-flight suspects), not O(fleet size).

    Thread safety: :meth:`verify` and :meth:`add_key` may be called from
    concurrent workers.  Location reproduction is guarded per key (two
    workers racing on a cold key reproduce it once; one blocks), and the
    match pass itself only reads.

    Decisions are bit-identical to a batched sweep over the same pairs —
    both paths share :meth:`WatermarkEngine.reproduce_locations` and the
    pure integer-comparison matcher.

    Created via :meth:`WatermarkEngine.verification_session`; ``verify_fleet``
    itself runs on a session internally.
    """

    def __init__(
        self,
        engine: "WatermarkEngine",
        keys: Optional[Mapping[str, WatermarkKey]] = None,
        wer_threshold: float = DEFAULT_OWNERSHIP_THRESHOLD,
        max_false_claim_probability: Optional[float] = DEFAULT_MAX_FALSE_CLAIM_PROBABILITY,
    ) -> None:
        self._engine = engine
        self.wer_threshold = float(wer_threshold)
        self.max_false_claim_probability = max_false_claim_probability
        self._keys: Dict[str, WatermarkKey] = {}
        self._locations: Dict[str, Dict[str, np.ndarray]] = {}
        self._key_locks: Dict[str, threading.Lock] = {}
        self._registry_lock = threading.Lock()
        self._stats_at_open = engine.cache.stats()
        self._opened_at = time.perf_counter()
        for key_id, key in (keys or {}).items():
            self.add_key(key_id, key)

    def add_key(self, key_id: str, key: WatermarkKey) -> None:
        """Register (idempotently) a key under ``key_id``.

        Re-registering the same object is a no-op; binding a *different* key
        to an existing id is an error — it would silently change what already
        -issued verdicts meant.
        """
        with self._registry_lock:
            existing = self._keys.get(key_id)
            if existing is not None and existing is not key:
                raise ValueError(
                    f"key id {key_id!r} is already bound to a different key in this session"
                )
            self._keys[key_id] = key
            self._key_locks.setdefault(key_id, threading.Lock())

    def key_ids(self) -> List[str]:
        """Ids of the registered keys (insertion order)."""
        with self._registry_lock:
            return list(self._keys)

    def preload_locations(
        self, key_id: str, locations: Mapping[str, np.ndarray]
    ) -> None:
        """Seed a registered key's reproduced locations instead of computing them.

        Process-pool gauntlet workers receive each key's locations
        precomputed once by the parent — small per-layer index arrays, cheap
        to ship — so no worker repeats the scoring pass.  Verdicts are
        bit-identical to a locally reproduced run because :meth:`verify`
        consumes the mapping verbatim, and location reproduction is itself a
        pure function of the key.
        """
        with self._registry_lock:
            if key_id not in self._keys:
                raise KeyError(f"unknown key id {key_id!r}; register the key first")
            lock = self._key_locks[key_id]
        with lock:
            self._locations[key_id] = {
                name: np.asarray(locs, dtype=np.int64)
                for name, locs in locations.items()
            }

    def locations(self, key_id: str) -> Dict[str, np.ndarray]:
        """The (per-session memoized) reproduced locations of one key."""
        cached = self._locations.get(key_id)
        if cached is not None:
            return cached
        with self._registry_lock:
            try:
                key = self._keys[key_id]
            except KeyError as exc:
                raise KeyError(
                    f"unknown key id {key_id!r}; registered: {list(self._keys)[:4]}"
                ) from exc
            lock = self._key_locks[key_id]
        with lock:
            cached = self._locations.get(key_id)
            if cached is None:
                cached = self._engine.reproduce_locations(key)
                self._locations[key_id] = cached
        return cached

    def _evaluate_pair(
        self,
        suspect_id: str,
        suspect: QuantizedModel,
        key: WatermarkKey,
        key_id: str,
        key_locations: Dict[str, np.ndarray],
    ) -> PairVerification:
        pair_start = time.perf_counter()
        result = self._engine._match_locations(
            suspect, key, key_locations, strict_layout=False, wall_start=pair_start
        )
        owned = result.wer_percent >= self.wer_threshold and (
            self.max_false_claim_probability is None
            or result.false_claim_probability <= self.max_false_claim_probability
        )
        return PairVerification(
            suspect_id=suspect_id,
            key_id=key_id,
            total_bits=result.total_bits,
            matched_bits=result.matched_bits,
            wer_percent=result.wer_percent,
            false_claim_probability=result.false_claim_probability,
            owned=owned,
            seconds=time.perf_counter() - pair_start,
        )

    def verify(
        self, suspect_id: str, suspect: QuantizedModel, key_id: str
    ) -> PairVerification:
        """Verify one suspect against one registered key, right now.

        Returns the same evidence a batched ``verify_fleet`` sweep would
        produce for the pair.  The suspect is not retained — the caller may
        release it as soon as this returns.
        """
        with span("engine.verify_pair", suspect=suspect_id, key=key_id):
            key_locations = self.locations(key_id)
            with self._registry_lock:
                key = self._keys[key_id]
            return self._evaluate_pair(suspect_id, suspect, key, key_id, key_locations)

    def verify_once(
        self, suspect_id: str, suspect: QuantizedModel, key: WatermarkKey, key_id: str
    ) -> PairVerification:
        """Verify against a one-shot key without registering anything.

        For keys that will never be consulted again (e.g. a re-watermarking
        cell's per-attack adversary key): the evidence is bit-identical to
        :meth:`verify` on a registered key, but neither the key — whose
        reference weights are a full model-size snapshot — nor its
        reproduced locations are retained in the session, so streaming
        pipelines stay O(in-flight suspects) even when every cell brings its
        own key.  (Layer plans still land in the engine's bounded LRU cache,
        so a key that *does* come back is still served warm.)
        """
        key_locations = self._engine.reproduce_locations(key)
        return self._evaluate_pair(suspect_id, suspect, key, key_id, key_locations)

    def cache_traffic(self) -> CacheStats:
        """Plan-cache traffic since the session opened (delta counters).

        Counts everything the underlying engine served in the interval, so
        if attacks or insertions share the engine their traffic is included.
        """
        return self._engine.cache.stats().delta(self._stats_at_open)

    def report(self, pairs: Sequence[PairVerification]) -> FleetVerificationReport:
        """Wrap verified pairs into a report with session-wide cache traffic."""
        traffic = self.cache_traffic()
        return FleetVerificationReport(
            pairs=list(pairs),
            wall_clock_seconds=time.perf_counter() - self._opened_at,
            cache_hits=traffic.hits,
            cache_misses=traffic.misses,
            cache_evictions=traffic.evictions,
        )


class WatermarkEngine:
    """Shared cached + parallel execution engine for watermark pipelines.

    Parameters
    ----------
    config:
        Engine tuning; defaults to :class:`EngineConfig` defaults.
    cache:
        An externally owned :class:`~repro.engine.cache.PlanCache` to share
        between engines; a private cache is created when omitted.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        cache: Optional[PlanCache] = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        # `is not None`, not truthiness: an empty PlanCache has len() == 0.
        self.cache = (
            cache if cache is not None else PlanCache(max_entries=self.config.plan_cache_entries)
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        _live_engines.add(self)

    # ------------------------------------------------------------------
    # Parallel infrastructure
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Resolved thread-pool width."""
        return self.config.resolved_workers()

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="wm-engine"
                )
            return self._executor

    def map_layers(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        """Apply ``fn`` to independent work items, in parallel when worthwhile.

        Results preserve input order and the first raised exception propagates
        unchanged, so callers observe serial semantics.  ``fn`` must not call
        back into :meth:`map_layers` (nested fan-out on a bounded pool can
        deadlock); the batch APIs therefore parallelize only at the layer
        level.
        """
        items = list(items)
        if self.workers <= 1 or len(items) < self.config.parallel_threshold:
            return [fn(item) for item in items]
        return list(self._pool().map(fn, items))

    def close(self) -> None:
        """Shut down the thread pool (idempotent; the pool respawns on use)."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def __enter__(self) -> "WatermarkEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Location planning (cached)
    # ------------------------------------------------------------------
    def plan_for_layer(
        self,
        layer: QuantizedLinear,
        channel_activations: np.ndarray,
        bits_needed: int,
        config: EmMarkConfig,
        occupied: Optional[np.ndarray] = None,
    ) -> LocationPlan:
        """The (cached) location plan of one layer.

        Computes the candidate pool (fused scoring + ``argpartition`` top-k)
        and the seed-``d`` sub-sample exactly once per distinct input
        fingerprint; insertion, extraction and every verification path call
        this method, which is what guarantees they agree on locations.

        ``occupied`` lists flat indices already claimed by co-resident
        watermarks (see :class:`~repro.engine.allocator.SlotAllocator`): the
        pool deterministically re-ranks past them, so co-resident plans are
        disjoint by construction.  ``None``/empty is the virgin-model path —
        bit-identical plans and fingerprints to an occupancy-free call.
        """
        pool_size = config.candidate_pool_size(layer.num_weights)
        if occupied is not None:
            occupied = np.asarray(occupied, dtype=np.int64)
            if occupied.size == 0:
                occupied = None
        fingerprint = plan_fingerprint(
            layer_name=layer.name,
            grid_bits=layer.grid.bits,
            weight_int=layer.weight_int,
            outlier_columns=layer.outlier_columns,
            channel_activations=channel_activations,
            alpha=config.alpha,
            beta=config.beta,
            seed=config.seed,
            exclude_saturated=config.exclude_saturated,
            pool_size=pool_size,
            bits_needed=bits_needed,
            occupied=occupied,
        )
        return self.cache.get_or_compute(
            fingerprint,
            lambda: self._compute_plan(
                layer, channel_activations, bits_needed, config, pool_size, fingerprint,
                occupied,
            ),
        )

    def _compute_plan(
        self,
        layer: QuantizedLinear,
        channel_activations: np.ndarray,
        bits_needed: int,
        config: EmMarkConfig,
        pool_size: int,
        fingerprint: str,
        occupied: Optional[np.ndarray] = None,
    ) -> LocationPlan:
        start = time.perf_counter()
        with span("engine.plan", layer=layer.name, bits=bits_needed):
            # Re-rank past occupied slots: the top-k ranking is extended by the
            # occupancy size so that after dropping occupied positions the pool
            # is still the |B_c| best *free* positions (in the same ascending
            # score order a virgin ranking would give them).  Zero occupancy
            # degenerates to the exact pre-allocator pipeline.
            extension = 0 if occupied is None else int(occupied.size)
            with span("engine.score_topk", layer=layer.name):
                scores = select_candidates(
                    layer,
                    channel_activations,
                    alpha=config.alpha,
                    beta=config.beta,
                    pool_size=pool_size + extension,
                    exclude_saturated=config.exclude_saturated,
                )
            candidates = scores.candidate_indices
            if occupied is not None:
                candidates = candidates[~np.isin(candidates, occupied)][:pool_size]
            if candidates.size < bits_needed:
                raise ValueError(
                    f"layer {layer.name!r} offers only {candidates.size} candidate positions "
                    f"but {bits_needed} signature bits were requested; lower bits_per_layer"
                )
            rng = new_rng(config.seed, "selection", layer.name)
            chosen = rng.choice(candidates, size=bits_needed, replace=False)
        return LocationPlan(
            layer_name=layer.name,
            fingerprint=fingerprint,
            candidate_indices=candidates,
            locations=np.asarray(chosen, dtype=np.int64),
            pool_size=int(candidates.size),
            num_weights=layer.num_weights,
            compute_seconds=time.perf_counter() - start,
        )

    def locations_for_layer(
        self,
        layer: QuantizedLinear,
        channel_activations: np.ndarray,
        bits_needed: int,
        config: EmMarkConfig,
        occupied: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Watermark positions of one layer (flattened indices, cached)."""
        return self.plan_for_layer(
            layer, channel_activations, bits_needed, config, occupied=occupied
        ).locations

    def cache_info(self) -> CacheStats:
        """Snapshot of the plan-cache counters."""
        return self.cache.stats()

    def cache_stats(self) -> Dict[str, object]:
        """JSON-able plan-cache counters (hit/miss/eviction, size, hit rate).

        This is the serving-observability surface: the verification service's
        ``/stats`` endpoint reports it verbatim so cache efficacy is visible
        under live traffic.
        """
        return self.cache.stats().to_dict()

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(
        self,
        model: QuantizedModel,
        activations: ActivationStats,
        config: Optional[EmMarkConfig] = None,
        signature: Optional[np.ndarray] = None,
        in_place: bool = False,
        occupied: "Optional[Union[SlotAllocator, Mapping[str, np.ndarray]]]" = None,
        owner: Optional[str] = None,
    ) -> Tuple[QuantizedModel, WatermarkKey, InsertionReport]:
        """Insert an EmMark watermark into ``model`` (layers in parallel).

        Semantically identical to the paper pipeline (Section 4.1); see
        :func:`repro.core.insertion.insert_watermark` for the parameter
        documentation.  The engine additionally memoizes each layer's
        location plan, so a follow-up :meth:`extract` against the returned
        key is pure cache lookups.

        ``occupied`` makes the insertion *co-resident aware*: a
        :class:`~repro.engine.allocator.SlotAllocator` (or a plain
        ``{layer: flat indices}`` mapping) naming the slots earlier owners
        already hold.  Planning re-ranks past those slots, so the new
        signature lands on a disjoint pool; the occupancy the key was
        planned under is recorded in ``key.metadata["occupied_slots"]`` so
        extraction reproduces the same re-ranked plan from the key alone.
        When an allocator is passed, the new key's slots are claimed on it
        (under ``owner``, when given) before returning — handing the same
        allocator to the next insertion is all multi-tenancy takes.  An
        empty occupancy is bit-identical to omitting the argument.
        """
        wall_start = time.perf_counter()
        stats_before = self.cache.stats()
        if config is None:
            config = EmMarkConfig.scaled_for_model(model)
        allocator = occupied if isinstance(occupied, SlotAllocator) else None
        # Explicit emptiness test: an empty mapping means "no occupancy",
        # while `if occupied:` would conflate that with None (REP002).
        if allocator is None and occupied is not None and len(occupied) > 0:
            allocator_view = SlotAllocator(occupied=occupied)
        else:
            allocator_view = allocator
        # Occupancy is snapshotted before planning: the parallel layer
        # fan-out must see one consistent view, and the key must record the
        # occupancy its plans were computed under (not the post-claim state).
        occupancy_snapshot: Dict[str, np.ndarray] = (
            allocator_view.snapshot() if allocator_view is not None else {}
        )
        layer_names = model.layer_names()
        total_bits = config.total_bits(len(layer_names))
        if signature is None:
            signature = generate_signature(total_bits, config.signature_seed)
        else:
            signature = validate_signature(signature)
            if signature.size != total_bits:
                raise ValueError(
                    f"signature has {signature.size} bits but the configuration requires {total_bits}"
                )
        per_layer_signature = split_signature_per_layer(
            signature, layer_names, config.bits_per_layer
        )

        missing_activations = [
            name for name in layer_names if name not in activations.mean_abs
        ]
        if missing_activations:
            raise ValueError(
                "activation statistics missing for layers: "
                f"{missing_activations[:4]} — collect stats with the full-precision model"
            )

        watermarked = model if in_place else model.clone()
        reference_weights = model.integer_weight_snapshot()

        def watermark_layer(name: str) -> Tuple[str, int, float, np.ndarray]:
            # thread_time, not perf_counter: with concurrent layers a wall
            # span would include the other workers' GIL and memory-bandwidth
            # contention; Table 2's per-layer metric is the layer's own CPU
            # cost, which must not depend on the worker count.
            start = time.thread_time()
            layer = watermarked.get_layer(name)
            layer_signature = per_layer_signature[name]
            plan = self.plan_for_layer(
                layer,
                activations.channel_saliency(name),
                layer_signature.size,
                config,
                occupied=occupancy_snapshot.get(name),
            )
            layer.add_to_weights(plan.locations, layer_signature)
            return name, plan.pool_size, time.thread_time() - start, plan.locations

        with span("engine.insert", model=model.config.name, layers=len(layer_names)):
            results = self.map_layers(watermark_layer, layer_names)
        per_layer_seconds = [seconds for _, _, seconds, _ in results]
        pool_sizes = {name: pool for name, pool, _, _ in results}
        locations = {name: locs for name, _, _, locs in results}

        metadata: Dict[str, object] = {}
        if occupancy_snapshot:
            metadata["occupied_slots"] = {
                name: [int(i) for i in idx] for name, idx in occupancy_snapshot.items()
            }
        if allocator_view is not None and not allocator_view.is_empty:
            co_residents = [
                label
                for label in allocator_view.owners()
                if label != SlotAllocator.ANONYMOUS
            ]
            if co_residents:
                metadata["co_residents"] = co_residents
        if allocator is not None:
            # Claim on the *caller's* allocator only — a plain mapping was
            # wrapped in a throwaway view and has nothing durable to update.
            for name, locs in locations.items():
                allocator.claim(name, locs, owner=owner or SlotAllocator.ANONYMOUS)

        outlier_columns = {
            name: layer.outlier_columns.copy()
            for name, layer in model.layers.items()
            if layer.outlier_columns is not None
        }
        key = WatermarkKey(
            signature=signature,
            config=config,
            reference_weights=reference_weights,
            activations=activations,
            layer_names=layer_names,
            method=model.method,
            bits=model.bits,
            model_name=model.config.name,
            outlier_columns=outlier_columns,
            metadata=metadata,
        )
        traffic = self.cache.stats().delta(stats_before)
        report = InsertionReport(
            total_bits=total_bits,
            num_layers=len(layer_names),
            per_layer_seconds=per_layer_seconds,
            candidate_pool_sizes=pool_sizes,
            wall_clock_seconds=time.perf_counter() - wall_start,
            parallel_workers=self.workers,
            cache_hits=traffic.hits,
            cache_misses=traffic.misses,
        )
        logger.debug(
            "inserted %d bits into %d layers of %s (%s INT%d) in %.3fs wall "
            "(%.3fs per-layer CPU, %d workers, cache %d/%d hit/miss)",
            total_bits,
            len(layer_names),
            model.config.name,
            model.method,
            model.bits,
            report.wall_clock_seconds,
            report.total_seconds,
            report.parallel_workers,
            report.cache_hits,
            report.cache_misses,
        )
        return watermarked, key, report

    # ------------------------------------------------------------------
    # Extraction / verification
    # ------------------------------------------------------------------
    def _reference_layer_view(self, key: WatermarkKey, name: str) -> QuantizedLinear:
        """Rebuild the insertion-time view of one layer from key material."""
        grid = QuantizationGrid(key.bits if key.bits else 8)
        reference = key.reference_weights[name]
        outliers = key.outlier_columns.get(name)
        outlier_weight = (
            np.zeros((reference.shape[0], outliers.size)) if outliers is not None else None
        )
        return QuantizedLinear(
            name=name,
            weight_int=reference,
            scale=np.ones((reference.shape[0], 1)),
            grid=grid,
            outlier_columns=outliers,
            outlier_weight=outlier_weight,
        )

    def reproduce_locations(self, key: WatermarkKey) -> Dict[str, np.ndarray]:
        """Recompute the watermark locations ``L`` from the key alone.

        The key carries the original quantized weights ``W``, the
        full-precision activations ``A_f``, the coefficients α/β and the seed
        ``d`` — everything the scoring + sub-sampling pipeline consumed during
        insertion — so the reproduced locations are identical to the inserted
        ones.  Keys planned under co-resident occupancy additionally carry
        that occupancy in ``metadata["occupied_slots"]``; it is replayed
        here, so every co-resident owner's locations reproduce independently
        and exactly.  Plans are served from the cache whenever this key (or
        the insertion that created it) has been seen before.
        """
        occupied_slots = key.metadata.get("occupied_slots") or {}

        def reproduce(name: str) -> Tuple[str, np.ndarray]:
            layer_view = self._reference_layer_view(key, name)
            occupied = occupied_slots.get(name)
            plan = self.plan_for_layer(
                layer_view,
                key.activations.channel_saliency(name),
                key.config.bits_per_layer,
                key.config,
                occupied=None if occupied is None else np.asarray(occupied, dtype=np.int64),
            )
            return name, plan.locations

        with span("engine.reproduce_locations", layers=len(key.layer_names)):
            return dict(self.map_layers(reproduce, key.layer_names))

    def _match_locations(
        self,
        suspect: QuantizedModel,
        key: WatermarkKey,
        locations: Dict[str, np.ndarray],
        strict_layout: bool,
        wall_start: float,
    ) -> ExtractionResult:
        """Pure integer-comparison pass: match the suspect at known locations.

        No scoring, no hashing — this is the per-suspect cost of a fleet
        sweep once a key's locations are reproduced.
        """
        matched = 0
        total = 0
        per_layer_wer: Dict[str, float] = {}
        for name in key.layer_names:
            layer_signature = key.signature_for_layer(name)
            total += layer_signature.size
            if name not in suspect.layers:
                if strict_layout:
                    raise KeyError(f"suspect model has no quantized layer named {name!r}")
                per_layer_wer[name] = 0.0
                continue
            suspect_layer = suspect.get_layer(name)
            reference = key.reference_weights[name]
            if suspect_layer.weight_int.shape != reference.shape:
                if strict_layout:
                    raise ValueError(
                        f"layer {name!r} shape mismatch: suspect {suspect_layer.weight_int.shape} "
                        f"vs reference {reference.shape}"
                    )
                per_layer_wer[name] = 0.0
                continue
            layer_locations = locations[name]
            delta = (
                suspect_layer.weight_int.reshape(-1)[layer_locations]
                - reference.reshape(-1)[layer_locations]
            )
            layer_matches = int(np.sum(delta == layer_signature))
            matched += layer_matches
            per_layer_wer[name] = 100.0 * layer_matches / layer_signature.size
        return ExtractionResult.from_counts(
            total_bits=total,
            matched_bits=matched,
            per_layer_wer=per_layer_wer,
            # Shallow copy: fleet sweeps reuse one locations dict per key,
            # and each result should own its mapping (the arrays themselves
            # are cached read-only plans).
            locations=dict(locations),
            wall_clock_seconds=time.perf_counter() - wall_start,
        )

    def extract(
        self,
        suspect: QuantizedModel,
        key: WatermarkKey,
        strict_layout: bool = True,
    ) -> ExtractionResult:
        """Extract the watermark from ``suspect`` and compare it with the key.

        Location reproduction runs in parallel across layers and is served
        from the plan cache when warm (zero rescoring for previously verified
        keys); the signature match is a cheap integer-comparison pass.  See
        :func:`repro.core.extraction.extract_watermark` for parameter
        documentation.
        """
        wall_start = time.perf_counter()
        locations = self.reproduce_locations(key)
        result = self._match_locations(suspect, key, locations, strict_layout, wall_start)
        logger.debug("extraction from %s: %s", suspect.config.name, result.summary())
        return result

    def verify(
        self,
        suspect: QuantizedModel,
        key: WatermarkKey,
        wer_threshold: float = DEFAULT_OWNERSHIP_THRESHOLD,
        max_false_claim_probability: Optional[float] = DEFAULT_MAX_FALSE_CLAIM_PROBABILITY,
    ) -> bool:
        """Ownership verdict: does ``suspect`` carry the owner's watermark?

        The claim is asserted when the extraction rate reaches
        ``wer_threshold`` percent *and* (optionally) the false-claim
        probability of the observed match count is below
        ``max_false_claim_probability``.
        """
        result = self.extract(suspect, key, strict_layout=False)
        if result.wer_percent < wer_threshold:
            return False
        if (
            max_false_claim_probability is not None
            and result.false_claim_probability > max_false_claim_probability
        ):
            return False
        return True

    # ------------------------------------------------------------------
    # Batch serving APIs
    # ------------------------------------------------------------------
    def verification_session(
        self,
        keys: Optional[Mapping[str, WatermarkKey]] = None,
        wer_threshold: float = DEFAULT_OWNERSHIP_THRESHOLD,
        max_false_claim_probability: Optional[float] = DEFAULT_MAX_FALSE_CLAIM_PROBABILITY,
    ) -> FleetVerificationSession:
        """Open an incremental :class:`FleetVerificationSession` on this engine.

        The streaming counterpart of :meth:`verify_fleet`: register keys up
        front (or :meth:`~FleetVerificationSession.add_key` them as they
        appear), then call :meth:`~FleetVerificationSession.verify` per
        ``(suspect, key)`` pair as suspects materialize, releasing each
        suspect immediately afterwards.  Per-key location reproduction still
        happens exactly once per session (and is served from the plan cache
        across sessions).
        """
        return FleetVerificationSession(
            self,
            keys=keys,
            wer_threshold=wer_threshold,
            max_false_claim_probability=max_false_claim_probability,
        )

    def verify_fleet(
        self,
        suspects: ModelGroup,
        keys: KeyGroup,
        wer_threshold: float = DEFAULT_OWNERSHIP_THRESHOLD,
        max_false_claim_probability: Optional[float] = DEFAULT_MAX_FALSE_CLAIM_PROBABILITY,
        pairs: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> FleetVerificationReport:
        """Screen a fleet of suspect models against a set of owner keys.

        Every ``(suspect, key)`` pair in the cross product is extracted and
        thresholded; this is the bulk ownership-verification workload (many
        deployed models × many registered owners).  Suspects and keys can be
        a single object, a sequence (auto-named ``suspect-0`` …) or a mapping
        of explicit ids.

        Per-key work is done exactly once: each key's locations are
        reproduced a single time (cached plans, parallel layers, one
        fingerprint hash per layer), after which every suspect in the fleet
        is a pure integer-comparison pass against those locations.

        Parameters
        ----------
        pairs:
            Optional explicit ``(suspect_id, key_id)`` pairs to evaluate
            instead of the full cross product.  This is the micro-batching
            hook used by the verification service: coalesced requests that
            each target different keys share one sweep without paying for
            pairs nobody asked about.  Each listed pair is verified exactly
            as it would be in a full sweep (bit-identical evidence and
            verdicts); keys with no requested pair skip location reproduction
            entirely.

        Returns
        -------
        FleetVerificationReport
            One :class:`~repro.engine.reports.PairVerification` per pair plus
            sweep-level wall-clock and cache-traffic figures.
        """
        suspect_items = _named_items(suspects, "suspect")
        key_items = _named_items(keys, "key")
        requested: Optional[set] = None
        if pairs is not None:
            requested = set(pairs)
            known_suspects = {sid for sid, _ in suspect_items}
            known_keys = {kid for kid, _ in key_items}
            unknown = [
                pair
                for pair in requested
                if pair[0] not in known_suspects or pair[1] not in known_keys
            ]
            if unknown:
                raise KeyError(f"verify_fleet pairs reference unknown ids: {sorted(unknown)[:4]}")
        # The batched sweep is the degenerate streaming case: one session,
        # every suspect already in memory.  Keys with no requested pair never
        # reach session.verify, so their locations are never reproduced.
        session = self.verification_session(
            keys=dict(key_items),
            wer_threshold=wer_threshold,
            max_false_claim_probability=max_false_claim_probability,
        )
        results: List[PairVerification] = []
        with span(
            "engine.verify_fleet",
            suspects=len(suspect_items),
            keys=len(key_items),
            pairs=(
                len(requested)
                if requested is not None
                else len(suspect_items) * len(key_items)
            ),
        ):
            for key_id, _key in key_items:
                if requested is not None:
                    wanted = [
                        (sid, suspect)
                        for sid, suspect in suspect_items
                        if (sid, key_id) in requested
                    ]
                else:
                    wanted = suspect_items
                for suspect_id, suspect in wanted:
                    results.append(session.verify(suspect_id, suspect, key_id))
        # Re-order suspect-major for stable reporting regardless of loop nest.
        suspect_order = {sid: i for i, (sid, _) in enumerate(suspect_items)}
        key_order = {kid: i for i, (kid, _) in enumerate(key_items)}
        results.sort(key=lambda p: (suspect_order[p.suspect_id], key_order[p.key_id]))
        report = session.report(results)
        logger.debug("%s", report.summary())
        return report

    def insert_batch(
        self,
        models: ModelGroup,
        activations: Union[ActivationStats, Sequence[ActivationStats], Mapping[str, ActivationStats]],
        config: Optional[EmMarkConfig] = None,
        signatures: Optional[Mapping[str, np.ndarray]] = None,
        in_place: bool = False,
    ) -> BatchInsertionResult:
        """Watermark a batch of models in one call.

        Parameters
        ----------
        models:
            A single model, a sequence (auto-named ``model-0`` …) or a
            mapping of explicit ids.
        activations:
            Either one :class:`~repro.models.activations.ActivationStats`
            shared by every model (fleet of clones), or a sequence / mapping
            aligned with ``models``.
        config:
            Shared insertion configuration; when omitted each model gets
            :meth:`EmMarkConfig.scaled_for_model`.
        signatures:
            Optional explicit per-model signatures keyed by model id.
        in_place:
            Watermark the models directly instead of cloning.

        Models are processed sequentially while each model's layers fan out
        on the engine's thread pool (nesting both levels on one bounded pool
        could deadlock); identical models sharing activations and config hit
        the plan cache after the first insertion.
        """
        wall_start = time.perf_counter()
        model_items = _named_items(models, "model")
        if isinstance(activations, Mapping):
            activation_for = dict(activations)
        elif isinstance(activations, (list, tuple)):
            if len(activations) != len(model_items):
                raise ValueError(
                    f"{len(activations)} activation stats for {len(model_items)} models"
                )
            activation_for = {
                model_id: stats for (model_id, _), stats in zip(model_items, activations)
            }
        else:
            activation_for = {model_id: activations for model_id, _ in model_items}
        items: List[BatchInsertionItem] = []
        for model_id, model in model_items:
            if model_id not in activation_for:
                raise KeyError(f"no activation statistics supplied for model {model_id!r}")
            signature = signatures.get(model_id) if signatures else None
            watermarked, key, report = self.insert(
                model,
                activation_for[model_id],
                config=config,
                signature=signature,
                in_place=in_place,
            )
            items.append(
                BatchInsertionItem(model_id=model_id, model=watermarked, key=key, report=report)
            )
        result = BatchInsertionResult(
            items=items, wall_clock_seconds=time.perf_counter() - wall_start
        )
        logger.debug("%s", result.summary())
        return result

    def insert_multi(
        self,
        model: QuantizedModel,
        activations: ActivationStats,
        owners: Union[int, Sequence[EmMarkConfig], Mapping[str, EmMarkConfig]],
        signatures: Optional[Mapping[str, np.ndarray]] = None,
        in_place: bool = False,
        allocator: Optional[SlotAllocator] = None,
    ) -> MultiOwnerInsertionResult:
        """Insert N independently keyed watermarks into **one** model.

        The multi-tenant counterpart of :meth:`insert`: every owner's
        signature is placed on a disjoint slot pool of the same
        integer-weight domain (a shared
        :class:`~repro.engine.allocator.SlotAllocator` threads the occupancy
        from each insertion into the next one's planning), so no owner's ±1
        perturbations clobber another's and each key extracts independently
        at 100% WER from the returned model.

        Parameters
        ----------
        model:
            The quantized base to watermark (cloned unless ``in_place``).
        activations:
            Full-precision activation statistics of the base model, shared
            by every owner (co-residents of one base score the same grid).
        owners:
            Either an owner count — ``N`` derives deterministic per-owner
            configurations from :meth:`EmMarkConfig.scaled_for_model` with
            seed offsets, named ``owner-0`` … ``owner-N-1``, where
            ``owner-0`` keeps the base seeds (its plans are bit-identical to
            a single-owner insertion) — or an explicit sequence / mapping of
            per-owner :class:`EmMarkConfig`\\ s.
        signatures:
            Optional explicit ±1 signatures keyed by owner id.
        in_place:
            Watermark ``model`` directly instead of a clone.
        allocator:
            Resume allocation on a pre-populated allocator (e.g. built with
            :meth:`SlotAllocator.from_keys` from earlier owners' keys); a
            fresh one is created when omitted and returned on the result.

        Each owner's key snapshots the model state *it* was inserted into
        (the base plus the earlier owners' bits), so a key alone reproduces
        its re-ranked plan; ``metadata["co_residents"]`` on every key names
        the other owners sharing the model.
        """
        wall_start = time.perf_counter()
        owner_items = self._named_owner_configs(model, owners)
        if not owner_items:
            raise ValueError("insert_multi needs at least one owner")
        duplicate = [oid for oid in {o for o, _ in owner_items}
                     if sum(1 for o, _ in owner_items if o == oid) > 1]
        if duplicate:
            raise ValueError(f"duplicate owner ids: {sorted(duplicate)}")
        working = model if in_place else model.clone()
        if allocator is None:
            allocator = SlotAllocator()
        items: List[OwnerInsertion] = []
        for owner_id, config in owner_items:
            signature = signatures.get(owner_id) if signatures else None
            _, key, report = self.insert(
                working,
                activations,
                config=config,
                signature=signature,
                in_place=True,
                occupied=allocator,
                owner=owner_id,
            )
            items.append(OwnerInsertion(owner_id=owner_id, key=key, report=report))
        owner_ids = [item.owner_id for item in items]
        for item in items:
            co = [oid for oid in owner_ids if oid != item.owner_id]
            prior = item.key.metadata.get("co_residents", [])
            # Full bidirectional listing: earlier owners learn about later
            # ones too (pre-existing allocator entries are kept in front).
            merged = list(dict.fromkeys(list(prior) + co))
            if merged:
                item.key.metadata["co_residents"] = merged
        result = MultiOwnerInsertionResult(
            model=working,
            items=items,
            allocator=allocator,
            wall_clock_seconds=time.perf_counter() - wall_start,
        )
        logger.debug("%s", result.summary())
        return result

    @staticmethod
    def _named_owner_configs(
        model: QuantizedModel,
        owners: Union[int, Sequence[EmMarkConfig], Mapping[str, EmMarkConfig]],
    ) -> List[Tuple[str, EmMarkConfig]]:
        """Normalize the ``owners`` argument into ``(owner_id, config)`` pairs."""
        if isinstance(owners, int):
            return list(
                derive_owner_configs(EmMarkConfig.scaled_for_model(model), owners).items()
            )
        if isinstance(owners, Mapping):
            return list(owners.items())
        return [(f"owner-{index}", config) for index, config in enumerate(owners)]


# ----------------------------------------------------------------------
# Fork hygiene
# ----------------------------------------------------------------------
#: Every engine ever constructed (weakly held) — forked children must reset
#: their inherited executor/lock state, see :func:`_reset_engines_after_fork`.
_live_engines: "weakref.WeakSet[WatermarkEngine]" = weakref.WeakSet()


def _reset_engines_after_fork() -> None:
    """Repair engine state inherited by a forked child.

    A ``fork()``-ed worker inherits every :class:`WatermarkEngine` object of
    the parent, but none of the parent's threads: an inherited
    ``ThreadPoolExecutor`` has workers that will never run again, and any
    lock captured mid-acquire stays held forever.  Attacks running inside
    process-pool gauntlet workers route through :func:`get_default_engine`
    (e.g. re-watermarking inserts through it), so without this reset the
    first engine call in a forked worker could hang.  Executors are dropped
    (they respawn lazily with live threads) and locks are replaced; the plan
    caches' entries are kept — they are pure values, and warm plans are
    exactly what the worker wants.
    """
    global _default_engine_lock
    _default_engine_lock = threading.Lock()
    for engine in list(_live_engines):
        engine._executor = None
        engine._executor_lock = threading.Lock()
        engine.cache.reset_lock()


if hasattr(os, "register_at_fork"):  # POSIX only; Windows has no fork()
    os.register_at_fork(after_in_child=_reset_engines_after_fork)


# ----------------------------------------------------------------------
# Process-wide default engine
# ----------------------------------------------------------------------
_default_engine: Optional[WatermarkEngine] = None
_default_engine_lock = threading.Lock()


def derive_owner_configs(base: EmMarkConfig, owners: int) -> Dict[str, EmMarkConfig]:
    """Deterministic per-owner configurations for a multi-owner insertion.

    The single source of the owner-naming/seed-offset scheme (the engine's
    ``insert_multi(model, N)`` path, the CLI and the experiment variants all
    resolve here): ``owner-0`` keeps the base seeds — its plans, and
    therefore its locations, are bit-identical to a single-owner insertion
    with ``base`` — while each later owner offsets the secret seed ``d`` and
    the signature seed, modelling independently keyed owners of one shared
    base.
    """
    from dataclasses import replace

    if owners < 1:
        raise ValueError("owner count must be >= 1")
    return {
        f"owner-{index}": (
            base
            if index == 0
            else replace(
                base,
                seed=base.seed + index,
                signature_seed=base.signature_seed + index,
            )
        )
        for index in range(owners)
    }


def get_default_engine() -> WatermarkEngine:
    """The process-wide shared engine (created on first use).

    The functional APIs (:func:`repro.core.insertion.insert_watermark`,
    :func:`repro.core.extraction.extract_watermark`, …) and the experiment
    harness all route through this instance, so its plan cache is shared by
    every pipeline in the process.
    """
    global _default_engine
    with _default_engine_lock:
        if _default_engine is None:
            _default_engine = WatermarkEngine()
        return _default_engine


def set_default_engine(engine: Optional[WatermarkEngine]) -> None:
    """Replace (or, with ``None``, reset) the process-wide default engine."""
    global _default_engine
    with _default_engine_lock:
        _default_engine = engine


def configure_default_engine(**config_kwargs) -> WatermarkEngine:
    """Rebuild the default engine with new :class:`EngineConfig` settings."""
    engine = WatermarkEngine(EngineConfig(**config_kwargs))
    set_default_engine(engine)
    return engine


def verify_fleet(suspects: ModelGroup, keys: KeyGroup, **kwargs) -> FleetVerificationReport:
    """Module-level convenience: :meth:`WatermarkEngine.verify_fleet` on the default engine."""
    return get_default_engine().verify_fleet(suspects, keys, **kwargs)


def insert_batch(models: ModelGroup, activations, **kwargs) -> BatchInsertionResult:
    """Module-level convenience: :meth:`WatermarkEngine.insert_batch` on the default engine."""
    return get_default_engine().insert_batch(models, activations, **kwargs)
