"""The unified watermarking engine.

This subsystem is the shared execution substrate underneath every watermark
pipeline in the reproduction:

* :mod:`repro.engine.plan` — :class:`LocationPlan`, the memoizable unit of
  scoring + seeded sub-sampling work, and its content fingerprint.
* :mod:`repro.engine.cache` — :class:`PlanCache`, a thread-safe LRU cache of
  plans with hit/miss/eviction counters.
* :mod:`repro.engine.reports` — structured reports: insertion timing
  (wall-clock vs. summed per-layer CPU), extraction results, and the batch
  fleet-verification / batch-insertion reports.
* :mod:`repro.engine.allocator` — :class:`SlotAllocator`, the
  slot-allocation layer tracking which (layer, flat-index) watermark
  positions of a model are already held, so several independently keyed
  owners can co-reside in one integer-weight domain on disjoint pools.
* :mod:`repro.engine.engine` — :class:`WatermarkEngine`, tying cached
  planning, the fused top-k scoring kernel and a parallel layer executor
  together, plus the batch serving APIs ``verify_fleet`` / ``insert_batch``
  / ``insert_multi`` and the process-wide default engine shared by the
  functional ``repro.core`` entry points.

Quickstart
----------
>>> from repro.engine import WatermarkEngine
>>> engine = WatermarkEngine()
>>> wm, key, report = engine.insert(quantized, activations)
>>> engine.extract(wm, key).wer_percent          # served from the plan cache
100.0
>>> fleet = engine.verify_fleet({"a": wm, "b": quantized}, {"owner": key})
>>> fleet.ownership_matrix()
{'a': {'owner': True}, 'b': {'owner': False}}
"""

# Leaf modules first: repro.core imports repro.engine.reports during its own
# package initialisation, so everything imported eagerly here must stay free
# of repro.core dependencies.
from repro.engine.allocator import SlotAllocator, SlotCollisionError
from repro.engine.cache import CacheStats, PlanCache
from repro.engine.plan import LocationPlan, plan_fingerprint
from repro.engine.reports import (
    BatchInsertionItem,
    BatchInsertionResult,
    ExtractionResult,
    FleetVerificationReport,
    InsertionReport,
    MultiOwnerInsertionResult,
    OwnerInsertion,
    PairVerification,
)

# The engine itself pulls in repro.core leaf modules (config, scoring, keys);
# importing it last keeps package initialisation cycle-free in both import
# orders (``import repro`` and ``import repro.engine``).
from repro.engine.engine import (
    EngineConfig,
    FleetVerificationSession,
    WatermarkEngine,
    configure_default_engine,
    derive_owner_configs,
    get_default_engine,
    insert_batch,
    set_default_engine,
    verify_fleet,
)

__all__ = [
    "CacheStats",
    "PlanCache",
    "LocationPlan",
    "plan_fingerprint",
    "SlotAllocator",
    "SlotCollisionError",
    "InsertionReport",
    "ExtractionResult",
    "PairVerification",
    "FleetVerificationReport",
    "BatchInsertionItem",
    "BatchInsertionResult",
    "OwnerInsertion",
    "MultiOwnerInsertionResult",
    "EngineConfig",
    "WatermarkEngine",
    "FleetVerificationSession",
    "get_default_engine",
    "set_default_engine",
    "configure_default_engine",
    "derive_owner_configs",
    "verify_fleet",
    "insert_batch",
]
