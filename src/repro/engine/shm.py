"""Shared-memory model residency for multi-process execution.

The process-pool gauntlet (``mode="process"``) needs every worker to see the
subject models and owner keys without paying a per-worker copy: a grid over a
fleet of subjects would otherwise multiply the resident weights by the worker
count before a single attack runs.  This module publishes the bulk arrays
**once** into one ``multiprocessing.shared_memory`` block and ships only
picklable *handles* (block name + an ``{array name: (offset, dtype, shape)}``
manifest plus scalar metadata); each worker re-materializes read-only,
zero-copy numpy views over the same physical pages.

Three layers:

* :class:`SharedArena` — the owning side.  Arrays are staged by name,
  :meth:`~SharedArena.seal` copies them into a single 64-byte-aligned block,
  and :meth:`~SharedArena.close` unlinks it **exactly once** (context-manager
  friendly; an atexit sweep catches arenas leaked by a crashed run, and the
  unique ``repro_shm_`` name prefix makes stale segments detectable).
* :class:`ArenaHandle` / :class:`ArenaView` — the worker side.  The handle
  is a frozen, picklable description; :meth:`ArenaHandle.attach` maps the
  block in the worker and hands out read-only views (attachers never unlink;
  see :func:`_attach` for the resource-tracker story).
* :func:`share_model` / :func:`share_key` and their handle classes — the
  domain flattening: a :class:`~repro.quant.base.QuantizedModel` or
  :class:`~repro.core.keys.WatermarkKey` becomes a set of prefixed arena
  arrays plus a small metadata dict, and restores as a frozen (read-only
  weights) object whose arrays alias the shared block.

Nothing here is gauntlet-specific: any future remote/multi-host cell
executor can reuse the same handle protocol with a different transport.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.keys import WatermarkKey
from repro.models.config import ModelConfig
from repro.quant.base import QuantizationGrid, QuantizedLinear, QuantizedModel

__all__ = [
    "SHM_NAME_PREFIX",
    "SharedArena",
    "ArenaHandle",
    "ArenaView",
    "SharedModelHandle",
    "SharedKeyHandle",
    "share_model",
    "share_key",
]

#: Prefix of every arena's shared-memory segment name.  On Linux the segment
#: appears as ``/dev/shm/<name>``, so leak checks can simply glob for it.
SHM_NAME_PREFIX = "repro_shm_"

_ALIGNMENT = 64

# Owner-side registry of live segments, swept at interpreter exit so a run
# that dies between seal() and close() (e.g. a crashed worker propagating
# BrokenProcessPool past a missing try/finally) cannot leak /dev/shm blocks.
_LIVE_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}
_LIVE_LOCK = threading.Lock()


def _sweep_live_segments() -> None:
    with _LIVE_LOCK:
        leaked = list(_LIVE_SEGMENTS.items())
        _LIVE_SEGMENTS.clear()
    for _name, shm in leaked:
        try:
            shm.close()
            shm.unlink()
        except OSError:
            pass  # already gone — unlink is at-most-once by definition


atexit.register(_sweep_live_segments)


def _reset_after_fork() -> None:
    """Fork hygiene for the owner-side registry (REP007).

    The child gets a fresh lock (the parent's could be forked mid-acquire)
    and an empty registry: segments belong to the creating process — a
    worker must never unlink what the parent still serves, neither in its
    atexit sweep nor via a close() on an inherited handle.
    """
    global _LIVE_LOCK
    _LIVE_LOCK = threading.Lock()
    _LIVE_SEGMENTS.clear()


os.register_at_fork(after_in_child=_reset_after_fork)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment.

    Attaching registers the name with the resource tracker on Python < 3.13,
    which is infamous for making *independent* attaching processes unlink a
    segment they never owned.  Here every attacher is a pool worker sharing
    the owner's tracker daemon (both ``fork`` and ``spawn`` children inherit
    the tracker fd), where the tracker keeps one name *set* per resource
    type: the extra registration is a no-op, and explicitly unregistering
    would strip the owner's entry — breaking both its tracked unlink and the
    crash-time safety net — so a plain attach is the correct behaviour.
    """
    return shared_memory.SharedMemory(name=name)


#: Manifest entry: (byte offset, numpy dtype string, shape).
ManifestEntry = Tuple[int, str, Tuple[int, ...]]


class ArenaView:
    """Read-only, zero-copy access to a (possibly attached) arena block.

    Every :meth:`array` call returns a numpy view directly over the shared
    pages with ``writeable=False`` — restoring a model from a view costs no
    array copies and accidental writes raise instead of corrupting every
    process at once.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: Mapping[str, ManifestEntry],
        owns_attachment: bool,
    ) -> None:
        self._shm = shm
        self._manifest = dict(manifest)
        self._owns_attachment = owns_attachment

    def array(self, name: str) -> np.ndarray:
        """The named array as a read-only view over the shared block."""
        try:
            offset, dtype, shape = self._manifest[name]
        except KeyError as exc:
            raise KeyError(
                f"arena has no array named {name!r}; "
                f"known: {list(self._manifest)[:4]}..."
            ) from exc
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset)
        view.flags.writeable = False
        return view

    def arrays_with_prefix(self, prefix: str) -> Dict[str, np.ndarray]:
        """All arrays under ``prefix``, keyed by the remainder of their name."""
        return {
            name[len(prefix):]: self.array(name)
            for name in self._manifest
            if name.startswith(prefix)
        }

    def close(self) -> None:
        """Drop this process's mapping (never unlinks — that is the owner's)."""
        if self._owns_attachment and self._shm is not None:
            self._shm.close()
            self._shm = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable description of a sealed arena: segment name + manifest.

    This is the only thing that crosses the process boundary; workers call
    :meth:`attach` to map the same physical pages.
    """

    shm_name: str
    manifest: Tuple[Tuple[str, ManifestEntry], ...]

    def attach(self) -> ArenaView:
        """Map the shared block in this process (read-only views)."""
        return ArenaView(
            _attach(self.shm_name), dict(self.manifest), owns_attachment=True
        )


class SharedArena:
    """Owner of one shared-memory block holding many named arrays.

    Usage::

        with SharedArena() as arena:
            model_handle = share_model(arena, model, "subject/awq")
            handle = arena.seal()          # copies staged arrays into shm
            ...  # run workers with (handle, model_handle)
        # __exit__ → close(): the block is unlinked exactly once

    ``close()`` is idempotent and also runs from the module's atexit sweep,
    so even an owner that crashes after seal() leaves no stale segment.
    """

    def __init__(self) -> None:
        self._staged: "Optional[Dict[str, np.ndarray]]" = {}
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._manifest: Dict[str, ManifestEntry] = {}
        self._name = SHM_NAME_PREFIX + f"{os.getpid():x}_{secrets.token_hex(6)}"

    @property
    def name(self) -> str:
        """Segment name (``/dev/shm/<name>`` on Linux once sealed)."""
        return self._name

    def stage(self, name: str, array: np.ndarray) -> None:
        """Register ``array`` for publication under ``name`` (pre-seal only)."""
        if self._staged is None:
            raise RuntimeError("arena is already sealed; stage arrays before seal()")
        if name in self._staged:
            raise ValueError(f"array name {name!r} staged twice")
        self._staged[name] = np.ascontiguousarray(array)

    def seal(self) -> ArenaHandle:
        """Copy every staged array into one shared block and return its handle."""
        if self._staged is None:
            raise RuntimeError("arena is already sealed")
        staged, self._staged = self._staged, None
        offset = 0
        layout: Dict[str, Tuple[int, np.ndarray]] = {}
        for name, array in staged.items():
            offset = (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
            layout[name] = (offset, array)
            offset += array.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset), name=self._name)
        with _LIVE_LOCK:
            _LIVE_SEGMENTS[self._name] = shm
        self._shm = shm
        for name, (start, array) in layout.items():
            self._manifest[name] = (start, array.dtype.str, tuple(array.shape))
            dest = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=start)
            dest[...] = array
        return self.handle()

    def handle(self) -> ArenaHandle:
        """The picklable :class:`ArenaHandle` of the sealed block."""
        if self._shm is None:
            raise RuntimeError("arena is not sealed (or already closed)")
        return ArenaHandle(shm_name=self._name, manifest=tuple(self._manifest.items()))

    def view(self) -> ArenaView:
        """Owner-side view (no extra attachment; close() stays the owner's)."""
        if self._shm is None:
            raise RuntimeError("arena is not sealed (or already closed)")
        return ArenaView(self._shm, self._manifest, owns_attachment=False)

    def close(self) -> None:
        """Unmap and unlink the block — exactly once, no matter who calls."""
        with _LIVE_LOCK:
            shm = _LIVE_SEGMENTS.pop(self._name, None)
        self._shm = None
        self._staged = None
        if shm is not None:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - segment externally removed
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Domain flattening: QuantizedModel / WatermarkKey <-> arena arrays
# ----------------------------------------------------------------------
_LAYER_OPTIONAL_FIELDS = ("bias", "input_smoothing", "outlier_columns", "outlier_weight")


@dataclass(frozen=True)
class SharedModelHandle:
    """Picklable recipe for rebuilding one :class:`QuantizedModel` from an arena.

    Bulk arrays live in the arena under ``<prefix>/...``; everything scalar
    (architecture config, per-layer grid bits, quantization metadata) rides
    in the handle itself.  :meth:`restore` is zero-copy: every array of the
    restored model is a read-only view over the shared block.
    """

    prefix: str
    config: ModelConfig
    method: str
    bits: int
    base_seed: int
    metadata: Tuple[Tuple[str, object], ...]
    layer_specs: Tuple[Tuple[str, int, Tuple[str, ...]], ...]  # (name, grid bits, optional fields)
    state_keys: Tuple[str, ...]

    def restore(self, view: ArenaView) -> QuantizedModel:
        """Rebuild the model as read-only views over ``view``'s block."""
        layers: Dict[str, QuantizedLinear] = {}
        for name, grid_bits, present in self.layer_specs:
            base = f"{self.prefix}/layer/{name}"
            optional = {field: view.array(f"{base}/{field}") for field in present}
            layers[name] = QuantizedLinear(
                name=name,
                weight_int=view.array(f"{base}/weight_int"),
                scale=view.array(f"{base}/scale"),
                grid=QuantizationGrid(grid_bits),
                **optional,
            )
        state = {
            key: view.array(f"{self.prefix}/state/{key}") for key in self.state_keys
        }
        # Every array above is already a read-only arena view; freeze() is an
        # idempotent belt-and-braces pass that keeps the invariant explicit.
        return QuantizedModel(
            config=self.config,
            layers=layers,
            full_precision_state=state,
            method=self.method,
            bits=self.bits,
            base_seed=self.base_seed,
            metadata=dict(self.metadata),
        ).freeze()


def share_model(arena: SharedArena, model: QuantizedModel, prefix: str) -> SharedModelHandle:
    """Stage ``model``'s arrays into ``arena`` and return the restore handle.

    The canonical dtypes (int64 weights, float64 scales — exactly what
    :class:`QuantizedLinear` normalizes to) are staged as-is, so the
    worker-side ``__post_init__`` re-normalization is a no-op view pass-through
    rather than a hidden copy.
    """
    layer_specs = []
    for name, layer in model.layers.items():
        base = f"{prefix}/layer/{name}"
        arena.stage(f"{base}/weight_int", layer.weight_int)
        arena.stage(f"{base}/scale", layer.scale)
        present = []
        for field in _LAYER_OPTIONAL_FIELDS:
            value = getattr(layer, field)
            if value is not None:
                arena.stage(f"{base}/{field}", value)
                present.append(field)
        layer_specs.append((name, layer.grid.bits, tuple(present)))
    for key, value in model.full_precision_state.items():
        arena.stage(f"{prefix}/state/{key}", value)
    return SharedModelHandle(
        prefix=prefix,
        config=model.config,
        method=model.method,
        bits=model.bits,
        base_seed=model.base_seed,
        metadata=tuple(model.metadata.items()),
        layer_specs=tuple(layer_specs),
        state_keys=tuple(model.full_precision_state),
    )


@dataclass(frozen=True)
class SharedKeyHandle:
    """Picklable recipe for rebuilding one :class:`WatermarkKey` from an arena.

    Reuses the key's own ``(meta, arrays)`` payload form — the same flattening
    behind :meth:`WatermarkKey.save` and the service wire codec — so the
    shared-memory path cannot drift from the serialization one.  The key's
    reference weights are a full model-size snapshot; sharing them is what
    keeps a process pool's resident set O(workers × attacked model) instead
    of O(workers × (subject + attacked)).
    """

    prefix: str
    meta: Tuple[Tuple[str, object], ...]

    def restore(self, view: ArenaView) -> WatermarkKey:
        """Rebuild the key; its arrays are read-only views over the block."""
        arrays = view.arrays_with_prefix(f"{self.prefix}/")
        return WatermarkKey.from_payload(dict(self.meta), arrays)


def share_key(arena: SharedArena, key: WatermarkKey, prefix: str) -> SharedKeyHandle:
    """Stage ``key``'s payload arrays into ``arena``; return the restore handle."""
    meta, arrays = key.to_payload()
    for name, array in arrays.items():
        arena.stage(f"{prefix}/{name}", array)
    return SharedKeyHandle(prefix=prefix, meta=tuple(meta.items()))
