"""Slot allocation: which watermark positions of a model are already taken.

EmMark's planner was written for a virgin model: score, pool, sub-sample,
insert.  The serving story is different — several independent owners
watermark clones (or successive custody stages) of the *same* open-weight
base, and a second insertion that is blind to the first can land on an
already-perturbed position and silently destroy the earlier owner's bit.

:class:`SlotAllocator` is the shared substrate that prevents this.  It
tracks the occupied ``(layer, flat-index)`` coordinates of one integer-weight
domain, hands the engine a per-layer occupancy view during planning (the
planner deterministically re-ranks *past* occupied slots, so co-resident
pools are disjoint by construction), and records which owner claimed which
slots.  The occupancy a key was planned under travels inside
``WatermarkKey.metadata["occupied_slots"]``, which is what lets extraction
and :class:`~repro.engine.engine.FleetVerificationSession` reproduce every
co-resident owner's locations independently — each at 100% WER on the
multi-watermarked model.

An empty allocator is exactly the virgin-model case: planning with an empty
occupancy set is bit-identical to planning without one (same locations, same
plan fingerprints, same cache entries).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.keys import WatermarkKey
    from repro.engine.engine import WatermarkEngine

__all__ = ["SlotAllocator", "SlotCollisionError", "OccupancyMap"]

#: The serialized occupancy form: per-layer sorted flat indices.
OccupancyMap = Dict[str, np.ndarray]


class SlotCollisionError(ValueError):
    """Two owners tried to claim the same (layer, flat-index) slot."""

    def __init__(self, layer_name: str, indices: np.ndarray, holder: str) -> None:
        preview = [int(i) for i in np.asarray(indices).reshape(-1)[:4]]
        super().__init__(
            f"slots {preview} of layer {layer_name!r} are already held by "
            f"{holder!r}; co-resident insertions must plan around the "
            "existing occupancy (pass the allocator to engine.insert)"
        )
        self.layer_name = layer_name
        self.indices = np.asarray(indices, dtype=np.int64)
        self.holder = holder


class SlotAllocator:
    """Tracks occupied watermark slots of one integer-weight domain.

    Thread safety: reads (:meth:`occupied_for`, :meth:`snapshot`) and writes
    (:meth:`claim`) are lock-guarded, so a parallel layer fan-out may read the
    occupancy while a sequential multi-owner driver claims between owners.

    Parameters
    ----------
    occupied:
        Optional initial occupancy, ``{layer_name: flat indices}``; the
        pre-existing slots are attributed to the pseudo-owner
        :attr:`ANONYMOUS` (``"<unattributed>"``).
    """

    #: Owner label for occupancy installed without an explicit owner.
    ANONYMOUS = "<unattributed>"

    def __init__(self, occupied: Optional[Mapping[str, Iterable[int]]] = None) -> None:
        self._lock = threading.Lock()
        # layer -> {flat_index: owner}; payloads are tiny (bits per layer ×
        # owners), so a dict is both simple and collision-exact.
        self._slots: Dict[str, Dict[int, str]] = {}
        self._owners: List[str] = []
        if occupied:
            for layer_name, indices in occupied.items():
                self.claim(layer_name, indices, owner=self.ANONYMOUS)

    # ------------------------------------------------------------------
    # Claiming
    # ------------------------------------------------------------------
    def claim(self, layer_name: str, indices: Iterable[int], owner: str = ANONYMOUS) -> None:
        """Mark ``indices`` of ``layer_name`` as held by ``owner``.

        Raises
        ------
        SlotCollisionError
            When any index is already held (by anyone, including ``owner``
            itself — a double claim is always a planner bug, never benign).
        """
        if not isinstance(indices, np.ndarray):
            indices = np.asarray(list(indices))
        flat = np.unique(indices.astype(np.int64).reshape(-1))
        with self._lock:
            layer = self._slots.setdefault(layer_name, {})
            taken = [int(i) for i in flat if int(i) in layer]
            if taken:
                raise SlotCollisionError(layer_name, np.asarray(taken), layer[taken[0]])
            for i in flat:
                layer[int(i)] = owner
            if owner not in self._owners:
                self._owners.append(owner)

    def claim_locations(
        self, locations: Mapping[str, np.ndarray], owner: str = ANONYMOUS
    ) -> None:
        """Claim a whole per-layer locations mapping (one key's footprint)."""
        for layer_name, indices in locations.items():
            self.claim(layer_name, indices, owner=owner)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def occupied_for(self, layer_name: str) -> Optional[np.ndarray]:
        """Sorted occupied flat indices of one layer; ``None`` when empty.

        ``None`` (not an empty array) is the virgin-layer signal: the planner
        treats it exactly like the pre-allocator code path, which is what
        keeps single-owner plans and their cache fingerprints bit-identical.
        """
        with self._lock:
            layer = self._slots.get(layer_name)
            if not layer:
                return None
            return np.asarray(sorted(layer), dtype=np.int64)

    def snapshot(self) -> OccupancyMap:
        """Per-layer sorted occupancy of every non-empty layer (a copy)."""
        with self._lock:
            return {
                name: np.asarray(sorted(layer), dtype=np.int64)
                for name, layer in self._slots.items()
                if layer
            }

    def owners(self) -> List[str]:
        """Owner labels in first-claim order."""
        with self._lock:
            return list(self._owners)

    def holder_of(self, layer_name: str, flat_index: int) -> Optional[str]:
        """Which owner holds one slot (``None`` when free)."""
        with self._lock:
            return self._slots.get(layer_name, {}).get(int(flat_index))

    @property
    def is_empty(self) -> bool:
        """True when no slot is held."""
        with self._lock:
            return not any(self._slots.values())

    @property
    def total_slots(self) -> int:
        """Number of held slots across all layers."""
        with self._lock:
            return sum(len(layer) for layer in self._slots.values())

    def __len__(self) -> int:
        return self.total_slots

    # ------------------------------------------------------------------
    # Serialization (key metadata / wire form)
    # ------------------------------------------------------------------
    def to_metadata(self) -> Dict[str, List[int]]:
        """JSON-able ``{layer: [flat indices]}`` occupancy (sorted)."""
        return {name: [int(i) for i in idx] for name, idx in self.snapshot().items()}

    @classmethod
    def from_metadata(cls, metadata: Mapping[str, Iterable[int]]) -> "SlotAllocator":
        """Rebuild an allocator from :meth:`to_metadata` output."""
        return cls(occupied=dict(metadata))

    # ------------------------------------------------------------------
    # Reconstruction from issued keys
    # ------------------------------------------------------------------
    @classmethod
    def from_keys(
        cls,
        keys: Mapping[str, "WatermarkKey"],
        engine: "Optional[WatermarkEngine]" = None,
    ) -> "SlotAllocator":
        """Occupancy of every key in ``keys`` (locations reproduced via the engine).

        This is how a later custody stage resumes allocation on a model whose
        earlier owners are known only through their keys: each key's
        locations are reproduced (cached plans make repeats cheap) and
        claimed under its mapping id.  Keys must be mutually disjoint —
        overlapping keys raise :class:`SlotCollisionError`, surfacing exactly
        the clobbering this subsystem exists to prevent.
        """
        if engine is None:
            from repro.engine.engine import get_default_engine

            engine = get_default_engine()
        allocator = cls()
        for owner, key in keys.items():
            allocator.claim_locations(engine.reproduce_locations(key), owner=owner)
        return allocator

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"SlotAllocator({self.total_slots} slots, "
            f"{len(self.snapshot())} layers, owners={self.owners()})"
        )
