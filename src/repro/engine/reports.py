"""Structured reports produced by the watermarking engine.

These dataclasses are shared by every pipeline that sits on the engine — the
EmMark insertion/extraction stages, the baseline watermarkers and the batch
serving APIs (:meth:`~repro.engine.engine.WatermarkEngine.verify_fleet`,
:meth:`~repro.engine.engine.WatermarkEngine.insert_batch`).  They live in a
dependency-light module (NumPy only) so that both ``repro.core`` and
``repro.engine`` can import them without circularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "DEFAULT_OWNERSHIP_THRESHOLD",
    "DEFAULT_MAX_FALSE_CLAIM_PROBABILITY",
    "InsertionReport",
    "ExtractionResult",
    "PairVerification",
    "FleetVerificationReport",
    "BatchInsertionItem",
    "BatchInsertionResult",
    "OwnerInsertion",
    "MultiOwnerInsertionResult",
]

#: WER (in percent) above which ownership is asserted by default.  Defined
#: here (the dependency-light module) so the engine and the ``repro.core``
#: facades share a single source of truth.
DEFAULT_OWNERSHIP_THRESHOLD = 90.0
#: Default bound on the Equation 8 false-claim probability.
DEFAULT_MAX_FALSE_CLAIM_PROBABILITY = 1e-6


@dataclass
class InsertionReport:
    """Summary of one insertion run (used by the efficiency experiment).

    Attributes
    ----------
    total_bits:
        Signature length ``|B|`` inserted across all layers.
    num_layers:
        Number of quantization layers watermarked.
    per_layer_seconds:
        Time spent scoring + inserting each layer, in canonical layer order.
        Measured with ``time.thread_time`` (the worker thread's own CPU
        time), so the value is the layer's cost independent of how many
        other layers ran concurrently; the entries do not sum to the elapsed
        wall-clock time.
    candidate_pool_sizes:
        Per-layer candidate pool ``|B_c|``.
    wall_clock_seconds:
        Elapsed wall-clock time of the whole insertion, including any
        parallel speedup.  Table 2 reports per-layer cost from
        ``per_layer_seconds`` (honest regardless of worker count) while this
        field carries the actually-observed latency.
    parallel_workers:
        Number of executor workers the engine used (1 = serial).
    cache_hits, cache_misses:
        Location-plan cache traffic attributable to this insertion.
    """

    total_bits: int
    num_layers: int
    per_layer_seconds: List[float]
    candidate_pool_sizes: Dict[str, int]
    wall_clock_seconds: float = 0.0
    parallel_workers: int = 1
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def total_seconds(self) -> float:
        """Summed per-layer CPU time spent scoring and inserting.

        This is the Table 2 quantity (per-layer cost × layers); see
        :attr:`wall_clock_seconds` for the elapsed latency under parallelism.
        """
        return float(sum(self.per_layer_seconds))

    @property
    def cpu_seconds(self) -> float:
        """Alias of :attr:`total_seconds`, named for contrast with wall clock."""
        return self.total_seconds

    @property
    def mean_seconds_per_layer(self) -> float:
        """Average insertion time per quantization layer (Table 2 metric)."""
        if not self.per_layer_seconds:
            return 0.0
        return float(np.mean(self.per_layer_seconds))

    @property
    def parallel_speedup(self) -> float:
        """Summed per-layer CPU time divided by elapsed wall-clock time."""
        if self.wall_clock_seconds <= 0:
            return 1.0
        return self.total_seconds / self.wall_clock_seconds


@dataclass
class ExtractionResult:
    """Outcome of one watermark extraction.

    Attributes
    ----------
    total_bits:
        Signature length ``|B|``.
    matched_bits:
        Number of signature bits recovered exactly (``|B|'``).
    wer_percent:
        Watermark extraction rate ``100 · |B|' / |B|`` (Equation 7).
    per_layer_wer:
        Extraction rate per quantization layer (diagnostics; the attacks
        rarely damage layers uniformly).
    false_claim_probability:
        Probability that an unrelated model would match at least
        ``matched_bits`` bits by chance (Equation 8).
    locations:
        The reproduced watermark locations per layer (flattened indices).
    wall_clock_seconds:
        Elapsed time of the extraction (location reproduction + matching).
    """

    total_bits: int
    matched_bits: int
    wer_percent: float
    per_layer_wer: Dict[str, float] = field(default_factory=dict)
    false_claim_probability: float = 1.0
    locations: Dict[str, np.ndarray] = field(default_factory=dict)
    wall_clock_seconds: float = 0.0

    @classmethod
    def from_counts(
        cls,
        total_bits: int,
        matched_bits: int,
        per_layer_wer: Optional[Dict[str, float]] = None,
        locations: Optional[Dict[str, np.ndarray]] = None,
        wall_clock_seconds: float = 0.0,
    ) -> "ExtractionResult":
        """Build a result from raw match counts (WER + Equation 8 derived)."""
        # Imported lazily: strength lives under repro.core, which imports this
        # module during its own package initialisation.
        from repro.core.strength import false_claim_probability

        wer = 100.0 * matched_bits / total_bits if total_bits else 0.0
        probability = (
            false_claim_probability(total_bits, matched_bits) if total_bits else 1.0
        )
        return cls(
            total_bits=total_bits,
            matched_bits=matched_bits,
            wer_percent=wer,
            per_layer_wer=per_layer_wer or {},
            false_claim_probability=probability,
            locations=locations or {},
            wall_clock_seconds=wall_clock_seconds,
        )

    @property
    def fully_extracted(self) -> bool:
        """True when every signature bit was recovered."""
        return self.matched_bits == self.total_bits

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"WER {self.wer_percent:.2f}% ({self.matched_bits}/{self.total_bits} bits), "
            f"false-claim probability {self.false_claim_probability:.3e}"
        )


@dataclass
class PairVerification:
    """One (suspect, key) cell of a fleet verification.

    ``owned`` is the ownership verdict under the thresholds the fleet call
    was made with; the raw evidence (WER, match counts, Equation 8
    probability) is retained so callers can re-threshold without re-running.
    """

    suspect_id: str
    key_id: str
    total_bits: int
    matched_bits: int
    wer_percent: float
    false_claim_probability: float
    owned: bool
    seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-able form (the service's per-decision wire representation)."""
        return {
            "suspect_id": self.suspect_id,
            "key_id": self.key_id,
            "total_bits": self.total_bits,
            "matched_bits": self.matched_bits,
            "wer_percent": self.wer_percent,
            "false_claim_probability": self.false_claim_probability,
            "owned": self.owned,
            "seconds": self.seconds,
        }

    def summary(self) -> str:
        """One-line human-readable summary of the pair."""
        verdict = "OWNED" if self.owned else "not owned"
        return (
            f"{self.suspect_id} × {self.key_id}: WER {self.wer_percent:.2f}% "
            f"({self.matched_bits}/{self.total_bits}), "
            f"P_c {self.false_claim_probability:.3e} → {verdict}"
        )


@dataclass
class FleetVerificationReport:
    """Structured result of :meth:`WatermarkEngine.verify_fleet`.

    Attributes
    ----------
    pairs:
        One :class:`PairVerification` per evaluated (suspect, key) pair, in
        suspect-major order.
    wall_clock_seconds:
        Elapsed time of the whole fleet sweep.
    cache_hits, cache_misses, cache_evictions:
        Location-plan cache traffic of the sweep.  A warm sweep over a known
        key shows ``cache_misses == 0`` — the per-key scoring work is done
        exactly once no matter how many suspects are screened.  A non-zero
        eviction count means the cache is undersized for the key working set
        (warm sweeps will silently degrade to cold ones).
    """

    pairs: List[PairVerification] = field(default_factory=list)
    wall_clock_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    @property
    def num_pairs(self) -> int:
        """Number of evaluated (suspect, key) pairs."""
        return len(self.pairs)

    def owned_pairs(self) -> List[PairVerification]:
        """The pairs whose ownership claim was asserted."""
        return [pair for pair in self.pairs if pair.owned]

    def for_suspect(self, suspect_id: str) -> List[PairVerification]:
        """All pairs involving one suspect."""
        return [pair for pair in self.pairs if pair.suspect_id == suspect_id]

    def for_key(self, key_id: str) -> List[PairVerification]:
        """All pairs involving one key."""
        return [pair for pair in self.pairs if pair.key_id == key_id]

    def ownership_matrix(self) -> Dict[str, Dict[str, bool]]:
        """``{suspect_id: {key_id: owned}}`` verdict matrix."""
        matrix: Dict[str, Dict[str, bool]] = {}
        for pair in self.pairs:
            matrix.setdefault(pair.suspect_id, {})[pair.key_id] = pair.owned
        return matrix

    def cache_stats(self) -> dict:
        """JSON-able plan-cache traffic attributable to this sweep."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
        }

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        header = (
            f"fleet verification: {self.num_pairs} pairs, "
            f"{len(self.owned_pairs())} owned, "
            f"{self.wall_clock_seconds:.3f}s wall clock, "
            f"plan cache {self.cache_hits} hits / {self.cache_misses} misses "
            f"/ {self.cache_evictions} evictions"
        )
        return "\n".join([header] + [f"  {pair.summary()}" for pair in self.pairs])


@dataclass
class BatchInsertionItem:
    """One model's outcome inside a batch insertion."""

    model_id: str
    model: object
    key: object
    report: InsertionReport


@dataclass
class BatchInsertionResult:
    """Structured result of :meth:`WatermarkEngine.insert_batch`."""

    items: List[BatchInsertionItem] = field(default_factory=list)
    wall_clock_seconds: float = 0.0

    @property
    def num_models(self) -> int:
        """Number of models watermarked."""
        return len(self.items)

    @property
    def total_bits(self) -> int:
        """Signature bits inserted across the whole batch."""
        return sum(item.report.total_bits for item in self.items)

    def keys(self) -> Dict[str, object]:
        """``{model_id: WatermarkKey}`` for every watermarked model."""
        return {item.model_id: item.key for item in self.items}

    def models(self) -> Dict[str, object]:
        """``{model_id: watermarked model}``."""
        return {item.model_id: item.model for item in self.items}

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"batch insertion: {self.num_models} models, {self.total_bits} bits, "
            f"{self.wall_clock_seconds:.3f}s wall clock"
        )


@dataclass
class OwnerInsertion:
    """One owner's outcome inside a multi-owner (co-resident) insertion."""

    owner_id: str
    key: object
    report: InsertionReport


@dataclass
class MultiOwnerInsertionResult:
    """Structured result of :meth:`WatermarkEngine.insert_multi`.

    Unlike :class:`BatchInsertionResult` (N models, one key each), this is
    **one model carrying N keys**: every owner's signature lives on a
    disjoint slot pool of the same integer-weight domain, and each key
    extracts independently at full WER from :attr:`model`.
    """

    model: object
    items: List[OwnerInsertion] = field(default_factory=list)
    #: The :class:`~repro.engine.allocator.SlotAllocator` holding the final
    #: occupancy — hand it to a later ``engine.insert(occupied=...)`` to add
    #: another owner without disturbing the existing ones.
    allocator: object = None
    wall_clock_seconds: float = 0.0

    @property
    def num_owners(self) -> int:
        """Number of co-resident owners inserted."""
        return len(self.items)

    @property
    def total_bits(self) -> int:
        """Signature bits inserted across every owner."""
        return sum(item.report.total_bits for item in self.items)

    def keys(self) -> Dict[str, object]:
        """``{owner_id: WatermarkKey}`` for every co-resident owner."""
        return {item.owner_id: item.key for item in self.items}

    def key_for(self, owner_id: str) -> object:
        """One owner's key (raises ``KeyError`` for unknown owners)."""
        for item in self.items:
            if item.owner_id == owner_id:
                return item.key
        raise KeyError(f"unknown owner {owner_id!r}; inserted: {[i.owner_id for i in self.items]}")

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"multi-owner insertion: {self.num_owners} owners co-resident, "
            f"{self.total_bits} bits total, {self.wall_clock_seconds:.3f}s wall clock"
        )
