"""Location plans: the cacheable unit of watermark-placement work.

Scoring a layer and seed-sub-sampling its candidate pool is a *pure function*
of ``(reference weights, activations, configuration, payload size)`` — the
paper relies on exactly this purity for extraction to reproduce the
insertion-time locations.  A :class:`LocationPlan` captures one such result
together with the :func:`plan_fingerprint` of its inputs, so that
``insert_watermark``, ``reproduce_locations``, ``verify_ownership`` and
repeated attack-sweep extractions can all share one memoized computation
instead of re-running the scoring pipeline per call.

Determinism is guaranteed by construction: cached and uncached lookups run
the identical code path, and the fingerprint covers every input that can
influence the outcome (integer weights, grid, outlier columns, activation
vector, α/β, the secret seed ``d``, pool sizing and the per-layer payload).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["LocationPlan", "plan_fingerprint"]


def _hash_array(hasher: "hashlib._Hash", array: Optional[np.ndarray]) -> None:
    """Feed an array (or its absence) into the hash, shape included."""
    if array is None:
        hasher.update(b"<none>")
        return
    array = np.ascontiguousarray(array)
    hasher.update(str(array.dtype).encode())
    hasher.update(np.asarray(array.shape, dtype=np.int64).tobytes())
    hasher.update(array.tobytes())


def plan_fingerprint(
    layer_name: str,
    grid_bits: int,
    weight_int: np.ndarray,
    outlier_columns: Optional[np.ndarray],
    channel_activations: np.ndarray,
    alpha: float,
    beta: float,
    seed: int,
    exclude_saturated: bool,
    pool_size: int,
    bits_needed: int,
    occupied: Optional[np.ndarray] = None,
) -> str:
    """Content fingerprint of one layer's location-plan inputs.

    Every argument is an input of the scoring + sub-sampling pipeline;
    anything *not* listed here (quantization scales, biases, the signature
    bits themselves, ``signature_seed``) provably cannot change the selected
    locations, which is what lets insertion, extraction and fleet
    verification share plans across different signatures and suspects.

    ``occupied`` is the slot-allocation axis: the flat indices already held
    by co-resident watermarks, which the planner re-ranks past.  An empty or
    absent occupancy contributes nothing to the digest — a plan computed
    against a virgin model keeps the exact fingerprint it had before the
    allocator existed, so single-owner cache entries stay valid and shared.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(layer_name.encode("utf-8"))
    hasher.update(np.asarray([grid_bits, seed, pool_size, bits_needed], dtype=np.int64).tobytes())
    hasher.update(np.asarray([alpha, beta], dtype=np.float64).tobytes())
    hasher.update(b"1" if exclude_saturated else b"0")
    _hash_array(hasher, weight_int)
    _hash_array(hasher, outlier_columns)
    _hash_array(hasher, np.asarray(channel_activations, dtype=np.float64))
    if occupied is not None and occupied.size:
        hasher.update(b"occupied")
        _hash_array(hasher, np.asarray(occupied, dtype=np.int64))
    return hasher.hexdigest()


@dataclass(frozen=True)
class LocationPlan:
    """Memoized scoring + sub-sampling result for one quantization layer.

    Attributes
    ----------
    layer_name:
        The layer the plan belongs to.
    fingerprint:
        :func:`plan_fingerprint` of the inputs that produced the plan.
    candidate_indices:
        The ``|B_c|`` best-scoring flattened positions, ascending-score order.
    locations:
        The seed-sub-sampled watermark positions (``bits_needed`` of them).
    pool_size:
        Candidate pool size actually used.
    num_weights:
        Layer weight count the plan was computed for (sanity checking).
    compute_seconds:
        CPU time spent building the plan (0 is never stored — a cache hit
        reports the original cost via :attr:`compute_seconds`).
    """

    layer_name: str
    fingerprint: str
    candidate_indices: np.ndarray
    locations: np.ndarray
    pool_size: int
    num_weights: int
    compute_seconds: float = 0.0

    def __post_init__(self) -> None:
        # Plans are shared through the cache and handed to callers by
        # reference (e.g. via ExtractionResult.locations); freezing the
        # arrays turns accidental in-place mutation — which would silently
        # corrupt every later extraction for the key — into an immediate
        # ValueError.
        object.__setattr__(
            self, "candidate_indices", np.asarray(self.candidate_indices, dtype=np.int64)
        )
        object.__setattr__(self, "locations", np.asarray(self.locations, dtype=np.int64))
        self.candidate_indices.setflags(write=False)
        self.locations.setflags(write=False)

    @property
    def num_locations(self) -> int:
        """Number of watermark positions the plan selects."""
        return int(self.locations.size)
