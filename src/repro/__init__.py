"""EmMark reproduction: robust watermarks for embedded quantized LLMs.

This package is a from-scratch, CPU-only reproduction of

    Ruisi Zhang and Farinaz Koushanfar,
    "EmMark: Robust Watermarks for IP Protection of Embedded Quantized
    Large Language Models", DAC 2024 (arXiv:2402.17938),

including every substrate the paper depends on: a simulated OPT / LLaMA-2
model zoo (:mod:`repro.models`), the post-training quantization frameworks
SmoothQuant, LLM.int8(), AWQ and GPTQ (:mod:`repro.quant`), synthetic
evaluation corpora and tasks (:mod:`repro.data`, :mod:`repro.eval`),
fine-tuning (:mod:`repro.finetune`), the watermarking algorithms
(:mod:`repro.core`), the attack suite (:mod:`repro.attacks`) and the
experiment harness regenerating every table and figure
(:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import EmMark, EmMarkConfig, quantize_model
>>> from repro.models import get_pretrained_model_and_data, collect_activation_stats
>>> model, data = get_pretrained_model_and_data("opt-2.7b-sim", profile="smoke")
>>> activations = collect_activation_stats(model, data.calibration)
>>> quantized = quantize_model(model, "awq", activations=activations)
>>> emmark = EmMark(EmMarkConfig.scaled_for_model(quantized))
>>> watermarked, key, report = emmark.insert_with_key(quantized, activations)
>>> emmark.extract_with_key(watermarked, key).wer_percent
100.0
"""

from repro.core import (
    EmMark,
    EmMarkConfig,
    ExtractionResult,
    WatermarkKey,
    extract_watermark,
    insert_watermark,
    insert_watermark_multi,
    verify_ownership,
    watermark_strength,
)
from repro.core.baselines import RandomWM, SpecMark
from repro.engine import (
    EngineConfig,
    FleetVerificationReport,
    SlotAllocator,
    WatermarkEngine,
    get_default_engine,
    insert_batch,
    verify_fleet,
)
from repro.models import TransformerLM, collect_activation_stats, get_pretrained_model
from repro.quant import QuantizedModel, quantize_model
from repro.eval import EvaluationHarness
from repro.robustness import (
    Gauntlet,
    GauntletSubject,
    RobustnessReport,
    build_attack,
    run_gauntlet,
)

__version__ = "1.3.0"

__all__ = [
    "EmMark",
    "EmMarkConfig",
    "ExtractionResult",
    "WatermarkKey",
    "insert_watermark",
    "insert_watermark_multi",
    "extract_watermark",
    "verify_ownership",
    "watermark_strength",
    "SlotAllocator",
    "WatermarkEngine",
    "EngineConfig",
    "FleetVerificationReport",
    "get_default_engine",
    "verify_fleet",
    "insert_batch",
    "RandomWM",
    "SpecMark",
    "TransformerLM",
    "collect_activation_stats",
    "get_pretrained_model",
    "QuantizedModel",
    "quantize_model",
    "EvaluationHarness",
    "Gauntlet",
    "GauntletSubject",
    "RobustnessReport",
    "build_attack",
    "run_gauntlet",
    "__version__",
]
