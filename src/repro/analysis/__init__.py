"""Repo-specific static analysis and dynamic race detection.

Two halves:

* **Static** — :func:`run_checks` (CLI: ``repro check``) runs the AST
  rules in :mod:`repro.analysis.rules` over source trees, enforcing the
  invariants the rest of the repo's correctness gates assume (seeded RNGs,
  telemetry purity, shm unlink-once, fork-safe locks, ...).  See
  :mod:`repro.analysis.base` for the framework and
  :mod:`repro.analysis.baseline` for grandfathering.
* **Dynamic** — :mod:`repro.analysis.lockgraph`, an opt-in instrumented
  ``threading.Lock`` that records the cross-thread acquisition-order graph
  and reports ordering cycles (potential deadlocks) that no single test
  run would hit.  Enabled suite-wide via the pytest plugin
  (``--lock-witness`` / ``REPRO_LOCK_WITNESS=1``).
"""

from repro.analysis.base import (
    CheckConfig,
    CheckResult,
    ModuleInfo,
    Rule,
    Violation,
    all_rules,
    register_rule,
    run_checks,
)
from repro.analysis.baseline import Baseline

__all__ = [
    "Baseline",
    "CheckConfig",
    "CheckResult",
    "ModuleInfo",
    "Rule",
    "Violation",
    "all_rules",
    "register_rule",
    "run_checks",
]
