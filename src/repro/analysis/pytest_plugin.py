"""Suite-wide hook for the dynamic lock-order witness.

Registered from the repo-root ``conftest.py`` (``pytest_plugins``); inert
unless opted in with ``--lock-witness`` or ``REPRO_LOCK_WITNESS=1``.  When
active it patches the lock factories *before test modules import* (so every
``threading.Lock()`` in ``src/`` is witnessed), lets the whole suite run,
then fails the session (exit status 3) if the aggregated acquisition-order
graph contains a cycle or a recorded self-deadlock.

Spawn-started workers re-import everything fresh and never run
``pytest_configure``, so they execute unwitnessed; fork-started workers
inherit the patch but ``os.register_at_fork`` clears their graph, and their
copy-on-write memory cannot reach the parent's graph anyway.
"""

from __future__ import annotations

import os

__all__ = ["pytest_addoption", "pytest_configure", "pytest_sessionfinish"]

_ENV_FLAG = "REPRO_LOCK_WITNESS"


def pytest_addoption(parser) -> None:  # type: ignore[no-untyped-def]
    group = parser.getgroup("repro")
    group.addoption(
        "--lock-witness",
        action="store_true",
        default=False,
        help=(
            "instrument threading locks suite-wide and fail on "
            f"acquisition-order cycles (also: {_ENV_FLAG}=1)"
        ),
    )


def _opted_in(config) -> bool:  # type: ignore[no-untyped-def]
    if config.getoption("--lock-witness", default=False):
        return True
    return os.environ.get(_ENV_FLAG, "") == "1"


def pytest_configure(config) -> None:  # type: ignore[no-untyped-def]
    if not _opted_in(config):
        return
    from repro.analysis import lockgraph

    lockgraph.enable()
    config._repro_lock_witness_pid = os.getpid()


def pytest_sessionfinish(session, exitstatus) -> None:  # type: ignore[no-untyped-def]
    owner_pid = getattr(session.config, "_repro_lock_witness_pid", None)
    if owner_pid is None or owner_pid != os.getpid():
        return
    from repro.analysis import lockgraph

    report = lockgraph.witness.report()
    lockgraph.disable()
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    summary = report.render()
    if reporter is not None:
        reporter.write_sep("=", "lock-order witness")
        reporter.write_line(summary)
    else:
        print(summary)
    if not report.ok:
        session.exitstatus = 3
