"""Grandfathering for ``repro check``: the baseline file.

A baseline records the fingerprints of known, accepted violations so a
newly added rule can land without first fixing (or arguing about) every
historical hit.  ``repro check --baseline FILE`` suppresses matches;
``--write-baseline`` snapshots the current findings.  The file is JSON,
committed to the repo, and reviewed like code — an entry is a debt marker,
not an exemption mechanism (ISSUE-8 explicitly requires real violations to
be *fixed*, not baselined).

Matching is per-fingerprint **by count**: a fingerprint hashes
``rule:path:stripped-source-line`` (no line number), so unrelated edits do
not invalidate entries, while adding a *second* identical offending line to
a file does fail the check.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.base import Violation

__all__ = ["Baseline"]

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """The set of grandfathered violation fingerprints, with counts."""

    #: fingerprint -> {"count": int, "rule": str, "path": str, "line": str}
    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {_FORMAT_VERSION})"
            )
        entries = data.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError(f"malformed baseline {path}: 'entries' not a mapping")
        return cls(entries=dict(entries))

    @classmethod
    def from_violations(cls, violations: List[Violation]) -> "Baseline":
        """Snapshot current findings (the ``--write-baseline`` payload)."""
        entries: Dict[str, Dict[str, object]] = {}
        for violation in violations:
            entry = entries.setdefault(
                violation.fingerprint,
                {
                    "count": 0,
                    "rule": violation.rule_id,
                    "path": violation.path,
                    "line": violation.source_line.strip(),
                },
            )
            entry["count"] = int(entry["count"]) + 1  # type: ignore
        return cls(entries=entries)

    def filter(
        self, violations: List[Violation]
    ) -> Tuple[List[Violation], List[Violation]]:
        """Split into ``(fresh, suppressed)``.

        Each baselined fingerprint absorbs up to its recorded count; any
        occurrences beyond that are fresh (a *new* copy of a grandfathered
        pattern is still a regression).
        """
        budget: Counter = Counter(
            {fp: int(entry.get("count", 1)) for fp, entry in self.entries.items()}  # type: ignore
        )
        fresh: List[Violation] = []
        suppressed: List[Violation] = []
        for violation in violations:
            if budget[violation.fingerprint] > 0:
                budget[violation.fingerprint] -= 1
                suppressed.append(violation)
            else:
                fresh.append(violation)
        return fresh, suppressed

    def write(self, path: Path) -> None:
        """Write the baseline file (sorted, trailing newline, reviewable)."""
        payload = {
            "version": _FORMAT_VERSION,
            "entries": {fp: self.entries[fp] for fp in sorted(self.entries)},
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )
