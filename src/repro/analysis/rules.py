"""The invariant rules behind ``repro check``.

Each rule encodes one repo-specific correctness invariant as an AST check
(see module docstrings of :mod:`repro.analysis.base` for the framework).
The catalog:

========  ====================  =================================================
id        name                  invariant
========  ====================  =================================================
REP001    unseeded-rng          no process-global RNG state; per-cell RNGs derive
                                from seeds (decision digests must not depend on
                                call order or worker count)
REP002    container-truthiness  no ``if x:`` presence tests on classes that
                                define ``__len__`` (the PR-7 ``TraceCollector``
                                bug: an *empty* collector is falsy, silently
                                disabling tracing)
REP003    telemetry-purity      ``obs/`` never imports decision code, and
                                functions feeding ``decision_fields`` / digests
                                never mutate telemetry instruments
REP004    shm-discipline        ``SharedMemory(create=True)`` only inside the
                                blessed module and always paired with the
                                unlink-once registry; no raw ``unlink()``
                                elsewhere
REP005    blocking-async        no blocking calls (``time.sleep``, sockets,
                                sync file I/O, subprocesses) inside ``async
                                def`` server handlers
REP006    lock-across-await     no thread lock held across an ``await``
REP007    fork-reset            module-level ``Lock``/executor creation requires
                                an ``os.register_at_fork`` reset in the module
REP008    decision-fields       every dataclass field of a digest-carrying
                                report is either digested via
                                ``decision_fields()`` or explicitly marked
                                informational
========  ====================  =================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.base import (
    CheckConfig,
    ModuleInfo,
    Rule,
    Violation,
    register_rule,
)

__all__ = [
    "UnseededRngRule",
    "ContainerTruthinessRule",
    "TelemetryPurityRule",
    "SharedMemoryDisciplineRule",
    "BlockingInAsyncRule",
    "LockAcrossAwaitRule",
    "ForkResetRule",
    "DecisionFieldsRule",
]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_aliases(tree: ast.Module, target: str) -> Set[str]:
    """Local names bound to module ``target`` by ``import`` statements."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == target:
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def own_statements(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body, *excluding* nested function/lambda bodies.

    A call inside a nested ``def``/``lambda`` executes in that callable's
    context (e.g. a lambda handed to ``run_in_executor``), not in the
    enclosing function's — async-context rules must not cross the boundary.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _annotation_names(node: Optional[ast.AST]) -> Set[str]:
    """Class names mentioned in an annotation (sees through Optional[...])."""
    names: Set[str] = set()
    if node is None:
        return names
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations: "Optional[TraceCollector]".
            try:
                names |= _annotation_names(ast.parse(sub.value, mode="eval").body)
            except SyntaxError:
                pass
    return names


# ----------------------------------------------------------------------
# REP001 — unseeded RNG
# ----------------------------------------------------------------------
@register_rule
class UnseededRngRule(Rule):
    """Process-global RNG state breaks digest determinism.

    Decision digests must be bit-identical at any worker count; anything
    drawing from ``np.random``'s module-level state or the stdlib ``random``
    module depends on global call order.  Per-cell generators derived from
    seeds (``np.random.default_rng(seed)``) are the only sanctioned source.
    """

    rule_id = "REP001"
    name = "unseeded-rng"
    description = "no global/unseeded RNG outside test fixtures"
    hint = "derive a generator from a seed: rng = np.random.default_rng(seed)"

    def check(self, module: ModuleInfo, config: CheckConfig) -> Iterator[Violation]:
        if module.is_test:
            return
        numpy_names = module_aliases(module.tree, "numpy")
        random_names = module_aliases(module.tree, "random")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield self.violation(
                            module,
                            node,
                            f"import of global-state 'random.{alias.name}'",
                        )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            # np.random.<fn>(...) — module-level numpy RNG state.
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in numpy_names
                and func.attr not in config.numpy_random_allowed
            ):
                yield self.violation(
                    module, node, f"call to global-state 'np.random.{func.attr}'"
                )
            # random.<fn>(...) — the stdlib module's hidden global Mersenne
            # Twister (random.Random(seed) instances are explicitly seeded).
            if (
                isinstance(value, ast.Name)
                and value.id in random_names
                and func.attr != "Random"
            ):
                yield self.violation(
                    module, node, f"call to global-state 'random.{func.attr}'"
                )


# ----------------------------------------------------------------------
# REP002 — container truthiness
# ----------------------------------------------------------------------
@register_rule
class ContainerTruthinessRule(Rule):
    """``if x:`` on a ``__len__``-defining object tests emptiness, not presence.

    The PR-7 bug class: a fresh ``TraceCollector`` is falsy (``__len__`` is
    0), so ``if collector:`` silently disabled tracing in workers.  For the
    configured classes, presence must be spelled ``is not None``.
    """

    rule_id = "REP002"
    name = "container-truthiness"
    description = "no truthiness presence-tests on __len__-defining classes"
    hint = "an empty instance is falsy; test 'x is not None' instead"

    def check(self, module: ModuleInfo, config: CheckConfig) -> Iterator[Violation]:
        suspects = self._collect_suspects(module, config)
        if not suspects:
            return
        for node in ast.walk(module.tree):
            for tested in self._boolean_tests(node):
                name = dotted_name(tested)
                if name is not None and name in suspects:
                    yield self.violation(
                        module,
                        node,
                        f"truthiness test on {suspects[name]} instance {name!r}",
                    )

    @staticmethod
    def _boolean_tests(node: ast.AST) -> Iterator[ast.AST]:
        """Expressions evaluated *for their truth value* by ``node``."""
        if isinstance(node, (ast.If, ast.While)):
            yield node.test
        elif isinstance(node, ast.IfExp):
            yield node.test
        elif isinstance(node, ast.Assert):
            yield node.test
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            yield node.operand
        elif isinstance(node, ast.BoolOp):
            yield from node.values
        elif isinstance(node, ast.comprehension):
            yield from node.ifs

    def _collect_suspects(
        self, module: ModuleInfo, config: CheckConfig
    ) -> Dict[str, str]:
        """``{dotted name: class}`` for names known to hold suspect instances.

        Inference is deliberately simple and module-local: names (or
        ``self.x`` attributes) assigned from ``ClassName(...)`` calls, plus
        parameters/variables annotated with a suspect class (including
        ``Optional[ClassName]`` — exactly the PR-7 shape).
        """
        wanted = set(config.truthiness_classes)
        suspects: Dict[str, str] = {}

        def note(target: ast.AST, cls: str) -> None:
            name = dotted_name(target)
            if name is not None:
                suspects[name] = cls

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                call = node.value
                if isinstance(call, ast.Call):
                    callee = dotted_name(call.func)
                    cls = callee.rsplit(".", 1)[-1] if callee else None
                    if cls in wanted:
                        for target in node.targets:
                            note(target, cls)
            elif isinstance(node, ast.AnnAssign):
                for cls in _annotation_names(node.annotation) & wanted:
                    note(node.target, cls)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in [
                    *args.posonlyargs, *args.args, *args.kwonlyargs,
                    args.vararg, args.kwarg,
                ]:
                    if arg is None:
                        continue
                    for cls in _annotation_names(arg.annotation) & wanted:
                        suspects[arg.arg] = cls
        return suspects


# ----------------------------------------------------------------------
# REP003 — telemetry purity
# ----------------------------------------------------------------------
@register_rule
class TelemetryPurityRule(Rule):
    """Telemetry measures; it never decides — and never feeds back.

    Two directions: modules under the obs package must not import decision
    code (the zero-dependency guarantee), and functions that participate in
    decision digests (they reference ``decision_fields`` /
    ``decision_digest``) must not mutate metrics instruments — an ``inc()``
    inside digest computation would make exposition traffic part of the
    decision path.
    """

    rule_id = "REP003"
    name = "telemetry-purity"
    description = "obs imports no decision code; digest code mutates no instruments"
    hint = "record metrics outside decision_fields/digest paths; keep obs/ standalone"

    _MUTATORS = {"inc", "dec", "observe", "set"}
    _DIGEST_MARKERS = {"decision_fields", "decision_digest"}

    def check(self, module: ModuleInfo, config: CheckConfig) -> Iterator[Violation]:
        if config.obs_package in module.relpath.parts:
            yield from self._check_obs_imports(module, config)
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._touches_digest(node):
                continue
            for sub in own_statements(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in self._MUTATORS
                    and self._looks_like_instrument(sub.func.value)
                ):
                    yield self.violation(
                        module,
                        sub,
                        f"instrument mutation '.{sub.func.attr}()' inside "
                        f"digest-feeding function {node.name!r}",
                    )

    def _check_obs_imports(
        self, module: ModuleInfo, config: CheckConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                targets = [node.module]
            for target in targets:
                for forbidden in config.obs_forbidden_imports:
                    if target == forbidden or target.startswith(forbidden + "."):
                        yield self.violation(
                            module,
                            node,
                            f"obs module imports decision code {target!r}",
                            hint="obs/ stays zero-dependency; pass values in, "
                            "never import the engine",
                        )

    def _touches_digest(self, func: ast.AST) -> bool:
        for node in own_statements(func):
            if isinstance(node, ast.Attribute) and node.attr in self._DIGEST_MARKERS:
                return True
            if isinstance(node, ast.Name) and node.id in self._DIGEST_MARKERS:
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func and node.name in self._DIGEST_MARKERS:
                    return True
        return False

    @staticmethod
    def _looks_like_instrument(receiver: ast.AST) -> bool:
        """Heuristic: the mutated object reads like a metrics instrument."""
        name = dotted_name(receiver)
        if name is None:
            # e.g. self.metrics.counter(...).inc() — a call-chain receiver.
            if isinstance(receiver, ast.Call):
                callee = dotted_name(receiver.func)
                if callee is not None:
                    tail = callee.rsplit(".", 1)[-1]
                    return tail in {"counter", "gauge", "histogram"}
            return False
        tail = name.rsplit(".", 1)[-1].lower()
        markers = ("counter", "gauge", "histogram", "metric", "instrument")
        return any(marker in tail for marker in markers)


# ----------------------------------------------------------------------
# REP004 — shared-memory discipline
# ----------------------------------------------------------------------
@register_rule
class SharedMemoryDisciplineRule(Rule):
    """Segment creation and unlinking happen in exactly one module.

    ``SharedMemory(create=True)`` outside the blessed module bypasses the
    unlink-exactly-once registry (leaked ``/dev/shm`` blocks on crash);
    inside it, the creating function must register the segment.  Raw
    ``.unlink()`` calls anywhere else can double-unlink or strip a segment
    another owner still tracks.
    """

    rule_id = "REP004"
    name = "shm-discipline"
    description = "SharedMemory(create=True) and unlink() only via engine/shm.py"
    hint = "create segments through SharedArena; teardown through its close()"

    def check(self, module: ModuleInfo, config: CheckConfig) -> Iterator[Violation]:
        if not self._imports_shared_memory(module.tree):
            return
        is_blessed = module.relpath.name == config.shm_module
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = dotted_name(node.func)
            tail = func_name.rsplit(".", 1)[-1] if func_name else ""
            if tail == "SharedMemory" and self._has_create_true(node):
                if not is_blessed:
                    yield self.violation(
                        module,
                        node,
                        "SharedMemory(create=True) outside the blessed shm module",
                    )
                elif not self._registers_segment(module, node, config):
                    yield self.violation(
                        module,
                        node,
                        "segment created without registering in "
                        f"{config.shm_registry_name} (unlink-once registry)",
                        hint=f"add the segment to {config.shm_registry_name} in "
                        "the same function so the atexit sweep can reclaim it",
                    )
            elif tail == "unlink" and not is_blessed:
                if isinstance(node.func, ast.Attribute) and not node.args:
                    yield self.violation(
                        module,
                        node,
                        "raw shared-memory unlink() outside the blessed shm module",
                    )

    @staticmethod
    def _imports_shared_memory(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any("shared_memory" in alias.name for alias in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom):
                if node.module and "shared_memory" in node.module:
                    return True
                if any(alias.name == "shared_memory" for alias in node.names):
                    return True
        return False

    @staticmethod
    def _has_create_true(call: ast.Call) -> bool:
        for keyword in call.keywords:
            if keyword.arg == "create":
                value = keyword.value
                return not (
                    isinstance(value, ast.Constant) and value.value is False
                )
        return False

    @staticmethod
    def _registers_segment(
        module: ModuleInfo, call: ast.Call, config: CheckConfig
    ) -> bool:
        """The function containing ``call`` references the unlink registry."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found_call = any(sub is call for sub in ast.walk(node))
                if found_call:
                    return any(
                        isinstance(sub, ast.Name)
                        and sub.id == config.shm_registry_name
                        for sub in ast.walk(node)
                    )
        return False


# ----------------------------------------------------------------------
# REP005 — blocking calls in async handlers
# ----------------------------------------------------------------------
@register_rule
class BlockingInAsyncRule(Rule):
    """A blocking call inside ``async def`` stalls every connection.

    The server's handlers share one event loop; ``time.sleep``, socket
    construction, synchronous file I/O and subprocesses belong on an
    executor (``loop.run_in_executor``), never inline.  Nested ``def``/
    ``lambda`` bodies are exempt — they run wherever they are handed.
    """

    rule_id = "REP005"
    name = "blocking-async"
    description = "no blocking calls inside async def bodies"
    hint = "await asyncio.sleep(...) or push the work to loop.run_in_executor"

    #: Dotted call names that block the loop.
    _BLOCKING = {
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.delete",
        "requests.request",
    }

    def check(self, module: ModuleInfo, config: CheckConfig) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for sub in own_statements(node):
                if not isinstance(sub, ast.Call):
                    continue
                name = dotted_name(sub.func)
                if name in self._BLOCKING:
                    yield self.violation(
                        module,
                        sub,
                        f"blocking call {name}() inside async def {node.name!r}",
                    )
                elif isinstance(sub.func, ast.Name) and sub.func.id == "open":
                    yield self.violation(
                        module,
                        sub,
                        f"synchronous open() inside async def {node.name!r}",
                    )


# ----------------------------------------------------------------------
# REP006 — lock held across await
# ----------------------------------------------------------------------
@register_rule
class LockAcrossAwaitRule(Rule):
    """A thread lock held across ``await`` serializes the event loop.

    The coroutine suspends while holding the lock; any other task (or
    executor thread) touching the same lock blocks for the suspension's
    full duration — and two such coroutines can deadlock the loop outright.
    """

    rule_id = "REP006"
    name = "lock-across-await"
    description = "no threading lock held across an await point"
    hint = "narrow the critical section or switch to asyncio.Lock"

    def check(self, module: ModuleInfo, config: CheckConfig) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for sub in own_statements(node):
                if not isinstance(sub, ast.With):
                    continue
                lock_item = next(
                    (
                        item
                        for item in sub.items
                        if self._is_lock_expr(item.context_expr)
                    ),
                    None,
                )
                if lock_item is None:
                    continue
                awaited = next(
                    (
                        body_node
                        for stmt in sub.body
                        for body_node in self._own_walk(stmt)
                        if isinstance(body_node, ast.Await)
                    ),
                    None,
                )
                if awaited is not None:
                    name = dotted_name(lock_item.context_expr) or "<lock>"
                    yield self.violation(
                        module,
                        awaited,
                        f"await while holding thread lock {name!r} "
                        f"in async def {node.name!r}",
                    )

    @staticmethod
    def _own_walk(stmt: ast.AST) -> Iterator[ast.AST]:
        stack = [stmt]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_lock_expr(expr: ast.AST) -> bool:
        name = dotted_name(expr)
        if name is not None:
            tail = name.rsplit(".", 1)[-1].lower()
            return "lock" in tail or "mutex" in tail
        if isinstance(expr, ast.Call):
            callee = dotted_name(expr.func)
            if callee is None:
                return False
            tail = callee.rsplit(".", 1)[-1]
            return tail in {"Lock", "RLock"} or tail == "acquire"
        return False


# ----------------------------------------------------------------------
# REP007 — module-level locks need a fork reset
# ----------------------------------------------------------------------
@register_rule
class ForkResetRule(Rule):
    """A fork()ed child inherits locks but not the threads holding them.

    Module-level ``Lock``/``RLock``/executor objects are created once at
    import and survive into every forked gauntlet worker; one captured
    mid-acquire deadlocks the child forever.  Modules owning such state must
    register an ``os.register_at_fork`` reset (the pattern in
    ``engine/engine.py`` and ``obs/trace.py``).
    """

    rule_id = "REP007"
    name = "fork-reset"
    description = "module-level Lock/executor creation requires register_at_fork"
    hint = "add os.register_at_fork(after_in_child=...) replacing the lock"

    _FACTORIES = {
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
    }

    def check(self, module: ModuleInfo, config: CheckConfig) -> Iterator[Violation]:
        offenders: List[Tuple[ast.AST, str]] = []
        for node in module.tree.body:  # module level only
            values: List[Tuple[ast.AST, ast.AST]] = []
            if isinstance(node, ast.Assign):
                values = [(node, node.value)]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                values = [(node, node.value)]
            for stmt, value in values:
                if not isinstance(value, ast.Call):
                    continue
                callee = dotted_name(value.func)
                tail = callee.rsplit(".", 1)[-1] if callee else ""
                if tail in self._FACTORIES:
                    offenders.append((stmt, tail))
        if not offenders:
            return
        has_reset = any(
            (isinstance(node, ast.Attribute) and node.attr == "register_at_fork")
            or (isinstance(node, ast.Name) and node.id == "register_at_fork")
            for node in ast.walk(module.tree)
        )
        if has_reset:
            return
        for stmt, factory in offenders:
            yield self.violation(
                module,
                stmt,
                f"module-level {factory}() without a register_at_fork reset",
            )


# ----------------------------------------------------------------------
# REP008 — decision-field coverage of digest-carrying reports
# ----------------------------------------------------------------------
@register_rule
class DecisionFieldsRule(Rule):
    """Every report field is either digested or declared informational.

    Digest-carrying dataclasses (those defining ``decision_fields()``) are
    the worker-count-equivalence contract: a field silently left out of both
    the digest and the informational list is exactly how a decision-relevant
    value escapes the equivalence gates.  Mark non-digested fields with
    ``field(metadata={"informational": True})`` or list them in a class
    attribute ``INFORMATIONAL_FIELDS``.
    """

    rule_id = "REP008"
    name = "decision-fields"
    description = "report dataclass fields are digested or marked informational"
    hint = ('mark with field(metadata={"informational": True}) or add the name '
            "to INFORMATIONAL_FIELDS")

    def check(self, module: ModuleInfo, config: CheckConfig) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_dataclass(node):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "decision_fields" not in methods:
                continue
            digested = self._self_attr_closure(methods, "decision_fields")
            informational = self._informational_names(node)
            for item in node.body:
                if not isinstance(item, ast.AnnAssign):
                    continue
                if not isinstance(item.target, ast.Name):
                    continue
                field_name = item.target.id
                if "ClassVar" in _annotation_names(item.annotation):
                    continue
                if field_name in digested or field_name in informational:
                    continue
                if self._marked_informational(item.value):
                    continue
                yield self.violation(
                    module,
                    item,
                    f"field {field_name!r} of {node.name} is neither digested "
                    "by decision_fields() nor marked informational",
                )

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = dotted_name(target)
            if name and name.rsplit(".", 1)[-1] == "dataclass":
                return True
        return False

    @staticmethod
    def _self_attr_closure(methods: Mapping[str, ast.AST], start: str) -> Set[str]:
        """``self.X`` names reachable from ``start`` through own methods.

        Follows references like ``self.cell_id`` into the ``cell_id``
        property so indirectly digested fields count as covered.
        """
        seen_methods: Set[str] = set()
        attrs: Set[str] = set()
        queue = [start]
        while queue:
            current = queue.pop()
            if current in seen_methods or current not in methods:
                continue
            seen_methods.add(current)
            for node in ast.walk(methods[current]):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    attrs.add(node.attr)
                    if node.attr in methods:
                        queue.append(node.attr)
        return attrs

    @staticmethod
    def _informational_names(node: ast.ClassDef) -> Set[str]:
        """Names listed in a class-level ``INFORMATIONAL_FIELDS`` tuple/set."""
        names: Set[str] = set()
        for item in node.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(item, ast.Assign):
                targets, value = item.targets, item.value
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                targets, value = [item.target], item.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "INFORMATIONAL_FIELDS"
                    and isinstance(value, (ast.Tuple, ast.List, ast.Set, ast.Call))
                ):
                    container = value
                    if isinstance(container, ast.Call):  # frozenset({...})
                        container = container.args[0] if container.args else None
                    elts = getattr(container, "elts", [])
                    for elt in elts:
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                            names.add(elt.value)
        return names

    @staticmethod
    def _marked_informational(value: Optional[ast.AST]) -> bool:
        """``field(metadata={"informational": True})`` on the assignment."""
        if not isinstance(value, ast.Call):
            return False
        callee = dotted_name(value.func)
        if not callee or callee.rsplit(".", 1)[-1] != "field":
            return False
        for keyword in value.keywords:
            if keyword.arg != "metadata" or not isinstance(keyword.value, ast.Dict):
                continue
            for key, val in zip(keyword.value.keys, keyword.value.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "informational"
                    and isinstance(val, ast.Constant)
                    and bool(val.value)
                ):
                    return True
        return False
