"""Dynamic lock-order witness: a lockdep-style deadlock detector.

The static rules catch what source text shows; lock-ordering bugs live in
*execution interleavings*.  This module instruments ``threading.Lock`` /
``threading.RLock`` so every **blocking** acquisition records which locks
the acquiring thread already held, building a directed acquisition-order
graph across the whole process (engine ``PlanCache`` / ``SlotAllocator`` /
session / registry / dispatcher locks included, since they all allocate
through ``threading.Lock()``).  A cycle in that graph — thread 1 takes
A then B, thread 2 takes B then A — is a potential deadlock *even if no
run ever hangs*, because the witness aggregates orderings across the whole
suite rather than waiting for the fatal interleaving.

Usage::

    from repro.analysis import lockgraph
    lockgraph.enable()          # patch threading.Lock/RLock factories
    ...                         # run the workload
    report = lockgraph.witness.report()
    lockgraph.disable()
    assert not report.cycles, report.render()

or suite-wide via the pytest plugin: ``pytest --lock-witness`` (or
``REPRO_LOCK_WITNESS=1``).

Design notes:

* The witness's own bookkeeping uses raw ``_thread.allocate_lock`` so
  instrumentation never recurses into itself.
* Locks are *named by creation site* (``file.py:lineno``); edges between
  two locks sharing one site are ignored (many-instances-per-site pools,
  e.g. per-key locks, would otherwise self-cycle by name).
* Only blocking, infinite-timeout acquires record edges.  Nonblocking
  probes (``Condition._is_owned``'s ``acquire(0)`` fallback) and timed
  acquires cannot deadlock forever and would only add noise.
* Fork hygiene: ``os.register_at_fork`` clears the child's graph and held
  stacks — a forked gauntlet worker starts with an empty witness, and its
  memory is copy-on-write, so worker-side edges can never reach the parent
  graph.  Spawn workers re-import fresh and never call :func:`enable` at
  all.  Every edge additionally records the pid that created it, which the
  tests assert on.
* A blocking re-acquire of a non-reentrant lock the thread already holds
  is certain deadlock; the witness raises :class:`SelfDeadlockError`
  instead of hanging the suite.
"""

from __future__ import annotations

import _thread
import os
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockOrderReport",
    "LockWitness",
    "SelfDeadlockError",
    "disable",
    "enable",
    "is_enabled",
    "witness",
]

_allocate = _thread.allocate_lock  # the un-patchable original
_real_rlock = threading.RLock  # captured before any patching


class SelfDeadlockError(RuntimeError):
    """Blocking re-acquire of a held non-reentrant lock — certain deadlock."""


@dataclass(frozen=True)
class Edge:
    """One observed ordering: ``src`` was held while ``dst`` was acquired."""

    src: str
    dst: str

    def __str__(self) -> str:
        return f"{self.src} -> {self.dst}"


@dataclass
class EdgeInfo:
    """Bookkeeping for one edge (first sighting wins for provenance)."""

    count: int = 0
    pid: int = 0
    thread_name: str = ""


@dataclass
class LockOrderReport:
    """What the witness saw: the graph plus everything wrong with it."""

    edges: Dict[Edge, EdgeInfo] = field(default_factory=dict)
    cycles: List[List[str]] = field(default_factory=list)
    self_deadlocks: List[str] = field(default_factory=list)
    locks_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.cycles and not self.self_deadlocks

    def render(self) -> str:
        lines = [
            f"lock witness: {self.locks_seen} lock(s), "
            f"{len(self.edges)} ordering edge(s), "
            f"{len(self.cycles)} cycle(s), "
            f"{len(self.self_deadlocks)} self-deadlock(s)"
        ]
        for cycle in self.cycles:
            chain = " -> ".join(cycle + cycle[:1])
            lines.append(f"  CYCLE: {chain}")
            for src, dst in zip(cycle, cycle[1:] + cycle[:1]):
                info = self.edges.get(Edge(src, dst))
                if info is not None:
                    lines.append(
                        f"    {src} held while acquiring {dst} "
                        f"(x{info.count}, pid {info.pid}, "
                        f"thread {info.thread_name!r})"
                    )
        for entry in self.self_deadlocks:
            lines.append(f"  SELF-DEADLOCK: {entry}")
        return "\n".join(lines)


def _creation_site() -> str:
    """``file.py:lineno`` of the first frame outside this module/threading."""
    frame = sys._getframe(1)
    skip = (__file__, threading.__file__)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename not in skip:
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class LockWitness:
    """Process-wide acquisition-order graph and per-thread held stacks."""

    def __init__(self) -> None:
        self._state_lock = _allocate()
        self._tls = threading.local()
        self._edges: Dict[Edge, EdgeInfo] = {}
        self._self_deadlocks: List[str] = []
        self._locks_seen = 0
        self.enabled = False

    # -- per-thread held stack -----------------------------------------
    def _held(self) -> List[Tuple[int, str]]:
        """This thread's stack of ``(lock id, name)`` currently held."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Drop all recorded state (fresh state lock: fork-safe)."""
        self._state_lock = _allocate()
        self._tls = threading.local()
        with self._state_lock:
            self._edges = {}
            self._self_deadlocks = []
            self._locks_seen = 0

    def note_lock_created(self) -> None:
        with self._state_lock:
            self._locks_seen += 1

    # -- recording ------------------------------------------------------
    def before_blocking_acquire(
        self, lock_id: int, name: str, reentrant: bool
    ) -> None:
        """Called on a blocking infinite-timeout acquire *attempt*.

        Records edges at attempt time (like lockdep) so an ordering is
        captured even if the acquire itself would wedge; detects certain
        self-deadlock for non-reentrant locks.
        """
        if not self.enabled:
            return
        held = self._held()
        if not reentrant and any(hid == lock_id for hid, _ in held):
            entry = (
                f"{name} re-acquired while held "
                f"(pid {os.getpid()}, thread {threading.current_thread().name!r})"
            )
            with self._state_lock:
                self._self_deadlocks.append(entry)
            raise SelfDeadlockError(entry)
        if not held:
            return
        pid = os.getpid()
        thread_name = threading.current_thread().name
        with self._state_lock:
            seen: Set[str] = set()
            for _, held_name in held:
                # Same-site pairs (lock pools) would self-cycle by name.
                if held_name == name or held_name in seen:
                    continue
                seen.add(held_name)
                info = self._edges.setdefault(
                    Edge(held_name, name), EdgeInfo(pid=pid, thread_name=thread_name)
                )
                info.count += 1

    def on_acquired(self, lock_id: int, name: str) -> None:
        if not self.enabled:
            return
        self._held().append((lock_id, name))

    def on_released(self, lock_id: int) -> None:
        if not self.enabled:
            return
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] == lock_id:
                del held[index]
                return

    # -- reporting ------------------------------------------------------
    def edges_snapshot(self) -> Dict[Edge, EdgeInfo]:
        with self._state_lock:
            return {
                edge: EdgeInfo(info.count, info.pid, info.thread_name)
                for edge, info in self._edges.items()
            }

    def find_cycles(self) -> List[List[str]]:
        """Elementary cycles in the name graph via iterative Tarjan SCCs.

        Within each non-trivial SCC, one representative cycle is recovered
        by BFS (shortest loop through the SCC's first node) — enough to
        name the offending locks without enumerating every permutation.
        """
        edges = self.edges_snapshot()
        graph: Dict[str, Set[str]] = {}
        for edge in edges:
            graph.setdefault(edge.src, set()).add(edge.dst)
            graph.setdefault(edge.dst, set())
        sccs = _tarjan_sccs(graph)
        cycles: List[List[str]] = []
        for component in sccs:
            if len(component) > 1:
                cycle = _cycle_through(graph, component)
                if cycle:
                    cycles.append(cycle)
        return cycles

    def report(self) -> LockOrderReport:
        with self._state_lock:
            self_deadlocks = list(self._self_deadlocks)
            locks_seen = self._locks_seen
        return LockOrderReport(
            edges=self.edges_snapshot(),
            cycles=self.find_cycles(),
            self_deadlocks=self_deadlocks,
            locks_seen=locks_seen,
        )


def _tarjan_sccs(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components, iteratively (no recursion limit)."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in graph:
        if root in index_of:
            continue
        work: List[Tuple[str, List[str], int]] = [
            (root, sorted(graph.get(root, ())), 0)
        ]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors, cursor = work.pop()
            advanced = False
            while cursor < len(successors):
                succ = successors[cursor]
                cursor += 1
                if succ not in index_of:
                    work.append((node, successors, cursor))
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(graph.get(succ, ())), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def _cycle_through(
    graph: Dict[str, Set[str]], component: List[str]
) -> Optional[List[str]]:
    """Shortest cycle through ``component[0]`` staying inside the SCC."""
    members = set(component)
    start = component[0]
    parents: Dict[str, Optional[str]] = {start: None}
    frontier = [start]
    while frontier:
        next_frontier: List[str] = []
        for node in frontier:
            for succ in sorted(graph.get(node, ())):
                if succ == start:
                    path = [node]
                    cursor: Optional[str] = parents[node]
                    while cursor is not None:
                        path.append(cursor)
                        cursor = parents[cursor]
                    return list(reversed(path))
                if succ in members and succ not in parents:
                    parents[succ] = node
                    next_frontier.append(succ)
        frontier = next_frontier
    return None


#: The process-wide witness instance.
witness = LockWitness()


class _WitnessBase:
    """Shared machinery for the Lock/RLock wrappers.

    Unknown attributes delegate to the wrapped primitive so
    ``threading.Condition``'s ``_release_save`` / ``_acquire_restore`` /
    ``_is_owned`` probing keeps working for both lock flavors.
    """

    _reentrant = False

    def __init__(self, inner: object, name: str) -> None:
        self._inner = inner
        self._name = name
        witness.note_lock_created()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking and timeout == -1:
            witness.before_blocking_acquire(id(self), self._name, self._reentrant)
        got = self._inner.acquire(blocking, timeout)  # type: ignore[attr-defined]
        if got:
            witness.on_acquired(id(self), self._name)
        return got

    def release(self) -> None:
        self._inner.release()  # type: ignore[attr-defined]
        witness.on_released(id(self))

    def locked(self) -> bool:
        return self._inner.locked()  # type: ignore[attr-defined]

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __getattr__(self, attr: str) -> object:
        return getattr(self._inner, attr)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._name} wrapping {self._inner!r}>"


class WitnessLock(_WitnessBase):
    """Instrumented stand-in for ``threading.Lock()``."""

    _reentrant = False


class WitnessRLock(_WitnessBase):
    """Instrumented stand-in for ``threading.RLock()``.

    Reentrant: repeated acquires by the owner are legal, so only the first
    acquisition pushes onto the held stack and only the final release pops.
    ``Condition`` integration is explicit (not just delegated) so the
    wait-time release/reacquire keeps the held stack truthful.
    """

    _reentrant = True

    def __init__(self, inner: object, name: str) -> None:
        super().__init__(inner, name)
        self._owner: Optional[int] = None
        self._depth = 0
        self._meta = _allocate()  # guards _owner/_depth, never held long

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        with self._meta:
            reacquire = self._owner == me
        if blocking and timeout == -1 and not reacquire:
            witness.before_blocking_acquire(id(self), self._name, True)
        got = self._inner.acquire(blocking, timeout)  # type: ignore[attr-defined]
        if got:
            with self._meta:
                self._owner = me
                self._depth += 1
                first = self._depth == 1
            if first:
                witness.on_acquired(id(self), self._name)
        return got

    def release(self) -> None:
        self._inner.release()  # type: ignore[attr-defined]
        with self._meta:
            self._depth -= 1
            last = self._depth == 0
            if last:
                self._owner = None
        if last:
            witness.on_released(id(self))

    # Condition protocol — keep the held stack honest across wait().
    def _release_save(self) -> object:
        state = self._inner._release_save()  # type: ignore[attr-defined]
        with self._meta:
            self._depth = 0
            self._owner = None
        witness.on_released(id(self))
        return state

    def _acquire_restore(self, state: object) -> None:
        # Post-wait reacquire: a genuine acquisition, but recording edges
        # here would blame condition waits for orderings the user never
        # wrote; track held-ness only.
        self._inner._acquire_restore(state)  # type: ignore[attr-defined]
        with self._meta:
            self._owner = threading.get_ident()
            self._depth = 1
        witness.on_acquired(id(self), self._name)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()  # type: ignore[attr-defined]


def _lock_factory() -> WitnessLock:
    return WitnessLock(_allocate(), _creation_site())


def _rlock_factory() -> WitnessRLock:
    return WitnessRLock(_real_rlock(), _creation_site())


_fork_hook_installed = False


def _reset_after_fork() -> None:
    """A forked child starts with an empty graph — parent purity by fiat."""
    witness.reset()


def enable() -> None:
    """Patch ``threading.Lock``/``threading.RLock`` and start recording.

    Locks created *before* enabling stay uninstrumented; in the pytest
    plugin this is called at configure time, before the ``src/`` modules
    (and their module-level locks) are imported by tests.
    """
    global _fork_hook_installed
    if not _fork_hook_installed:
        os.register_at_fork(after_in_child=_reset_after_fork)
        _fork_hook_installed = True
    threading.Lock = _lock_factory  # type: ignore[misc]
    threading.RLock = _rlock_factory  # type: ignore[misc]
    witness.enabled = True


def disable() -> None:
    """Restore the real factories and stop recording.

    Already-created wrapper locks keep functioning (they wrap real
    primitives) but record nothing further.
    """
    threading.Lock = _allocate  # type: ignore[misc]
    threading.RLock = _real_rlock  # type: ignore[misc]
    witness.enabled = False


def is_enabled() -> bool:
    return witness.enabled
