"""Core machinery of the repo-specific static analysis pass.

Generic linters know nothing about this codebase's load-bearing invariants —
bit-identical decision digests at any worker count, telemetry that measures
but never decides, seed-derived RNGs only, exactly-once shared-memory
unlink, fork-safe locks.  ``repro check`` encodes them as small AST rules
(:mod:`repro.analysis.rules`) run over parsed modules by :func:`run_checks`.

The pieces:

* :class:`Violation` — one finding: ``file:line`` + rule id + message + fix
  hint, with a line-content :attr:`~Violation.fingerprint` stable under
  unrelated edits (used by the baseline workflow).
* :class:`Rule` — base class; subclasses register via :func:`register_rule`
  and implement :meth:`Rule.check` over a :class:`ModuleInfo`.
* :class:`CheckConfig` — the knobs rules consult (the truthiness class
  list, the obs package name, the blessed shared-memory module, ...).
* :func:`run_checks` — walk paths, parse, run rules, apply the optional
  baseline; importable API behind the ``repro check`` CLI.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # circular at runtime: baseline.py imports Violation
    from repro.analysis.baseline import Baseline

__all__ = [
    "CheckConfig",
    "CheckResult",
    "ModuleInfo",
    "Rule",
    "Violation",
    "all_rules",
    "iter_python_files",
    "register_rule",
    "run_checks",
]


@dataclass(frozen=True)
class CheckConfig:
    """Repo-specific knobs consulted by the rules.

    Defaults describe *this* repository; downstream callers may override
    (e.g. a different truthiness class list, or extra RNG exemptions).
    """

    #: Classes that define ``__len__`` but are used as presence flags —
    #: ``if collector:`` silently means "non-empty", not "present" (the PR-7
    #: ``TraceCollector`` bug class).  Rule REP002.
    truthiness_classes: Tuple[str, ...] = (
        "TraceCollector",
        "PlanCache",
        "KeyRegistry",
        "SlotAllocator",
    )
    #: ``np.random`` attributes that are fine to call: everything else on the
    #: module touches (or *is*) process-global RNG state.  Rule REP001.
    numpy_random_allowed: Tuple[str, ...] = (
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
    )
    #: Package directory (a path segment) whose modules must stay free of
    #: decision-code imports.  Rule REP003.
    obs_package: str = "obs"
    #: Top-level packages the obs layer may never import from.  Rule REP003.
    obs_forbidden_imports: Tuple[str, ...] = (
        "repro.engine",
        "repro.core",
        "repro.robustness",
        "repro.service",
        "repro.quant",
        "repro.attacks",
        "repro.experiments",
    )
    #: Basename of the one module allowed to create/unlink shared-memory
    #: segments.  Rule REP004.
    shm_module: str = "shm.py"
    #: Name that marks the unlink-once registry a ``SharedMemory(create=True)``
    #: must be paired with.  Rule REP004.
    shm_registry_name: str = "_LIVE_SEGMENTS"
    #: Path segments that mark a module as test/fixture code, exempt from the
    #: unseeded-RNG rule (test fixtures legitimately use convenience RNGs).
    test_path_segments: Tuple[str, ...] = ("tests", "fixtures", "conftest.py")

    def is_test_path(self, relpath: Path) -> bool:
        """True when ``relpath`` lies in test/fixture territory."""
        parts = set(relpath.parts)
        return any(segment in parts for segment in self.test_path_segments)


@dataclass(frozen=True)
class Violation:
    """One rule finding, pointing at ``path:line``."""

    path: str  # POSIX-style path as given to the checker
    line: int
    col: int
    rule_id: str
    message: str
    hint: str = ""
    source_line: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for the baseline: rule + file + offending text.

        Deliberately excludes the line *number*, so edits elsewhere in the
        file do not invalidate grandfathered entries; two identical offending
        lines in one file share a fingerprint and are baselined by count.
        """
        basis = f"{self.rule_id}:{self.path}:{self.source_line.strip()}"
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """``file:line:col: RULE message (hint)`` — the CLI output line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class ModuleInfo:
    """One parsed module handed to every rule."""

    path: Path  # as discovered (possibly relative to the CWD)
    relpath: Path  # relative to the checked root (rules match on this)
    source: str
    tree: ast.Module
    is_test: bool

    _lines: Optional[List[str]] = field(default=None, repr=False)

    @property
    def lines(self) -> List[str]:
        if self._lines is None:
            self._lines = self.source.splitlines()
        return self._lines

    def line_text(self, lineno: int) -> str:
        """The 1-indexed source line (empty for out-of-range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for one invariant check.

    Subclasses define the class attributes and implement :meth:`check`,
    yielding :class:`Violation` objects.  :meth:`violation` builds one with
    the module/node bookkeeping filled in.
    """

    rule_id: str = "REP000"
    name: str = "base"
    description: str = ""
    hint: str = ""

    def check(self, module: ModuleInfo, config: CheckConfig) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Violation:
        lineno = getattr(node, "lineno", 1)
        return Violation(
            path=module.relpath.as_posix(),
            line=lineno,
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            hint=self.hint if hint is None else hint,
            source_line=module.line_text(lineno),
        )


_RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry (id-unique)."""
    if cls.rule_id in _RULE_REGISTRY:
        raise ValueError(f"rule id {cls.rule_id!r} registered twice")
    _RULE_REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, id-sorted."""
    # Importing the rules module populates the registry on first use.
    from repro.analysis import rules as _rules  # noqa: F401

    return [_RULE_REGISTRY[rule_id]() for rule_id in sorted(_RULE_REGISTRY)]


def iter_python_files(paths: Sequence[Path]) -> Iterator[Tuple[Path, Path]]:
    """Yield ``(file, relpath)`` for every ``.py`` under ``paths``.

    ``relpath`` is relative to the given root (or the file's parent for a
    single-file path), which is what rules match module locations on.
    Hidden directories and ``__pycache__`` are skipped.
    """
    for root in paths:
        root = Path(root)
        if root.is_file():
            yield root, Path(root.name)
            continue
        for candidate in sorted(root.rglob("*.py")):
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in candidate.relative_to(root).parts
            ):
                continue
            yield candidate, candidate.relative_to(root)


@dataclass
class CheckResult:
    """Outcome of one :func:`run_checks` invocation."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing (beyond the baseline) was found."""
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (the ``repro check --json`` payload)."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": self.rules_run,
            "violations": [
                {
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "rule": v.rule_id,
                    "message": v.message,
                    "hint": v.hint,
                    "fingerprint": v.fingerprint,
                }
                for v in self.violations
            ],
            "suppressed": len(self.suppressed),
        }

    def render(self) -> str:
        """Human-readable report."""
        lines = [violation.render() for violation in self.violations]
        summary = (
            f"{len(self.violations)} violation(s) in {self.files_checked} file(s), "
            f"{len(self.rules_run)} rule(s)"
        )
        if self.suppressed:
            summary += f", {len(self.suppressed)} baselined"
        lines.append(summary)
        return "\n".join(lines)


def run_checks(
    paths: Sequence,
    rules: Optional[Iterable[Rule]] = None,
    config: Optional[CheckConfig] = None,
    baseline: "Optional[Baseline]" = None,
) -> CheckResult:
    """Run the invariant rules over every Python file under ``paths``.

    Parameters
    ----------
    paths:
        Files or directories to scan.
    rules:
        Rule instances to run; defaults to every registered rule.
    config:
        Repo-specific knobs; defaults to :class:`CheckConfig`.
    baseline:
        Optional :class:`repro.analysis.baseline.Baseline`; matching
        violations land in ``suppressed`` instead of ``violations``.
    """
    config = config or CheckConfig()
    active = list(rules) if rules is not None else all_rules()
    result = CheckResult(rules_run=[rule.rule_id for rule in active])
    violations: List[Violation] = []
    for path, relpath in iter_python_files([Path(p) for p in paths]):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            violations.append(
                Violation(
                    path=relpath.as_posix(),
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    rule_id="REP000",
                    message=f"could not parse: {exc}",
                    hint="fix the syntax error; unparseable files are unchecked",
                )
            )
            result.files_checked += 1
            continue
        module = ModuleInfo(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            is_test=config.is_test_path(relpath),
        )
        result.files_checked += 1
        for rule in active:
            violations.extend(rule.check(module, config))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    if baseline is not None:
        fresh, suppressed = baseline.filter(violations)
        result.violations = fresh
        result.suppressed = suppressed
    else:
        result.violations = violations
    return result
