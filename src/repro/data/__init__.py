"""Synthetic data substrate.

The paper evaluates watermarked models on WikiText-2 perplexity and on the
mean zero-shot accuracy of LAMBADA, HellaSwag, PIQA and WinoGrande.  Those
corpora are not available offline, so this package provides synthetic
replacements that exercise the same code paths:

* :mod:`repro.data.corpus` — a Zipf–Markov token stream generator that
  produces corpora with realistic unigram skew and local structure.
* :mod:`repro.data.tokenizer` — a tiny vocabulary/tokenizer abstraction.
* :mod:`repro.data.wikitext` — a "WikiText-sim" dataset with deterministic
  train/validation splits used for language-model fitting and perplexity.
* :mod:`repro.data.tasks` — four synthetic zero-shot task families scored
  with length-normalised log-likelihood, mirroring the LM-eval-harness
  protocol the paper uses.
* :mod:`repro.data.alpaca` — a synthetic instruction-following corpus used
  to build the fine-tuned "non-watermarked" models of the integrity study.
"""

from repro.data.tokenizer import Vocabulary
from repro.data.corpus import MarkovCorpusGenerator, TokenCorpus
from repro.data.wikitext import WikiTextSim, load_wikitext_sim
from repro.data.tasks import (
    MultipleChoiceExample,
    ZeroShotTask,
    build_task_suite,
)
from repro.data.alpaca import AlpacaSim, load_alpaca_sim

__all__ = [
    "Vocabulary",
    "MarkovCorpusGenerator",
    "TokenCorpus",
    "WikiTextSim",
    "load_wikitext_sim",
    "MultipleChoiceExample",
    "ZeroShotTask",
    "build_task_suite",
    "AlpacaSim",
    "load_alpaca_sim",
]
