"""Synthetic token-corpus generation.

The generator produces a stream of token ids with two statistical properties
that matter for the reproduction:

1. **Zipfian unigram distribution** — like natural text, a few tokens are very
   frequent and most are rare.  This creates the skewed embedding/activation
   statistics that activation-aware quantization (AWQ, SmoothQuant) and
   EmMark's saliency score rely on.
2. **Markov local structure** — each token's distribution depends on the
   previous token through a sparse transition matrix, so a language model fit
   on the corpus achieves a perplexity well below vocabulary size and the
   perplexity *degrades* when its weights are corrupted.  A purely i.i.d.
   corpus would not show that degradation, because no model can beat the
   unigram entropy anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.data.tokenizer import Vocabulary
from repro.utils.rng import new_rng

__all__ = ["TokenCorpus", "MarkovCorpusGenerator"]


@dataclass
class TokenCorpus:
    """A flat sequence of token ids plus the vocabulary that produced it.

    Parameters
    ----------
    tokens:
        1-D array of integer token ids.
    vocabulary:
        The :class:`~repro.data.tokenizer.Vocabulary` the ids refer to.
    name:
        Human-readable name (e.g. ``"wikitext-sim/validation"``).
    """

    tokens: np.ndarray
    vocabulary: Vocabulary
    name: str = "corpus"

    def __post_init__(self) -> None:
        self.tokens = np.asarray(self.tokens, dtype=np.int64)
        if self.tokens.ndim != 1:
            raise ValueError("token corpus must be a 1-D array of token ids")
        if self.tokens.size and (
            self.tokens.min() < 0 or self.tokens.max() >= len(self.vocabulary)
        ):
            raise ValueError("token ids out of vocabulary range")

    def __len__(self) -> int:
        return int(self.tokens.size)

    def batches(
        self, sequence_length: int, max_sequences: Optional[int] = None
    ) -> Iterator[np.ndarray]:
        """Yield contiguous, non-overlapping sequences of ``sequence_length``.

        The trailing remainder that does not fill a complete sequence is
        dropped, mirroring the standard perplexity-evaluation protocol of
        splitting the corpus into fixed-length windows.
        """
        if sequence_length < 2:
            raise ValueError("sequence_length must be >= 2 for next-token loss")
        n_full = len(self) // sequence_length
        if max_sequences is not None:
            n_full = min(n_full, max_sequences)
        for i in range(n_full):
            yield self.tokens[i * sequence_length : (i + 1) * sequence_length]

    def as_matrix(
        self, sequence_length: int, max_sequences: Optional[int] = None
    ) -> np.ndarray:
        """Stack :meth:`batches` into a ``(n_sequences, sequence_length)`` matrix."""
        sequences = list(self.batches(sequence_length, max_sequences))
        if not sequences:
            return np.zeros((0, sequence_length), dtype=np.int64)
        return np.stack(sequences)

    def split(self, fraction: float, names: Optional[List[str]] = None) -> List["TokenCorpus"]:
        """Split the corpus into two contiguous pieces.

        Parameters
        ----------
        fraction:
            Fraction of tokens (0 < fraction < 1) assigned to the first piece.
        names:
            Optional two-element list of names for the pieces.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be strictly between 0 and 1")
        cut = int(round(len(self) * fraction))
        cut = max(1, min(len(self) - 1, cut))
        first_name, second_name = names or (f"{self.name}/train", f"{self.name}/validation")
        return [
            TokenCorpus(self.tokens[:cut], self.vocabulary, first_name),
            TokenCorpus(self.tokens[cut:], self.vocabulary, second_name),
        ]


class MarkovCorpusGenerator:
    """Generates Zipf–Markov synthetic corpora.

    The generator builds a Markov chain of configurable ``order`` over the
    regular tokens of a vocabulary.  The stationary behaviour is approximately
    Zipfian: token ``k`` (ranked by frequency) has base probability
    proportional to ``1 / (k + 2.7) ** zipf_exponent``.  On top of the base
    distribution, each state (the last ``order`` tokens) has a small set of
    "successor" tokens that it strongly prefers, giving the chain predictable
    local structure.

    The default order is 2.  This matters for the reproduction: a first-order
    chain can be modelled by the (full-precision, never-quantized) embedding →
    LM-head path alone, which would make the quantized transformer blocks —
    the layers EmMark watermarks — irrelevant to model quality.  With a
    second-order chain the model must route information about the
    second-to-last token through attention and the MLPs, so corrupting those
    quantized weights produces the perplexity/accuracy degradation the paper's
    fidelity and attack experiments measure.

    Parameters
    ----------
    vocabulary:
        Target vocabulary.
    zipf_exponent:
        Skew of the unigram distribution; ~1.0 mimics natural language.
    branching:
        Number of preferred successors per state.
    coherence:
        Probability mass assigned to the preferred successors (the remainder
        falls back to the Zipfian base distribution).  Higher values make the
        corpus easier to model and widen the gap between an intact and a
        corrupted language model.
    order:
        Markov order: the next token depends on the previous ``order`` tokens.
    num_groups:
        For ``order=2`` the chain state is the pair of *group* ids of the last
        two tokens (tokens are hashed into ``num_groups`` groups).  This keeps
        the number of distinct states small enough (``num_groups²``) for a
        small transformer to learn the transition structure from a modest
        corpus, while still forcing it to route information about the
        second-to-last token through its attention layers.
    seed:
        Seed controlling both the chain construction and sampling.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        zipf_exponent: float = 1.05,
        branching: int = 4,
        coherence: float = 0.9,
        order: int = 2,
        num_groups: int = 16,
        seed: int = 0,
    ) -> None:
        if not 0.0 < coherence < 1.0:
            raise ValueError("coherence must be in (0, 1)")
        if branching < 1:
            raise ValueError("branching must be >= 1")
        if order not in (1, 2):
            raise ValueError("order must be 1 or 2")
        if num_groups < 2:
            raise ValueError("num_groups must be >= 2")
        self.vocabulary = vocabulary
        self.zipf_exponent = float(zipf_exponent)
        self.branching = int(branching)
        self.coherence = float(coherence)
        self.order = int(order)
        self.num_groups = int(num_groups)
        self.seed = int(seed)
        self._base_probs = self._build_base_distribution()
        self._successor_rng_seed = int(new_rng(self.seed, "markov-successors").integers(0, 2**31 - 1))
        self._token_groups = self._build_token_groups()
        self._successor_cache: dict = {}

    # -- chain construction --------------------------------------------------
    def _build_base_distribution(self) -> np.ndarray:
        n = self.vocabulary.num_regular_tokens
        ranks = np.arange(n, dtype=np.float64)
        weights = 1.0 / np.power(ranks + 2.7, self.zipf_exponent)
        return weights / weights.sum()

    def _build_token_groups(self) -> np.ndarray:
        """Assign every regular token to one of ``num_groups`` groups."""
        n = self.vocabulary.num_regular_tokens
        rng = new_rng(self.seed, "markov-groups")
        return rng.integers(0, self.num_groups, size=n)

    def token_group(self, token_id: int) -> int:
        """Group id of a regular ``token_id`` (used by tests)."""
        offset = self.vocabulary.first_regular_id
        state = int(token_id) - offset
        if not 0 <= state < self.vocabulary.num_regular_tokens:
            raise ValueError("token_id must refer to a regular token")
        return int(self._token_groups[state])

    def _state_key(self, previous: tuple) -> tuple:
        """Reduce the token history (regular-token indices) to the chain state.

        For a first-order chain the state is the last token itself; for a
        second-order chain it is the pair ``(group(prev2), group(prev1))``.
        """
        if len(previous) < self.order:
            previous = (previous[0],) * (self.order - len(previous)) + tuple(previous)
        previous = tuple(previous[-self.order :])
        if self.order == 1:
            return previous
        return tuple(int(self._token_groups[p]) for p in previous)

    def _successors_for_state(self, state: tuple) -> tuple[np.ndarray, np.ndarray]:
        """Preferred successors and their probabilities for a chain state.

        The mapping is a pure function of the chain seed and the state, so
        sampling, likelihood evaluation and the zero-shot task generator all
        agree exactly; a small cache avoids recomputing it per token.
        """
        cached = self._successor_cache.get(state)
        if cached is not None:
            return cached
        n = self.vocabulary.num_regular_tokens
        rng = new_rng(self._successor_rng_seed, "state", *state)
        successors = rng.choice(n, size=self.branching, replace=False).astype(np.int64)
        probs = rng.dirichlet(np.ones(self.branching) * 0.8)
        self._successor_cache[state] = (successors, probs)
        return successors, probs

    # -- sampling --------------------------------------------------------------
    def generate(self, num_tokens: int, name: str = "corpus", seed_offset: int = 0) -> TokenCorpus:
        """Sample a corpus of ``num_tokens`` token ids.

        Parameters
        ----------
        num_tokens:
            Length of the generated token stream.
        name:
            Name recorded on the returned :class:`TokenCorpus`.
        seed_offset:
            Extra label mixed into the sampling seed so that several corpora
            (train, validation, calibration) can be drawn from the same chain
            without overlapping.
        """
        if num_tokens < 2:
            raise ValueError("num_tokens must be >= 2")
        rng = new_rng(self.seed, "markov-sample", seed_offset)
        n = self.vocabulary.num_regular_tokens
        offset = self.vocabulary.first_regular_id
        tokens = np.empty(num_tokens, dtype=np.int64)
        current = int(rng.choice(n, p=self._base_probs))
        tokens[0] = current + offset
        history = (current,)
        use_successor = rng.random(num_tokens) < self.coherence
        fallback = rng.choice(n, size=num_tokens, p=self._base_probs)
        branch_pick = rng.random(num_tokens)
        for i in range(1, num_tokens):
            if use_successor[i]:
                successors, probs = self._successors_for_state(self._state_key(history))
                cumulative = np.cumsum(probs)
                idx = int(np.searchsorted(cumulative, branch_pick[i] * cumulative[-1]))
                idx = min(idx, self.branching - 1)
                current = int(successors[idx])
            else:
                current = int(fallback[i])
            tokens[i] = current + offset
            history = (history + (current,))[-self.order :]
        return TokenCorpus(tokens, self.vocabulary, name)

    def transition_probabilities(self, *token_ids: int) -> np.ndarray:
        """Next-token distribution given the preceding regular ``token_ids``.

        Accepts between one and ``order`` trailing tokens (fewer tokens than
        the order are padded by repeating the earliest one, matching
        :meth:`generate`'s start-of-stream behaviour).  Exposed for tests and
        for the zero-shot task generator, which samples plausible
        continuations from the same chain.
        """
        if not token_ids:
            raise ValueError("at least one preceding token id is required")
        offset = self.vocabulary.first_regular_id
        states = []
        for token_id in token_ids[-self.order :]:
            state = int(token_id) - offset
            if not 0 <= state < self.vocabulary.num_regular_tokens:
                raise ValueError("token ids must refer to regular tokens")
            states.append(state)
        key = self._state_key(tuple(states))
        probs = self._base_probs * (1.0 - self.coherence)
        successors, successor_probs = self._successors_for_state(key)
        for succ, p in zip(successors, successor_probs):
            probs[succ] += self.coherence * p
        return probs
