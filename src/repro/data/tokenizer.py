"""Vocabulary and tokenizer abstraction for the synthetic corpora.

The simulated language models operate directly on integer token ids, so the
"tokenizer" here is intentionally small: a :class:`Vocabulary` maps between
synthetic word strings (``tok0042`` style) and ids, and provides the special
tokens the transformer substrate needs (begin-of-sequence, end-of-sequence,
padding and unknown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

__all__ = ["Vocabulary"]

BOS_TOKEN = "<bos>"
EOS_TOKEN = "<eos>"
PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"

SPECIAL_TOKENS = (PAD_TOKEN, BOS_TOKEN, EOS_TOKEN, UNK_TOKEN)


@dataclass
class Vocabulary:
    """Bidirectional mapping between token strings and integer ids.

    The first four ids are always the special tokens in the order
    ``<pad>, <bos>, <eos>, <unk>``; regular tokens follow.

    Parameters
    ----------
    size:
        Total vocabulary size including the four special tokens.  Must be at
        least 8 so that there is room for a meaningful regular vocabulary.
    """

    size: int
    _id_to_token: List[str] = field(init=False, repr=False)
    _token_to_id: Dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.size < 8:
            raise ValueError(f"vocabulary size must be >= 8, got {self.size}")
        regular = [f"tok{i:05d}" for i in range(self.size - len(SPECIAL_TOKENS))]
        self._id_to_token = list(SPECIAL_TOKENS) + regular
        self._token_to_id = {tok: i for i, tok in enumerate(self._id_to_token)}

    # -- special-token ids -------------------------------------------------
    @property
    def pad_id(self) -> int:
        """Id of the padding token."""
        return self._token_to_id[PAD_TOKEN]

    @property
    def bos_id(self) -> int:
        """Id of the beginning-of-sequence token."""
        return self._token_to_id[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        """Id of the end-of-sequence token."""
        return self._token_to_id[EOS_TOKEN]

    @property
    def unk_id(self) -> int:
        """Id of the unknown token."""
        return self._token_to_id[UNK_TOKEN]

    @property
    def num_regular_tokens(self) -> int:
        """Number of non-special tokens."""
        return self.size - len(SPECIAL_TOKENS)

    @property
    def first_regular_id(self) -> int:
        """Smallest id assigned to a regular (non-special) token."""
        return len(SPECIAL_TOKENS)

    # -- conversions --------------------------------------------------------
    def token_to_id(self, token: str) -> int:
        """Return the id of ``token``, or the ``<unk>`` id if not present."""
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, token_id: int) -> str:
        """Return the string form of ``token_id``."""
        if not 0 <= token_id < self.size:
            raise IndexError(f"token id {token_id} out of range [0, {self.size})")
        return self._id_to_token[token_id]

    def encode(self, tokens: Sequence[str], add_bos: bool = False) -> List[int]:
        """Encode a sequence of token strings into ids."""
        ids = [self.token_to_id(t) for t in tokens]
        if add_bos:
            ids = [self.bos_id] + ids
        return ids

    def decode(self, ids: Iterable[int], skip_special: bool = True) -> List[str]:
        """Decode ids back into token strings."""
        tokens = []
        for token_id in ids:
            token = self.id_to_token(int(token_id))
            if skip_special and token in SPECIAL_TOKENS:
                continue
            tokens.append(token)
        return tokens

    def __len__(self) -> int:
        return self.size

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id
