"""Synthetic zero-shot task suite.

The paper evaluates zero-shot accuracy as the mean over LAMBADA, HellaSwag,
PIQA and WinoGrande, scored with the LM-eval-harness protocol: each example
provides a context and several candidate continuations, the model scores each
continuation by (length-normalised) log-likelihood, and the prediction is the
argmax.

This module builds four synthetic task families with the same structure and
the same scoring interface.  Each example's correct continuation is drawn from
the *same Markov chain* as the training corpus, while distractor continuations
are random token sequences.  An intact model therefore assigns higher
likelihood to the correct continuation far more often than chance, and a model
whose salient weights have been corrupted loses that margin — reproducing the
accuracy-degradation signal the paper relies on.

The four families differ in context length, number of choices, and
continuation length, loosely mirroring the character of the originals:

* ``lambada-sim`` — long context, single-token continuation, many choices
  (word prediction from context).
* ``hellaswag-sim`` — medium context, 4 multi-token endings.
* ``piqa-sim`` — short context, 2 medium continuations.
* ``winogrande-sim`` — short context, 2 short continuations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.data.corpus import MarkovCorpusGenerator
from repro.utils.rng import new_rng

__all__ = [
    "MultipleChoiceExample",
    "ZeroShotTask",
    "TaskSpec",
    "DEFAULT_TASK_SPECS",
    "build_task",
    "build_task_suite",
]


@dataclass(frozen=True)
class MultipleChoiceExample:
    """One multiple-choice example.

    Attributes
    ----------
    context:
        Token ids of the shared context.
    choices:
        One token-id sequence per candidate continuation.
    label:
        Index of the correct continuation in ``choices``.
    """

    context: np.ndarray
    choices: List[np.ndarray]
    label: int

    def __post_init__(self) -> None:
        if not 0 <= self.label < len(self.choices):
            raise ValueError("label index out of range of choices")
        if len(self.choices) < 2:
            raise ValueError("a multiple-choice example needs at least 2 choices")


@dataclass
class ZeroShotTask:
    """A named collection of :class:`MultipleChoiceExample` instances."""

    name: str
    examples: List[MultipleChoiceExample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self):
        return iter(self.examples)


@dataclass(frozen=True)
class TaskSpec:
    """Generation parameters of one synthetic task family."""

    name: str
    num_examples: int
    context_length: int
    continuation_length: int
    num_choices: int


DEFAULT_TASK_SPECS: Dict[str, TaskSpec] = {
    "lambada-sim": TaskSpec("lambada-sim", 64, 24, 1, 8),
    "hellaswag-sim": TaskSpec("hellaswag-sim", 64, 16, 6, 4),
    "piqa-sim": TaskSpec("piqa-sim", 64, 10, 8, 2),
    "winogrande-sim": TaskSpec("winogrande-sim", 64, 8, 4, 2),
}


def _sample_continuation(
    generator: MarkovCorpusGenerator,
    context_tail: np.ndarray,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample a continuation that follows the corpus Markov chain."""
    vocabulary = generator.vocabulary
    offset = vocabulary.first_regular_id
    tokens = np.empty(length, dtype=np.int64)
    history = [int(t) for t in context_tail[-generator.order :]]
    for i in range(length):
        probs = generator.transition_probabilities(*history)
        nxt = int(rng.choice(vocabulary.num_regular_tokens, p=probs)) + offset
        tokens[i] = nxt
        history = (history + [nxt])[-generator.order :]
    return tokens


def _sample_distractor(
    generator: MarkovCorpusGenerator, length: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample a plausible-but-wrong continuation.

    Distractor tokens follow the corpus *unigram* (Zipfian) distribution, so
    they look like ordinary text but do not respect the local chain
    transitions.  This keeps the tasks challenging enough that accuracy sits
    well below the ceiling and degrades when the model is damaged — a purely
    uniform distractor would be trivially distinguishable from real text.
    """
    vocabulary = generator.vocabulary
    offset = vocabulary.first_regular_id
    picks = rng.choice(
        vocabulary.num_regular_tokens, size=length, p=generator._base_probs
    )
    return picks.astype(np.int64) + offset


def build_task(
    spec: TaskSpec,
    generator: MarkovCorpusGenerator,
    seed: int = 0,
) -> ZeroShotTask:
    """Build one synthetic task family from its :class:`TaskSpec`.

    Parameters
    ----------
    spec:
        Family parameters (number of examples, lengths, choices).
    generator:
        The Markov chain shared with the training corpus; correct
        continuations are drawn from it so that a well-trained model can tell
        them apart from random distractors.
    seed:
        Seed for example sampling (independent of the corpus seed).
    """
    rng = new_rng(seed, "task", spec.name)
    examples: List[MultipleChoiceExample] = []
    for index in range(spec.num_examples):
        context_corpus = generator.generate(
            spec.context_length, name=f"{spec.name}/ctx{index}", seed_offset=1000 + index
        )
        context = context_corpus.tokens
        correct = _sample_continuation(
            generator, context, spec.continuation_length, rng
        )
        choices: List[np.ndarray] = []
        label = int(rng.integers(0, spec.num_choices))
        for position in range(spec.num_choices):
            if position == label:
                choices.append(correct)
            else:
                choices.append(
                    _sample_distractor(generator, spec.continuation_length, rng)
                )
        examples.append(MultipleChoiceExample(context=context, choices=choices, label=label))
    return ZeroShotTask(name=spec.name, examples=examples)


def build_task_suite(
    generator: MarkovCorpusGenerator,
    specs: Sequence[TaskSpec] = tuple(DEFAULT_TASK_SPECS.values()),
    seed: int = 7,
) -> List[ZeroShotTask]:
    """Build the full four-task suite used for zero-shot accuracy.

    Returns the tasks in the order given by ``specs``; the evaluation harness
    reports per-task accuracy and their mean, matching the paper's metric.
    """
    return [build_task(spec, generator, seed=seed) for spec in specs]
