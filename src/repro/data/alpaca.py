"""Alpaca-sim: synthetic instruction-following corpus.

The paper's integrity study (Table 4) builds two "independent" models by
fine-tuning OPT-2.7B on a 4k subset of the Alpaca instruction dataset and on
WikiText before quantization, then checks that EmMark does **not** extract its
signature from them.  This module provides the synthetic stand-in for the
Alpaca subset: instruction/response pairs whose token statistics are shifted
relative to the base corpus (a different Markov chain seed and a biased
sub-vocabulary), so fine-tuning on it genuinely moves the model weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List

import numpy as np

from repro.data.corpus import MarkovCorpusGenerator, TokenCorpus
from repro.data.tokenizer import Vocabulary

__all__ = ["AlpacaSim", "load_alpaca_sim", "build_alpaca_sim"]

DEFAULT_NUM_PAIRS = 256
DEFAULT_INSTRUCTION_LENGTH = 12
DEFAULT_RESPONSE_LENGTH = 20
DEFAULT_SEED = 4242


@dataclass(frozen=True)
class AlpacaSim:
    """Synthetic instruction dataset.

    Attributes
    ----------
    pairs:
        List of ``(instruction_tokens, response_tokens)`` arrays.
    vocabulary:
        Vocabulary shared with the base language-model corpus.
    """

    pairs: List[tuple]
    vocabulary: Vocabulary

    def __len__(self) -> int:
        return len(self.pairs)

    def as_corpus(self, name: str = "alpaca-sim") -> TokenCorpus:
        """Flatten the pairs into a single training stream.

        Each pair is laid out as ``<bos> instruction response <eos>`` so the
        flattened stream can be fed to the same next-token training loop used
        for the base corpus.
        """
        chunks = []
        for instruction, response in self.pairs:
            chunks.append(np.array([self.vocabulary.bos_id], dtype=np.int64))
            chunks.append(instruction)
            chunks.append(response)
            chunks.append(np.array([self.vocabulary.eos_id], dtype=np.int64))
        return TokenCorpus(np.concatenate(chunks), self.vocabulary, name)


def build_alpaca_sim(
    vocabulary: Vocabulary,
    num_pairs: int = DEFAULT_NUM_PAIRS,
    instruction_length: int = DEFAULT_INSTRUCTION_LENGTH,
    response_length: int = DEFAULT_RESPONSE_LENGTH,
    seed: int = DEFAULT_SEED,
) -> AlpacaSim:
    """Build the synthetic instruction corpus for ``vocabulary``.

    The instruction/response generator uses a Markov chain seeded differently
    from the base corpus and with lower coherence, so its token statistics are
    distinct from WikiText-sim — fine-tuning on it shifts the model, which is
    exactly what the integrity experiment needs.
    """
    generator = MarkovCorpusGenerator(
        vocabulary, zipf_exponent=0.9, branching=3, coherence=0.7, seed=seed
    )
    pairs = []
    for index in range(num_pairs):
        instruction = generator.generate(
            instruction_length, name=f"alpaca-sim/instr{index}", seed_offset=2 * index
        ).tokens
        response = generator.generate(
            response_length, name=f"alpaca-sim/resp{index}", seed_offset=2 * index + 1
        ).tokens
        pairs.append((instruction, response))
    return AlpacaSim(pairs=pairs, vocabulary=vocabulary)


@lru_cache(maxsize=4)
def _cached_alpaca(vocab_size: int, num_pairs: int, seed: int) -> AlpacaSim:
    vocabulary = Vocabulary(vocab_size)
    return build_alpaca_sim(vocabulary, num_pairs=num_pairs, seed=seed)


def load_alpaca_sim(
    vocabulary: Vocabulary,
    num_pairs: int = DEFAULT_NUM_PAIRS,
    seed: int = DEFAULT_SEED,
) -> AlpacaSim:
    """Load (with caching) an Alpaca-sim dataset matching ``vocabulary``.

    The cache key only involves the vocabulary *size*; vocabularies of the
    same size are interchangeable because token ids are synthetic anyway.
    """
    cached = _cached_alpaca(len(vocabulary), num_pairs, seed)
    if cached.vocabulary.size == len(vocabulary):
        return AlpacaSim(pairs=cached.pairs, vocabulary=vocabulary)
    return build_alpaca_sim(vocabulary, num_pairs=num_pairs, seed=seed)
