"""WikiText-sim: the synthetic stand-in for WikiText-2.

The paper measures text fluency of watermarked models as perplexity on
WikiText [Merity et al., 2016].  Offline we cannot load WikiText, so this
module generates a deterministic Zipf–Markov corpus ("WikiText-sim") with a
train/validation split.  The simulated language models are fit on the train
split and perplexity is always reported on the validation split, exactly
mirroring how the real evaluation uses held-out data.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.data.corpus import MarkovCorpusGenerator, TokenCorpus
from repro.data.tokenizer import Vocabulary

__all__ = ["WikiTextSim", "load_wikitext_sim"]

DEFAULT_VOCAB_SIZE = 512
DEFAULT_TRAIN_TOKENS = 60_000
DEFAULT_VALIDATION_TOKENS = 12_000
DEFAULT_CALIBRATION_TOKENS = 6_000
DEFAULT_SEED = 1234


@dataclass(frozen=True)
class WikiTextSim:
    """Container bundling the train/validation/calibration splits.

    Attributes
    ----------
    train:
        Corpus used to fit the simulated language models.
    validation:
        Held-out corpus used for perplexity evaluation.
    calibration:
        Small corpus used by the post-training quantization algorithms and by
        EmMark to collect full-precision activation statistics.
    vocabulary:
        Shared vocabulary of all three splits.
    """

    train: TokenCorpus
    validation: TokenCorpus
    calibration: TokenCorpus
    vocabulary: Vocabulary

    @property
    def splits(self) -> dict:
        """Mapping of split name to corpus, convenient for iteration."""
        return {
            "train": self.train,
            "validation": self.validation,
            "calibration": self.calibration,
        }


def build_wikitext_sim(
    vocab_size: int = DEFAULT_VOCAB_SIZE,
    train_tokens: int = DEFAULT_TRAIN_TOKENS,
    validation_tokens: int = DEFAULT_VALIDATION_TOKENS,
    calibration_tokens: int = DEFAULT_CALIBRATION_TOKENS,
    seed: int = DEFAULT_SEED,
) -> WikiTextSim:
    """Construct a fresh WikiText-sim dataset.

    All randomness is derived from ``seed``; calling the function twice with
    the same arguments yields identical corpora.
    """
    vocabulary = Vocabulary(vocab_size)
    generator = MarkovCorpusGenerator(vocabulary, seed=seed)
    train = generator.generate(train_tokens, name="wikitext-sim/train", seed_offset=0)
    validation = generator.generate(
        validation_tokens, name="wikitext-sim/validation", seed_offset=1
    )
    calibration = generator.generate(
        calibration_tokens, name="wikitext-sim/calibration", seed_offset=2
    )
    return WikiTextSim(
        train=train,
        validation=validation,
        calibration=calibration,
        vocabulary=vocabulary,
    )


@lru_cache(maxsize=8)
def load_wikitext_sim(
    vocab_size: int = DEFAULT_VOCAB_SIZE,
    train_tokens: int = DEFAULT_TRAIN_TOKENS,
    validation_tokens: int = DEFAULT_VALIDATION_TOKENS,
    calibration_tokens: int = DEFAULT_CALIBRATION_TOKENS,
    seed: int = DEFAULT_SEED,
) -> WikiTextSim:
    """Cached version of :func:`build_wikitext_sim`.

    The dataset construction takes a noticeable fraction of a second for the
    default sizes; experiments and tests share one instance per parameter set.
    """
    return build_wikitext_sim(
        vocab_size=vocab_size,
        train_tokens=train_tokens,
        validation_tokens=validation_tokens,
        calibration_tokens=calibration_tokens,
        seed=seed,
    )
