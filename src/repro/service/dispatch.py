"""Micro-batching dispatcher and admission control for the verification server.

Two mechanisms sit between the HTTP handlers and the
:class:`~repro.engine.engine.WatermarkEngine`:

* :class:`TokenBucket` — classic token-bucket admission control.  Requests
  that arrive faster than the configured sustained rate (plus burst) are
  rejected up front with HTTP 429 instead of growing the queue without bound.
* :class:`MicroBatchDispatcher` — a bounded queue plus a single consumer
  task.  Concurrent ``/verify`` requests are coalesced into one
  :meth:`~repro.engine.engine.WatermarkEngine.verify_fleet` call per batch:
  the batch's suspects and keys are deduplicated, and the engine is handed
  the exact ``(suspect, key)`` pairs the batched requests asked for.  The
  fleet call reproduces each key's watermark locations once for the whole
  batch (served from the plan cache when warm), which is where batching wins
  over per-request verification — N concurrent requests against the same key
  pay for one location reproduction, not N.

Verdicts are bit-identical to unbatched ``verify_fleet`` calls because each
pair's evidence (match counts, WER, Equation 8 probability) is computed
independently; batching only changes *when* work happens, never its result.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.core.keys import WatermarkKey
from repro.engine.engine import WatermarkEngine
from repro.engine.reports import (
    DEFAULT_MAX_FALSE_CLAIM_PROBABILITY,
    DEFAULT_OWNERSHIP_THRESHOLD,
    PairVerification,
)
from repro.obs.metrics import MetricsRegistry
from repro.quant.base import QuantizedModel
from repro.utils.logging import get_logger

__all__ = [
    "TokenBucket",
    "OwnerRateLimiter",
    "VerifyJob",
    "VerifyOutcome",
    "MicroBatchDispatcher",
    "QueueFullError",
]

logger = get_logger("service.dispatch")


class QueueFullError(RuntimeError):
    """Raised by :meth:`MicroBatchDispatcher.submit` when the queue is full."""


class TokenBucket:
    """Thread-safe token bucket.

    Parameters
    ----------
    rate:
        Sustained tokens (requests) per second; ``None`` or ``<= 0`` disables
        admission control entirely.
    burst:
        Bucket capacity — the instantaneous burst allowed on top of the
        sustained rate.  Defaults to ``rate`` (one second's worth).  When
        admission control is enabled the capacity is clamped to at least one
        token, so a fractional rate (e.g. one request per two seconds) still
        admits single requests instead of rejecting everything forever.
    """

    def __init__(self, rate: Optional[float] = None, burst: Optional[float] = None) -> None:
        self.rate = float(rate) if rate and rate > 0 else None
        capacity = float(burst) if burst and burst > 0 else (self.rate or 0.0)
        self.capacity = max(capacity, 1.0) if self.rate is not None else 0.0
        self._tokens = self.capacity
        self._updated = time.monotonic()
        self._lock = threading.Lock()
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        """Whether admission control is active."""
        return self.rate is not None

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        if self.rate is None:
            return True
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self.capacity, self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            self.rejected += 1
            return False

    def refund(self, tokens: float = 1.0) -> None:
        """Return previously acquired tokens (used by all-or-nothing callers).

        Capped at capacity, under the bucket's own lock — callers must never
        reach into :attr:`_tokens` directly.
        """
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + tokens)

    def stats(self) -> Dict[str, object]:
        """JSON-able snapshot for ``/stats``."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate_per_sec": self.rate,
                "burst": self.capacity if self.enabled else None,
                "tokens": self._tokens if self.enabled else None,
                "rejected": self.rejected,
            }


class OwnerRateLimiter:
    """Per-owner token buckets, keyed by the registry's owner identity.

    A single global bucket lets one aggressive owner starve everyone — the
    multi-tenant serving story needs *fairness per owner*, not one shared
    faucet.  Each distinct owner gets a private :class:`TokenBucket` at the
    configured rate, created lazily on the owner's first request; requests
    touching several owners' keys must be admitted by **every** owner's
    bucket (tokens are only committed once all buckets admit, so a mixed
    rejection never burns the admitted owners' budget).

    Requests that cannot be attributed to a registered owner (e.g. keys
    registered with an empty owner string) are pooled under one anonymous
    bucket at the same rate.

    Parameters
    ----------
    rate, burst:
        Forwarded to each per-owner :class:`TokenBucket`; a ``None``/zero
        rate disables per-owner admission entirely.
    max_owners:
        Bound on the tracked-bucket map.  When exceeded, the least recently
        *used* owner's bucket is dropped (it re-creates full on the owner's
        next request) — an attacker churning owner identities cannot grow
        server memory without bound.
    """

    #: Bucket key for requests with no attributable registered owner.
    ANONYMOUS = "<anonymous>"

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        max_owners: int = 4096,
    ) -> None:
        if max_owners < 1:
            raise ValueError("max_owners must be >= 1")
        self.rate = float(rate) if rate and rate > 0 else None
        self.burst = burst
        self.max_owners = int(max_owners)
        self._lock = threading.Lock()
        self._buckets: "Dict[str, TokenBucket]" = {}
        self._order: List[str] = []  # LRU, least-recent first
        self.rejected = 0
        self.evicted_owners = 0

    @property
    def enabled(self) -> bool:
        """Whether per-owner admission control is active."""
        return self.rate is not None

    def _bucket(self, owner: str) -> TokenBucket:
        bucket = self._buckets.get(owner)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst)
            self._buckets[owner] = bucket
        else:
            self._order.remove(owner)
        self._order.append(owner)
        return bucket

    def _trim(self, in_use) -> None:
        """Evict least-recently-used buckets past ``max_owners``.

        Owners named by the in-flight request are never evicted — a request
        touching many owners must not orphan a bucket it is about to charge
        (the charge would land on an object no longer in the map, silently
        resetting that owner's rate state on its next request).
        """
        while len(self._buckets) > self.max_owners:
            evicted = next((o for o in self._order if o not in in_use), None)
            if evicted is None:
                break  # every tracked owner is in this request; let it ride
            self._order.remove(evicted)
            del self._buckets[evicted]
            self.evicted_owners += 1

    def try_acquire(self, owners) -> bool:
        """Admit one request charged to every owner in ``owners``.

        ``owners`` is an iterable of owner identities (deduplicated here;
        empty strings fold into the anonymous bucket).  All-or-nothing: the
        request is only charged when every bucket has a token.
        """
        if self.rate is None:
            return True
        labels = sorted({str(o) if o else self.ANONYMOUS for o in owners}) or [self.ANONYMOUS]
        with self._lock:
            buckets = [self._bucket(label) for label in labels]
            self._trim(in_use=set(labels))
            # All-or-nothing charge: a rejection halfway through refunds the
            # already-charged owners, so mixed requests can't burn budget on
            # a 429.
            granted: List[TokenBucket] = []
            for bucket in buckets:
                if bucket.try_acquire():
                    granted.append(bucket)
                else:
                    for charged in granted:
                        charged.refund()
                    self.rejected += 1
                    return False
            return True

    def stats(self) -> Dict[str, object]:
        """JSON-able snapshot for ``/stats``."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate_per_sec": self.rate,
                "owners_tracked": len(self._buckets),
                "max_owners": self.max_owners,
                "evicted_owners": self.evicted_owners,
                "rejected": self.rejected,
                "rejected_by_owner": {
                    owner: bucket.rejected
                    for owner, bucket in self._buckets.items()
                    if bucket.rejected
                },
            }


@dataclass
class VerifyJob:
    """One enqueued verification request.

    ``suspect_id``/``key_ids`` name the work; the model and key objects ride
    along so the dispatcher never goes back to the stores (a key revoked
    after admission still completes — the admission-time view wins).
    """

    request_id: str
    suspect_id: str
    suspect: QuantizedModel
    keys: Dict[str, WatermarkKey]
    wer_threshold: float = DEFAULT_OWNERSHIP_THRESHOLD
    max_false_claim_probability: Optional[float] = DEFAULT_MAX_FALSE_CLAIM_PROBABILITY
    enqueued_at: float = field(default_factory=time.perf_counter)
    future: "asyncio.Future[VerifyOutcome]" = field(default=None, repr=False)


@dataclass
class VerifyOutcome:
    """What the dispatcher hands back for one job."""

    request_id: str
    suspect_id: str
    decisions: List[PairVerification]
    batch_id: int
    batch_size: int
    queue_seconds: float
    verify_seconds: float


class MicroBatchDispatcher:
    """Coalesces concurrent verification jobs into single fleet sweeps.

    Parameters
    ----------
    engine:
        The verification engine (its plan cache is what batch coalescing
        amortizes against).
    max_batch:
        Hard cap on jobs folded into one ``verify_fleet`` call.
    max_wait_ms:
        How long the dispatcher waits for followers after the first job of a
        batch arrives.  Zero still batches whatever is already queued (the
        natural backlog that builds while the previous batch executes).
    max_queue:
        Bound on the pending-job queue; beyond it :meth:`submit` raises
        :class:`QueueFullError` (surfaced as HTTP 503).
    metrics:
        Registry the dispatcher's counters and histograms live on.  The
        server passes its own so batch-size and queue-time distributions
        show up on ``GET /metrics``; a private registry is created when
        omitted so the instruments (and :meth:`stats`) work standalone.
    """

    def __init__(
        self,
        engine: WatermarkEngine,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_wait_s = max(0.0, float(max_wait_ms)) / 1000.0
        self.max_queue = int(max_queue)
        self._queue: "asyncio.Queue[Optional[VerifyJob]]" = asyncio.Queue(maxsize=max_queue)
        # One worker: batches execute strictly one at a time, which is what
        # lets the queue accumulate the next batch while the current one runs.
        self._executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="wm-dispatch")
        self._task: Optional[asyncio.Task] = None
        self._closed = False
        self._batch_ids = itertools.count(1)
        # Counters live on the metrics registry (thread-safe instruments);
        # the legacy ``/stats`` fields read back from them via properties.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._batches = self.metrics.counter(
            "repro_dispatch_batches_total", "Coalesced verification batches executed"
        )
        self._jobs = self.metrics.counter(
            "repro_dispatch_jobs_total", "Verification jobs dispatched"
        )
        self._pairs = self.metrics.counter(
            "repro_dispatch_pairs_verified_total", "(suspect, key) pairs verified"
        )
        self._batch_size = self.metrics.histogram(
            "repro_dispatch_batch_size",
            "Jobs coalesced per batch",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        )
        self._queue_time = self.metrics.histogram(
            "repro_dispatch_queue_seconds",
            "Seconds a job waited in the queue before its batch ran",
        )
        self.jobs_in_batches = 0
        self.largest_batch = 0

    # Legacy counter names (pre-registry) — still the ``/stats`` vocabulary.
    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def jobs_dispatched(self) -> int:
        return int(self._jobs.value)

    @property
    def pairs_verified(self) -> int:
        return int(self._pairs.value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once :meth:`stop` has begun — no new jobs are accepted."""
        return self._closed

    def start(self) -> None:
        """Start the consumer task on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Drain nothing, cancel the consumer, shut the executor down."""
        self._closed = True
        if self._task is not None:
            await self._queue.put(None)
            await self._task
            self._task = None
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, job: VerifyJob) -> "asyncio.Future[VerifyOutcome]":
        """Enqueue a job; returns the future its outcome will resolve on."""
        if self._closed:
            raise RuntimeError("dispatcher is stopped")
        job.future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            raise QueueFullError(
                f"verification queue full ({self.max_queue} pending requests)"
            ) from None
        return job.future

    @property
    def depth(self) -> int:
        """Jobs currently waiting in the queue."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is None:
                return
            batch = [first]
            deadline = loop.time() + self.max_wait_s
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Window elapsed — still sweep up anything already queued.
                    while len(batch) < self.max_batch and not self._queue.empty():
                        follower = self._queue.get_nowait()
                        if follower is None:
                            await self._execute(batch)
                            return
                        batch.append(follower)
                    break
                try:
                    follower = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    continue
                if follower is None:
                    await self._execute(batch)
                    return
                batch.append(follower)
            await self._execute(batch)

    async def _execute(self, batch: List[VerifyJob]) -> None:
        """Run one coalesced batch and resolve every job's future."""
        loop = asyncio.get_running_loop()
        batch_id = next(self._batch_ids)
        self._batches.inc()
        self._batch_size.observe(len(batch))
        self.jobs_in_batches += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        # Group by thresholds: verify_fleet applies one threshold pair per
        # call, and correctness (bit-identical verdicts) comes first.
        groups: Dict[Tuple[float, Optional[float]], List[VerifyJob]] = {}
        for job in batch:
            groups.setdefault(
                (job.wer_threshold, job.max_false_claim_probability), []
            ).append(job)
        for (wer_threshold, max_pc), jobs in groups.items():
            # Suspects are deduplicated by *object identity*, never by the
            # caller-supplied id string: two jobs that reference the same
            # stored snapshot share one sweep entry, while two different
            # inline models claiming the same suspect_id stay separate
            # (otherwise one client would receive verdicts computed on the
            # other client's weights).  The internal alias is mapped back to
            # each job's own suspect_id in its outcome.
            alias_of: Dict[int, str] = {}
            suspects: Dict[str, QuantizedModel] = {}
            keys: Dict[str, WatermarkKey] = {}
            pairs: List[Tuple[str, str]] = []
            seen_pairs = set()
            job_alias: Dict[int, str] = {}
            for job in jobs:
                alias = alias_of.get(id(job.suspect))
                if alias is None:
                    alias = f"s{len(suspects)}"
                    alias_of[id(job.suspect)] = alias
                    suspects[alias] = job.suspect
                job_alias[id(job)] = alias
                for key_id, key in job.keys.items():
                    keys.setdefault(key_id, key)
                    pair = (alias, key_id)
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        pairs.append(pair)
            start = time.perf_counter()
            try:
                report = await loop.run_in_executor(
                    self._executor,
                    lambda: self.engine.verify_fleet(
                        suspects,
                        keys,
                        wer_threshold=wer_threshold,
                        max_false_claim_probability=max_pc,
                        pairs=pairs,
                    ),
                )
            except Exception as exc:  # engine-level failure fails the group
                logger.exception("batch %d group failed", batch_id)
                for job in jobs:
                    if not job.future.done():
                        job.future.set_exception(exc)
                continue
            verify_seconds = time.perf_counter() - start
            self._pairs.inc(report.num_pairs)
            by_pair = {(p.suspect_id, p.key_id): p for p in report.pairs}
            now = time.perf_counter()
            for job in jobs:
                decisions = [
                    replace(by_pair[(job_alias[id(job)], kid)], suspect_id=job.suspect_id)
                    for kid in job.keys
                ]
                queue_seconds = max(0.0, now - job.enqueued_at - verify_seconds)
                self._queue_time.observe(queue_seconds)
                if not job.future.done():
                    job.future.set_result(
                        VerifyOutcome(
                            request_id=job.request_id,
                            suspect_id=job.suspect_id,
                            decisions=decisions,
                            batch_id=batch_id,
                            batch_size=len(batch),
                            queue_seconds=queue_seconds,
                            verify_seconds=verify_seconds,
                        )
                    )
                self._jobs.inc()
        logger.debug("batch %d: %d jobs, %d groups", batch_id, len(batch), len(groups))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-able snapshot for ``/stats``."""
        return {
            "batches": self.batches,
            "jobs_dispatched": self.jobs_dispatched,
            "largest_batch": self.largest_batch,
            "mean_batch_size": (self.jobs_in_batches / self.batches) if self.batches else 0.0,
            "pairs_verified": self.pairs_verified,
            "queue_depth": self.depth,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_s * 1000.0,
            "max_queue": self.max_queue,
            "batch_size": self._batch_size.summary(),
            "queue_seconds": self._queue_time.summary(),
        }
