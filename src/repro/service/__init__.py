"""Watermark verification service.

This package turns the library-level ownership checks into a serving system —
the ROADMAP's "serve heavy traffic from millions of users" direction:

* :mod:`repro.service.registry` — :class:`KeyRegistry`, a persistent,
  content-addressed store of issued :class:`~repro.core.keys.WatermarkKey`s
  with owner metadata, model-fingerprint indexing and revocation.
* :mod:`repro.service.dispatch` — :class:`MicroBatchDispatcher` (coalesces
  concurrent verification requests into single
  :meth:`~repro.engine.engine.WatermarkEngine.verify_fleet` sweeps) and
  :class:`TokenBucket` admission control.
* :mod:`repro.service.server` — :class:`VerificationServer`, an asyncio
  JSON-over-HTTP server (stdlib only) with ``/verify``, ``/register``,
  ``/suspects``, ``/keys``, ``/revoke``, ``/healthz`` and ``/stats``
  endpoints plus a structured audit log of every ownership decision.
* :mod:`repro.service.client` — :class:`VerificationClient`, the synchronous
  client used by the examples, tests and load generator.
* :mod:`repro.service.loadgen` — an llm-load-test-style closed-loop load
  generator (:func:`run_load`) producing throughput and latency percentiles.
* :mod:`repro.service.codec` — base64-NPZ wire / directory codecs for keys
  and quantized models.
* :mod:`repro.service.fleet` — the sharded fleet: consistent-hash routing
  (:class:`HashRing`, :class:`ShardRouter`, :class:`FleetClient`), topology
  (:func:`launch_fleet`, :func:`partition_registry`) and the occupancy audit
  (:func:`occupancy_audit`).

Quickstart
----------
>>> from repro.service import VerificationServer, VerificationClient, run_in_background
>>> with run_in_background() as handle:
...     client = VerificationClient(port=handle.port)
...     client.register_key(key, owner="acme")
...     client.upload_suspect(deployed_model, suspect_id="prod-a")
...     client.verify(suspect_id="prod-a")["decisions"]
"""

from repro.service.audit import AuditLog
from repro.service.client import (
    JobHandle,
    RateLimitedError,
    ServiceError,
    ServiceUnavailableError,
    VerificationClient,
)
from repro.service.jobs import Job, JobLimitError, JobManager
from repro.service.codec import (
    key_from_wire,
    key_to_wire,
    load_model,
    model_from_wire,
    model_to_wire,
    save_model,
)
from repro.service.dispatch import (
    MicroBatchDispatcher,
    OwnerRateLimiter,
    QueueFullError,
    TokenBucket,
)
from repro.service.loadgen import (
    JobLoadConfig,
    JobLoadReport,
    LoadConfig,
    LoadReport,
    RequestTemplate,
    run_job_load,
    run_load,
)
from repro.service.fleet import (
    FleetAuditError,
    FleetClient,
    FleetConfig,
    FleetHandle,
    HashRing,
    ModelAuditVerdict,
    OccupancyAuditReport,
    ShardRouter,
    launch_fleet,
    occupancy_audit,
    partition_registry,
    shard_labels,
)
from repro.service.registry import KeyRecord, KeyRegistry, RegistryError
from repro.service.server import (
    ServerHandle,
    ServiceConfig,
    VerificationServer,
    run_in_background,
)

__all__ = [
    "AuditLog",
    "KeyRecord",
    "KeyRegistry",
    "RegistryError",
    "MicroBatchDispatcher",
    "TokenBucket",
    "OwnerRateLimiter",
    "QueueFullError",
    "ServiceConfig",
    "VerificationServer",
    "ServerHandle",
    "run_in_background",
    "VerificationClient",
    "ServiceError",
    "RateLimitedError",
    "ServiceUnavailableError",
    "JobHandle",
    "Job",
    "JobLimitError",
    "JobManager",
    "JobLoadConfig",
    "JobLoadReport",
    "run_job_load",
    "LoadConfig",
    "LoadReport",
    "RequestTemplate",
    "run_load",
    "key_to_wire",
    "key_from_wire",
    "model_to_wire",
    "model_from_wire",
    "save_model",
    "load_model",
    "FleetAuditError",
    "FleetClient",
    "FleetConfig",
    "FleetHandle",
    "HashRing",
    "ModelAuditVerdict",
    "OccupancyAuditReport",
    "ShardRouter",
    "launch_fleet",
    "occupancy_audit",
    "partition_registry",
    "shard_labels",
]
