"""Persistent registry of issued watermark keys.

The registry is the service-side source of truth for "which owners have
watermarked which models".  Keys are content-addressed by their signature
fingerprint (:meth:`repro.core.keys.WatermarkKey.fingerprint`) — registering
the same key twice is idempotent — and indexed by the model-identity
fingerprint (:meth:`~repro.core.keys.WatermarkKey.model_fingerprint`), so an
incoming suspect can be matched against exactly the keys issued for its model
family.

On-disk layout (one sub-directory per key under the registry root)::

    <root>/
      <key_id>/
        record.json          # owner, timestamps, revocation, fingerprints
        watermark_key.json   # WatermarkKey.save() metadata
        watermark_key.npz    # WatermarkKey.save() bulk arrays
      <key_id>.corrupt/      # quarantined entry (unreadable record or arrays)

A registry constructed without a root directory keeps everything in memory —
that mode backs unit tests and ephemeral servers.

Startup is *record-only*: only the small ``record.json`` files are read, never
the bulk NPZ archives, so a shard fronting a million keys comes up in seconds.
Key material is loaded lazily on first use (memory-mapped when the archive is
uncompressed), held in a bounded LRU (``max_resident_keys``), and evicted
under pressure — a persisted key can always be re-loaded from disk.  Corrupt
entries are quarantined (directory renamed to ``<key_id>.corrupt``) instead of
bricking the registry, both at startup (bad record) and lazily (bad arrays).

Thread-safety and lock order
----------------------------
All public methods are thread-safe.  Three lock tiers exist, and nesting only
ever goes downward through this list:

1. per-fingerprint *stripe* locks — serialise disk I/O (load / persist) for
   one model family, so ``/register`` and ``/verify`` on different families
   never contend;
2. the *index* lock — guards the record map, model index, and the maintained
   O(1) counters behind :meth:`stats`;
3. the *resident* lock — guards the LRU of loaded key material.

The index lock is never held while acquiring a stripe lock (lookups snapshot
the record first, then drop to the stripe), which keeps the order acyclic for
the lock-witness harness.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.keys import WatermarkKey
from repro.utils.logging import get_logger
from repro.utils.serialization import load_json, save_json

__all__ = ["KeyRecord", "KeyRegistry", "RegistryError"]

PathLike = Union[str, Path]

logger = get_logger("service.registry")

_RECORD_FILE = "record.json"
_QUARANTINE_SUFFIX = ".corrupt"


class RegistryError(RuntimeError):
    """Raised for registry-level failures (unknown key, corrupt entry, …)."""


@dataclass
class KeyRecord:
    """Bookkeeping attached to one registered key.

    Attributes
    ----------
    key_id:
        Content-addressed id — the key's signature fingerprint.
    model_fingerprint:
        Identity fingerprint of the model the key was inserted into (the
        registry's lookup index for incoming suspects).
    owner:
        Free-form owner identity (team, org, contact).
    created_at:
        Unix timestamp of first registration.
    revoked:
        Revoked keys stay on disk for audit but are excluded from
        verification sweeps.
    total_bits, num_layers, model_name, method, bits:
        Denormalized key facts so ``/keys`` listings don't load bulk arrays.
    co_residents:
        Labels of the other owners co-resident in the key's model (from the
        key's slot-allocation metadata; empty for single-owner keys).
        Denormalized for the same reason: ``/keys`` and ``/suspects``
        listings surface multi-tenancy without loading key material.
    metadata:
        Arbitrary owner-supplied JSON-able metadata.
    """

    key_id: str
    model_fingerprint: str
    owner: str = ""
    created_at: float = 0.0
    revoked: bool = False
    total_bits: int = 0
    num_layers: int = 0
    model_name: str = ""
    method: str = ""
    bits: int = 0
    co_residents: List[str] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (both the ``record.json`` file and ``/keys`` rows)."""
        return {
            "key_id": self.key_id,
            "model_fingerprint": self.model_fingerprint,
            "owner": self.owner,
            "created_at": self.created_at,
            "revoked": self.revoked,
            "total_bits": self.total_bits,
            "num_layers": self.num_layers,
            "model_name": self.model_name,
            "method": self.method,
            "bits": self.bits,
            "co_residents": list(self.co_residents),
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KeyRecord":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                key_id=data["key_id"],
                model_fingerprint=data["model_fingerprint"],
                owner=data.get("owner", ""),
                created_at=float(data.get("created_at", 0.0)),
                revoked=bool(data.get("revoked", False)),
                total_bits=int(data.get("total_bits", 0)),
                num_layers=int(data.get("num_layers", 0)),
                model_name=data.get("model_name", ""),
                method=data.get("method", ""),
                bits=int(data.get("bits", 0)),
                co_residents=list(data.get("co_residents", [])),
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed key record: {exc}") from exc


class KeyRegistry:
    """Thread-safe store of :class:`WatermarkKey`s with optional persistence.

    Parameters
    ----------
    root:
        Directory to persist into (created if missing; existing entries are
        indexed from their ``record.json`` only — bulk arrays load lazily).
        ``None`` keeps the registry purely in memory.
    max_resident_keys:
        Upper bound on lazily-loaded key material held in memory at once
        (least-recently-used eviction).  ``None`` (the default) never evicts.
        Only meaningful with a ``root``: an in-memory registry has nowhere to
        reload evicted material from, so it pins every registered key.
    stripes:
        Number of per-fingerprint lock stripes for disk I/O.
    """

    def __init__(
        self,
        root: Optional[PathLike] = None,
        max_resident_keys: Optional[int] = None,
        stripes: int = 16,
    ) -> None:
        if max_resident_keys is not None and max_resident_keys < 1:
            raise ValueError("max_resident_keys must be >= 1 (or None)")
        self.root = Path(root) if root is not None else None
        self.max_resident_keys = max_resident_keys
        # Lock tiers — see the module docstring for the nesting order.
        self._stripes = [threading.RLock() for _ in range(max(1, int(stripes)))]
        self._index_lock = threading.RLock()
        self._resident_lock = threading.RLock()
        self._records: Dict[str, KeyRecord] = {}
        # model_fingerprint -> [key_id, ...] in registration order
        self._by_model: Dict[str, List[str]] = {}
        # Lazily-loaded key material, LRU order (oldest first).
        self._resident: "OrderedDict[str, WatermarkKey]" = OrderedDict()
        # Maintained counters (guarded by the index lock) keep stats() O(1).
        self._active_count = 0
        self._revoked_count = 0
        self._multi_owner_models = 0
        self._owner_counts: Dict[str, int] = {}
        self._model_active: Dict[str, int] = {}
        self._quarantined = 0
        self._key_loads = 0
        self._evictions = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._load_existing()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load_existing(self) -> None:
        """Index persisted entries from their records — *no* bulk-NPZ reads.

        A corrupt ``record.json`` (unparseable, or naming a different key id
        than its directory) quarantines that entry and continues with the
        rest; previously-quarantined ``*.corrupt`` directories are counted
        but otherwise ignored.
        """
        loaded = 0
        for entry in sorted(self.root.iterdir()):
            if entry.name.endswith(_QUARANTINE_SUFFIX):
                self._quarantined += 1
                continue
            if not (entry / _RECORD_FILE).exists():
                continue
            try:
                record = KeyRecord.from_dict(load_json(entry / _RECORD_FILE))
                if record.key_id != entry.name:
                    raise RegistryError(
                        f"registry entry {entry} holds record for {record.key_id!r}"
                    )
            except (RegistryError, ValueError, KeyError, OSError) as exc:
                self._quarantine(entry, reason=str(exc))
                continue
            self._install(record)
            loaded += 1
        if loaded:
            logger.info("indexed %d key records from %s", loaded, self.root)

    def _quarantine(self, entry: Path, reason: str) -> None:
        """Rename a corrupt entry to ``<name>.corrupt`` and count it."""
        target = entry.with_name(entry.name + _QUARANTINE_SUFFIX)
        suffix = 1
        while target.exists():
            target = entry.with_name(f"{entry.name}{_QUARANTINE_SUFFIX}.{suffix}")
            suffix += 1
        try:
            entry.rename(target)
        except OSError as exc:  # pragma: no cover - depends on filesystem state
            logger.error("could not quarantine %s: %s", entry, exc)
        with self._index_lock:
            self._quarantined += 1
        logger.warning("quarantined corrupt registry entry %s: %s", entry, reason)

    def _persist(self, record: KeyRecord, key: WatermarkKey) -> None:
        entry = self.root / record.key_id
        # Uncompressed so later lazy loads can memory-map the arrays.
        key.save(entry, compressed=False)
        save_json(entry / _RECORD_FILE, record.to_dict())

    def _persist_record(self, record: KeyRecord) -> None:
        save_json(self.root / record.key_id / _RECORD_FILE, record.to_dict())

    # ------------------------------------------------------------------
    # Index bookkeeping (callers hold the index lock)
    # ------------------------------------------------------------------
    def _install(self, record: KeyRecord) -> None:
        self._records[record.key_id] = record
        siblings = self._by_model.setdefault(record.model_fingerprint, [])
        if record.key_id not in siblings:
            siblings.append(record.key_id)
        if record.revoked:
            self._revoked_count += 1
        else:
            self._active_count += 1
            if record.owner:
                self._owner_counts[record.owner] = (
                    self._owner_counts.get(record.owner, 0) + 1
                )
            active = self._model_active.get(record.model_fingerprint, 0) + 1
            self._model_active[record.model_fingerprint] = active
            if active == 2:
                self._multi_owner_models += 1

    def _mark_revoked(self, record: KeyRecord) -> None:
        record.revoked = True
        self._active_count -= 1
        self._revoked_count += 1
        if record.owner:
            remaining = self._owner_counts.get(record.owner, 1) - 1
            if remaining <= 0:
                self._owner_counts.pop(record.owner, None)
            else:
                self._owner_counts[record.owner] = remaining
        active = self._model_active.get(record.model_fingerprint, 1) - 1
        self._model_active[record.model_fingerprint] = active
        if active == 1:
            self._multi_owner_models -= 1

    def _uninstall(self, record: KeyRecord) -> None:
        """Drop one entry from the index (quarantine of a lazily-bad key)."""
        if not record.revoked:
            self._mark_revoked(record)
            self._revoked_count -= 1
        else:
            self._revoked_count -= 1
        self._records.pop(record.key_id, None)
        siblings = self._by_model.get(record.model_fingerprint, [])
        if record.key_id in siblings:
            siblings.remove(record.key_id)
        if not siblings:
            self._by_model.pop(record.model_fingerprint, None)
            self._model_active.pop(record.model_fingerprint, None)

    # ------------------------------------------------------------------
    # Lazy key-material residency
    # ------------------------------------------------------------------
    def _stripe(self, model_fingerprint: str) -> threading.RLock:
        digest = hashlib.sha256(model_fingerprint.encode("utf-8")).digest()
        return self._stripes[int.from_bytes(digest[:4], "big") % len(self._stripes)]

    def _resident_get(self, key_id: str) -> Optional[WatermarkKey]:
        with self._resident_lock:
            key = self._resident.get(key_id)
            if key is not None:
                self._resident.move_to_end(key_id)
            return key

    def _resident_put(self, key_id: str, key: WatermarkKey) -> None:
        evictable = self.root is not None and self.max_resident_keys is not None
        with self._resident_lock:
            self._resident[key_id] = key
            self._resident.move_to_end(key_id)
            if evictable:
                while len(self._resident) > self.max_resident_keys:
                    evicted, _ = self._resident.popitem(last=False)
                    self._evictions += 1
                    logger.debug("evicted resident key %s", evicted)

    def _load_key(self, record: KeyRecord) -> WatermarkKey:
        """Load ``record``'s key material from disk (caller holds no locks).

        Serialised per fingerprint stripe; a second caller racing on the same
        key finds it resident after the first finishes.  A corrupt archive
        quarantines the entry and surfaces as :class:`RegistryError`.
        """
        if self.root is None:
            raise RegistryError(
                f"key material for {record.key_id!r} is not resident "
                "(in-memory registry has no disk to load from)"
            )
        with self._stripe(record.model_fingerprint):
            key = self._resident_get(record.key_id)
            if key is not None:
                return key
            entry = self.root / record.key_id
            try:
                key = WatermarkKey.load(entry, mmap=True)
            except (FileNotFoundError, ValueError) as exc:
                self._quarantine(entry, reason=str(exc))
                with self._index_lock:
                    if record.key_id in self._records:
                        self._uninstall(record)
                raise RegistryError(
                    f"corrupt registry entry {entry}: {exc}"
                ) from exc
            with self._index_lock:
                self._key_loads += 1
            self._resident_put(record.key_id, key)
            return key

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def register(
        self,
        key: WatermarkKey,
        owner: str = "",
        metadata: Optional[Dict[str, object]] = None,
    ) -> KeyRecord:
        """Register ``key`` and return its record.

        Content-addressed and idempotent: re-registering an identical key
        returns the existing record unchanged (first owner wins — a second
        registration cannot silently seize someone else's key).
        """
        key_id = key.fingerprint()
        model_fp = key.model_fingerprint()
        with self._stripe(model_fp):
            with self._index_lock:
                existing = self._records.get(key_id)
            if existing is not None:
                return existing
            record = KeyRecord(
                key_id=key_id,
                model_fingerprint=model_fp,
                owner=owner,
                created_at=time.time(),
                total_bits=key.total_bits,
                num_layers=key.num_layers,
                model_name=key.model_name,
                method=key.method,
                bits=key.bits,
                co_residents=list(key.metadata.get("co_residents", [])),
                metadata=dict(metadata or {}),
            )
            if self.root is not None:
                self._persist(record, key)
            with self._index_lock:
                self._install(record)
            self._resident_put(key_id, key)
            logger.info(
                "registered key %s (owner=%r, model=%s)", key_id, owner, key.model_name
            )
            return record

    def revoke(self, key_id: str) -> KeyRecord:
        """Mark a key as revoked (it stays on disk but stops being served)."""
        with self._index_lock:
            record = self._record_or_raise(key_id)
            if not record.revoked:
                self._mark_revoked(record)
                if self.root is not None:
                    self._persist_record(record)
                logger.info("revoked key %s", key_id)
        return record

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _record_or_raise(self, key_id: str) -> KeyRecord:
        record = self._records.get(key_id)
        if record is None:
            raise RegistryError(f"unknown key id {key_id!r}")
        return record

    def get_key(self, key_id: str) -> WatermarkKey:
        """The key material for ``key_id`` (raises :class:`RegistryError`).

        Loads lazily from disk on first use and keeps the result resident
        (subject to the ``max_resident_keys`` LRU bound).
        """
        with self._index_lock:
            record = self._record_or_raise(key_id)
        key = self._resident_get(key_id)
        if key is not None:
            return key
        return self._load_key(record)

    def get_record(self, key_id: str) -> KeyRecord:
        """The record for ``key_id`` (raises :class:`RegistryError`)."""
        with self._index_lock:
            return self._record_or_raise(key_id)

    def records(self) -> List[KeyRecord]:
        """All records in registration order (revoked included)."""
        with self._index_lock:
            return list(self._records.values())

    def active_keys(self, key_ids: Optional[List[str]] = None) -> Dict[str, WatermarkKey]:
        """``{key_id: key}`` for non-revoked keys.

        With ``key_ids`` the selection is restricted to those ids; asking for
        an unknown or revoked id raises, so a verification request can never
        silently run against fewer keys than it named.
        """
        with self._index_lock:
            if key_ids is None:
                wanted = [
                    record
                    for record in self._records.values()
                    if not record.revoked
                ]
            else:
                wanted = []
                for kid in key_ids:
                    record = self._record_or_raise(kid)
                    if record.revoked:
                        raise RegistryError(f"key {kid!r} is revoked")
                    wanted.append(record)
        selected: Dict[str, WatermarkKey] = {}
        for record in wanted:
            key = self._resident_get(record.key_id)
            selected[record.key_id] = (
                key if key is not None else self._load_key(record)
            )
        return selected

    def keys_for_model(self, fingerprint: str) -> Dict[str, WatermarkKey]:
        """Active keys registered against one model-identity fingerprint."""
        with self._index_lock:
            wanted = [
                self._records[kid]
                for kid in self._by_model.get(fingerprint, [])
                if not self._records[kid].revoked
            ]
        out: Dict[str, WatermarkKey] = {}
        for record in wanted:
            key = self._resident_get(record.key_id)
            out[record.key_id] = key if key is not None else self._load_key(record)
        return out

    def records_for_model(self, fingerprint: str) -> List[KeyRecord]:
        """Active records against one model fingerprint, registration order.

        The multi-owner lookup behind ``/suspects``: every co-resident key
        of a shared base answers here, each with its owner identity, so an
        incoming suspect can be ranked across all claimants of its family.
        """
        with self._index_lock:
            return [
                self._records[kid]
                for kid in self._by_model.get(fingerprint, [])
                if not self._records[kid].revoked
            ]

    def model_fingerprints(self) -> List[str]:
        """All model fingerprints with at least one registered key (sorted)."""
        with self._index_lock:
            return sorted(self._by_model)

    def owners_for_model(self, fingerprint: str) -> Dict[str, str]:
        """``{key_id: owner}`` of the active keys on one model fingerprint."""
        return {record.key_id: record.owner for record in self.records_for_model(fingerprint)}

    def owner_of(self, key_id: str) -> str:
        """Registered owner identity of one key (raises for unknown ids)."""
        with self._index_lock:
            return self._record_or_raise(key_id).owner

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._index_lock:
            return len(self._records)

    def __contains__(self, key_id: str) -> bool:
        with self._index_lock:
            return key_id in self._records

    def resident_count(self) -> int:
        """Number of keys whose bulk material is currently loaded."""
        with self._resident_lock:
            return len(self._resident)

    def stats(self) -> Dict[str, object]:
        """JSON-able summary for the ``/stats`` endpoint — O(1), counters only."""
        with self._index_lock:
            summary = {
                "keys": len(self._records),
                "active": self._active_count,
                "revoked": self._revoked_count,
                "models": len(self._by_model),
                "multi_owner_models": self._multi_owner_models,
                "owners": len(self._owner_counts),
                "persistent": self.root is not None,
                "quarantined": self._quarantined,
                "key_loads": self._key_loads,
                "evictions": self._evictions,
                "max_resident_keys": self.max_resident_keys,
            }
        summary["resident"] = self.resident_count()
        return summary
