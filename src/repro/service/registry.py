"""Persistent registry of issued watermark keys.

The registry is the service-side source of truth for "which owners have
watermarked which models".  Keys are content-addressed by their signature
fingerprint (:meth:`repro.core.keys.WatermarkKey.fingerprint`) — registering
the same key twice is idempotent — and indexed by the model-identity
fingerprint (:meth:`~repro.core.keys.WatermarkKey.model_fingerprint`), so an
incoming suspect can be matched against exactly the keys issued for its model
family.

On-disk layout (one sub-directory per key under the registry root)::

    <root>/
      <key_id>/
        record.json          # owner, timestamps, revocation, fingerprints
        watermark_key.json   # WatermarkKey.save() metadata
        watermark_key.npz    # WatermarkKey.save() bulk arrays

A registry constructed without a root directory keeps everything in memory —
that mode backs unit tests and ephemeral servers.

All public methods are thread-safe: the asyncio server handles requests on
its event loop while verification work runs on executor threads, and both
sides consult the registry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.keys import WatermarkKey
from repro.utils.logging import get_logger
from repro.utils.serialization import load_json, save_json

__all__ = ["KeyRecord", "KeyRegistry", "RegistryError"]

PathLike = Union[str, Path]

logger = get_logger("service.registry")

_RECORD_FILE = "record.json"


class RegistryError(RuntimeError):
    """Raised for registry-level failures (unknown key, corrupt entry, …)."""


@dataclass
class KeyRecord:
    """Bookkeeping attached to one registered key.

    Attributes
    ----------
    key_id:
        Content-addressed id — the key's signature fingerprint.
    model_fingerprint:
        Identity fingerprint of the model the key was inserted into (the
        registry's lookup index for incoming suspects).
    owner:
        Free-form owner identity (team, org, contact).
    created_at:
        Unix timestamp of first registration.
    revoked:
        Revoked keys stay on disk for audit but are excluded from
        verification sweeps.
    total_bits, num_layers, model_name, method, bits:
        Denormalized key facts so ``/keys`` listings don't load bulk arrays.
    co_residents:
        Labels of the other owners co-resident in the key's model (from the
        key's slot-allocation metadata; empty for single-owner keys).
        Denormalized for the same reason: ``/keys`` and ``/suspects``
        listings surface multi-tenancy without loading key material.
    metadata:
        Arbitrary owner-supplied JSON-able metadata.
    """

    key_id: str
    model_fingerprint: str
    owner: str = ""
    created_at: float = 0.0
    revoked: bool = False
    total_bits: int = 0
    num_layers: int = 0
    model_name: str = ""
    method: str = ""
    bits: int = 0
    co_residents: List[str] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (both the ``record.json`` file and ``/keys`` rows)."""
        return {
            "key_id": self.key_id,
            "model_fingerprint": self.model_fingerprint,
            "owner": self.owner,
            "created_at": self.created_at,
            "revoked": self.revoked,
            "total_bits": self.total_bits,
            "num_layers": self.num_layers,
            "model_name": self.model_name,
            "method": self.method,
            "bits": self.bits,
            "co_residents": list(self.co_residents),
            "metadata": self.metadata,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KeyRecord":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                key_id=data["key_id"],
                model_fingerprint=data["model_fingerprint"],
                owner=data.get("owner", ""),
                created_at=float(data.get("created_at", 0.0)),
                revoked=bool(data.get("revoked", False)),
                total_bits=int(data.get("total_bits", 0)),
                num_layers=int(data.get("num_layers", 0)),
                model_name=data.get("model_name", ""),
                method=data.get("method", ""),
                bits=int(data.get("bits", 0)),
                co_residents=list(data.get("co_residents", [])),
                metadata=dict(data.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed key record: {exc}") from exc


class KeyRegistry:
    """Thread-safe store of :class:`WatermarkKey`s with optional persistence.

    Parameters
    ----------
    root:
        Directory to persist into (created if missing; existing entries are
        loaded eagerly).  ``None`` keeps the registry purely in memory.
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self.root = Path(root) if root is not None else None
        self._lock = threading.RLock()
        self._keys: Dict[str, WatermarkKey] = {}
        self._records: Dict[str, KeyRecord] = {}
        # model_fingerprint -> [key_id, ...] in registration order
        self._by_model: Dict[str, List[str]] = {}
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._load_existing()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load_existing(self) -> None:
        entries = sorted(p for p in self.root.iterdir() if (p / _RECORD_FILE).exists())
        for entry in entries:
            try:
                record = KeyRecord.from_dict(load_json(entry / _RECORD_FILE))
                key = WatermarkKey.load(entry)
            except (RegistryError, ValueError, FileNotFoundError, KeyError) as exc:
                raise RegistryError(f"corrupt registry entry {entry}: {exc}") from exc
            if record.key_id != entry.name:
                raise RegistryError(
                    f"registry entry {entry} holds record for {record.key_id!r}"
                )
            self._install(record, key)
        if entries:
            logger.info("loaded %d keys from %s", len(entries), self.root)

    def _persist(self, record: KeyRecord, key: WatermarkKey) -> None:
        entry = self.root / record.key_id
        key.save(entry)
        save_json(entry / _RECORD_FILE, record.to_dict())

    def _persist_record(self, record: KeyRecord) -> None:
        save_json(self.root / record.key_id / _RECORD_FILE, record.to_dict())

    def _install(self, record: KeyRecord, key: WatermarkKey) -> None:
        self._keys[record.key_id] = key
        self._records[record.key_id] = record
        siblings = self._by_model.setdefault(record.model_fingerprint, [])
        if record.key_id not in siblings:
            siblings.append(record.key_id)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def register(
        self,
        key: WatermarkKey,
        owner: str = "",
        metadata: Optional[Dict[str, object]] = None,
    ) -> KeyRecord:
        """Register ``key`` and return its record.

        Content-addressed and idempotent: re-registering an identical key
        returns the existing record unchanged (first owner wins — a second
        registration cannot silently seize someone else's key).
        """
        key_id = key.fingerprint()
        with self._lock:
            existing = self._records.get(key_id)
            if existing is not None:
                return existing
            record = KeyRecord(
                key_id=key_id,
                model_fingerprint=key.model_fingerprint(),
                owner=owner,
                created_at=time.time(),
                total_bits=key.total_bits,
                num_layers=key.num_layers,
                model_name=key.model_name,
                method=key.method,
                bits=key.bits,
                co_residents=list(key.metadata.get("co_residents", [])),
                metadata=dict(metadata or {}),
            )
            self._install(record, key)
            if self.root is not None:
                self._persist(record, key)
            logger.info("registered key %s (owner=%r, model=%s)", key_id, owner, key.model_name)
            return record

    def revoke(self, key_id: str) -> KeyRecord:
        """Mark a key as revoked (it stays on disk but stops being served)."""
        with self._lock:
            record = self._record_or_raise(key_id)
            if not record.revoked:
                record.revoked = True
                if self.root is not None:
                    self._persist_record(record)
                logger.info("revoked key %s", key_id)
            return record

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _record_or_raise(self, key_id: str) -> KeyRecord:
        record = self._records.get(key_id)
        if record is None:
            raise RegistryError(f"unknown key id {key_id!r}")
        return record

    def get_key(self, key_id: str) -> WatermarkKey:
        """The key material for ``key_id`` (raises :class:`RegistryError`)."""
        with self._lock:
            self._record_or_raise(key_id)
            return self._keys[key_id]

    def get_record(self, key_id: str) -> KeyRecord:
        """The record for ``key_id`` (raises :class:`RegistryError`)."""
        with self._lock:
            return self._record_or_raise(key_id)

    def records(self) -> List[KeyRecord]:
        """All records in registration order (revoked included)."""
        with self._lock:
            return list(self._records.values())

    def active_keys(self, key_ids: Optional[List[str]] = None) -> Dict[str, WatermarkKey]:
        """``{key_id: key}`` for non-revoked keys.

        With ``key_ids`` the selection is restricted to those ids; asking for
        an unknown or revoked id raises, so a verification request can never
        silently run against fewer keys than it named.
        """
        with self._lock:
            if key_ids is None:
                return {
                    kid: self._keys[kid]
                    for kid, record in self._records.items()
                    if not record.revoked
                }
            selected: Dict[str, WatermarkKey] = {}
            for kid in key_ids:
                record = self._record_or_raise(kid)
                if record.revoked:
                    raise RegistryError(f"key {kid!r} is revoked")
                selected[kid] = self._keys[kid]
            return selected

    def keys_for_model(self, fingerprint: str) -> Dict[str, WatermarkKey]:
        """Active keys registered against one model-identity fingerprint."""
        with self._lock:
            return {
                kid: self._keys[kid]
                for kid in self._by_model.get(fingerprint, [])
                if not self._records[kid].revoked
            }

    def records_for_model(self, fingerprint: str) -> List[KeyRecord]:
        """Active records against one model fingerprint, registration order.

        The multi-owner lookup behind ``/suspects``: every co-resident key
        of a shared base answers here, each with its owner identity, so an
        incoming suspect can be ranked across all claimants of its family.
        """
        with self._lock:
            return [
                self._records[kid]
                for kid in self._by_model.get(fingerprint, [])
                if not self._records[kid].revoked
            ]

    def owners_for_model(self, fingerprint: str) -> Dict[str, str]:
        """``{key_id: owner}`` of the active keys on one model fingerprint."""
        return {record.key_id: record.owner for record in self.records_for_model(fingerprint)}

    def owner_of(self, key_id: str) -> str:
        """Registered owner identity of one key (raises for unknown ids)."""
        with self._lock:
            return self._record_or_raise(key_id).owner

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, key_id: str) -> bool:
        with self._lock:
            return key_id in self._records

    def stats(self) -> Dict[str, object]:
        """JSON-able summary for the ``/stats`` endpoint."""
        with self._lock:
            revoked = sum(1 for record in self._records.values() if record.revoked)
            multi_owner_models = sum(
                1
                for kids in self._by_model.values()
                if sum(1 for kid in kids if not self._records[kid].revoked) > 1
            )
            return {
                "keys": len(self._records),
                "active": len(self._records) - revoked,
                "revoked": revoked,
                "models": len(self._by_model),
                "multi_owner_models": multi_owner_models,
                "owners": len({r.owner for r in self._records.values() if not r.revoked and r.owner}),
                "persistent": self.root is not None,
            }
