"""Sharded verification fleet: consistent-hash routing over shard servers.

The fleet partitions the key space by model fingerprint onto N independent
:class:`~repro.service.server.VerificationServer` shards — each with its own
registry partition, plan cache and dispatcher — fronted by a
:class:`~repro.service.fleet.router.ShardRouter` (or driven directly by the
client-side :class:`~repro.service.fleet.client.FleetClient`).  The
:mod:`~repro.service.fleet.audit` occupancy audit proves, per fingerprint,
that co-resident keys reproduce disjoint slot sets.
"""

from repro.service.fleet.audit import (
    ModelAuditVerdict,
    OccupancyAuditReport,
    occupancy_audit,
)
from repro.service.fleet.client import FleetClient
from repro.service.fleet.fleet import (
    FleetAuditError,
    FleetConfig,
    FleetHandle,
    launch_fleet,
    partition_registry,
)
from repro.service.fleet.hashring import HashRing
from repro.service.fleet.router import ShardRouter, shard_labels

__all__ = [
    "FleetAuditError",
    "FleetClient",
    "FleetConfig",
    "FleetHandle",
    "HashRing",
    "ModelAuditVerdict",
    "OccupancyAuditReport",
    "ShardRouter",
    "launch_fleet",
    "occupancy_audit",
    "partition_registry",
    "shard_labels",
]
