"""Occupancy audit: prove co-resident keys reproduce disjoint slot sets.

The registry's core multi-tenancy invariant is that every key registered
against one model fingerprint was planned around its siblings' occupancy —
their reproduced slot locations are pairwise disjoint, so no owner's bits
clobber another's.  The audit re-derives that from first principles: for
each model fingerprint it reloads the co-resident key set and replays
:meth:`repro.engine.allocator.SlotAllocator.from_keys`, which reproduces
every key's locations through the engine and raises
:class:`~repro.engine.allocator.SlotCollisionError` on any overlap.

Run it at shard build/rebalance time (``launch_fleet`` does), on demand via
``repro audit`` or ``GET /v1/audit`` (per shard) / ``GET /v1/fleet/audit``
(whole fleet).  Because the fleet shards by model fingerprint, each
fingerprint's verdict is computed wholly on one shard — the fleet-level
digest over the union of verdicts is therefore identical for any shard
count, which the tests pin down.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.allocator import SlotAllocator, SlotCollisionError
from repro.utils.logging import get_logger

__all__ = ["ModelAuditVerdict", "OccupancyAuditReport", "occupancy_audit"]

logger = get_logger("service.fleet.audit")


@dataclass
class ModelAuditVerdict:
    """Disjointness verdict for one model fingerprint's co-resident key set."""

    model_fingerprint: str
    key_ids: List[str]
    owners: List[str]
    disjoint: bool
    total_slots: int = 0
    collision: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "model_fingerprint": self.model_fingerprint,
            "key_ids": list(self.key_ids),
            "owners": list(self.owners),
            "disjoint": self.disjoint,
            "total_slots": self.total_slots,
        }
        if self.collision is not None:
            payload["collision"] = dict(self.collision)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModelAuditVerdict":
        return cls(
            model_fingerprint=str(payload["model_fingerprint"]),
            key_ids=[str(k) for k in payload.get("key_ids", [])],
            owners=[str(o) for o in payload.get("owners", [])],
            disjoint=bool(payload.get("disjoint", False)),
            total_slots=int(payload.get("total_slots", 0)),
            collision=dict(payload["collision"]) if payload.get("collision") else None,
        )


@dataclass
class OccupancyAuditReport:
    """All per-fingerprint verdicts of one registry (or a merged fleet)."""

    verdicts: List[ModelAuditVerdict] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every audited key set reproduced disjoint locations."""
        return all(verdict.disjoint for verdict in self.verdicts)

    @property
    def collisions(self) -> List[ModelAuditVerdict]:
        return [verdict for verdict in self.verdicts if not verdict.disjoint]

    def digest(self) -> str:
        """Stable content digest of the verdicts.

        Verdicts are keyed and sorted by model fingerprint before hashing,
        so the digest is independent of shard count and audit order — the
        same registered key population always produces the same digest.
        """
        canonical = json.dumps(
            [v.to_dict() for v in sorted(self.verdicts, key=lambda v: v.model_fingerprint)],
            sort_keys=True,
            separators=(",", ":"),
        )
        return "aud-" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "digest": self.digest(),
            "models": len(self.verdicts),
            "collisions": len(self.collisions),
            "elapsed_seconds": self.elapsed_seconds,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "OccupancyAuditReport":
        """Rebuild a report from its wire form (``to_dict`` round-trip)."""
        verdicts = payload.get("verdicts", [])
        return cls(
            verdicts=[ModelAuditVerdict.from_dict(v) for v in verdicts],
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        )

    @classmethod
    def merge(cls, reports: List["OccupancyAuditReport"]) -> "OccupancyAuditReport":
        """Union of several shards' reports (fingerprints must not repeat —
        the consistent-hash partition guarantees they don't)."""
        merged = cls()
        seen: Dict[str, str] = {}
        for report in reports:
            for verdict in report.verdicts:
                if verdict.model_fingerprint in seen:
                    raise ValueError(
                        f"model fingerprint {verdict.model_fingerprint!r} audited "
                        "on more than one shard — the fleet partition is broken"
                    )
                seen[verdict.model_fingerprint] = verdict.model_fingerprint
                merged.verdicts.append(verdict)
            merged.elapsed_seconds += report.elapsed_seconds
        merged.verdicts.sort(key=lambda v: v.model_fingerprint)
        return merged


def occupancy_audit(registry, engine=None) -> OccupancyAuditReport:
    """Audit every model fingerprint of ``registry`` for slot disjointness.

    Each fingerprint's active keys are loaded (lazily, through the registry's
    residency layer) and their locations reproduced via
    :meth:`SlotAllocator.from_keys`; plan-cache hits make repeats cheap.  An
    overlap does not abort the audit — the verdict records the collision and
    the sweep continues, so one bad co-residency surfaces without hiding
    others.
    """
    if engine is None:
        from repro.engine.engine import get_default_engine

        engine = get_default_engine()
    started = time.perf_counter()
    report = OccupancyAuditReport()
    for fingerprint in registry.model_fingerprints():
        keys = registry.keys_for_model(fingerprint)
        if not keys:
            continue  # every sibling revoked — nothing co-resident to audit
        owners = registry.owners_for_model(fingerprint)
        key_ids = sorted(keys)
        verdict = ModelAuditVerdict(
            model_fingerprint=fingerprint,
            key_ids=key_ids,
            owners=[owners.get(kid, "") for kid in key_ids],
            disjoint=True,
        )
        try:
            allocator = SlotAllocator.from_keys(
                {kid: keys[kid] for kid in key_ids}, engine
            )
            verdict.total_slots = allocator.total_slots
        except SlotCollisionError as exc:
            verdict.disjoint = False
            verdict.collision = {
                "layer": exc.layer_name,
                "indices": [int(i) for i in exc.indices[:8]],
                "holder": exc.holder,
            }
            logger.warning(
                "occupancy audit: collision on %s (layer %s, holder %s)",
                fingerprint,
                exc.layer_name,
                exc.holder,
            )
        report.verdicts.append(verdict)
    report.verdicts.sort(key=lambda v: v.model_fingerprint)
    report.elapsed_seconds = time.perf_counter() - started
    return report
