"""Deterministic consistent-hash ring over shard labels.

The fleet shards the key space by **model-identity fingerprint**
(:meth:`repro.core.keys.WatermarkKey.model_fingerprint`): a key, every
suspect deployment of its model family, and every verify request against
them hash to the same point, so one shard owns a model family end to end.
That invariant is what keeps the occupancy audit shard-local — all
co-resident keys of one fingerprint live behind one shard — and what makes
fleet decisions bit-identical to an unsharded server (each decision only
ever needs keys its own shard holds).

Hashing is :mod:`hashlib`-based (never Python's salted ``hash()``), so the
router process, the client-side :class:`~repro.service.fleet.client.FleetClient`
and the load generator all agree on placement without coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """Position of ``label`` on the 64-bit ring."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys onto a fixed node list.

    Parameters
    ----------
    nodes:
        Shard labels in index order (``["shard-0", "shard-1", ...]``); the
        ring remembers each label's position so :meth:`index_for` answers the
        original index.
    replicas:
        Virtual nodes per shard — more replicas, smoother balance and less
        key movement when a shard joins or leaves.
    """

    def __init__(self, nodes: Sequence[str], replicas: int = 64) -> None:
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError("HashRing nodes must be unique")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.nodes: List[str] = list(nodes)
        self.replicas = int(replicas)
        self._index: Dict[str, int] = {node: i for i, node in enumerate(self.nodes)}
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(self.replicas):
                points.append((_point(f"{node}#{replica}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [node for _, node in points]

    def node_for(self, key: str) -> str:
        """The shard label owning ``key`` (typically a model fingerprint)."""
        position = bisect.bisect_right(self._points, _point(key))
        if position == len(self._points):
            position = 0
        return self._owners[position]

    def index_for(self, key: str) -> int:
        """The shard *index* owning ``key`` (into the constructor's list)."""
        return self._index[self.node_for(key)]

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """``{node: count}`` of how ``keys`` distribute over the ring."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(nodes={self.nodes!r}, replicas={self.replicas})"
