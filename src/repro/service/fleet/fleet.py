"""Fleet topology: build, audit and tear down a sharded verification fleet.

:func:`launch_fleet` stands up N independent
:class:`~repro.service.server.VerificationServer` shards — each with its own
:class:`~repro.service.registry.KeyRegistry` partition, its own
:class:`~repro.engine.engine.WatermarkEngine` (private plan cache) and its
own dispatcher — fronts them with a
:class:`~repro.service.fleet.router.ShardRouter`, and (by default) runs the
occupancy audit over every shard before declaring the fleet up.

:func:`partition_registry` rebalances an existing on-disk registry into N
shard partitions by consistent-hashing each record's model fingerprint —
the same ring the router and :class:`~repro.service.fleet.client.FleetClient`
use, so a partitioned registry is immediately servable.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.engine.engine import EngineConfig, WatermarkEngine
from repro.service.fleet.audit import OccupancyAuditReport, occupancy_audit
from repro.service.fleet.hashring import HashRing
from repro.service.fleet.router import ShardRouter, shard_labels
from repro.service.registry import KeyRegistry
from repro.service.server import ServerHandle, ServiceConfig, VerificationServer
from repro.utils.logging import get_logger

__all__ = ["FleetAuditError", "FleetConfig", "FleetHandle", "launch_fleet", "partition_registry"]

logger = get_logger("service.fleet")


class FleetAuditError(RuntimeError):
    """Raised when the build-time occupancy audit finds a slot collision."""

    def __init__(self, report: OccupancyAuditReport) -> None:
        collisions = ", ".join(v.model_fingerprint for v in report.collisions)
        super().__init__(
            f"occupancy audit failed for {len(report.collisions)} model "
            f"fingerprint(s): {collisions}"
        )
        self.report = report


@dataclass
class FleetConfig:
    """Topology knobs for :func:`launch_fleet`.

    ``registry_root`` is the parent directory of the per-shard registry
    partitions (``<root>/shard-i``); ``None`` runs every shard in memory.
    ``max_resident_keys`` bounds each shard's lazily-loaded key residency
    (persistent registries only) and ``plan_cache_entries`` sizes each
    shard's private plan cache.  ``run_audit`` gates the build-time
    occupancy audit; ``replicas`` is the ring's virtual-node count and must
    match whatever clients use for client-side routing.
    """

    num_shards: int = 2
    registry_root: Optional[Union[str, Path]] = None
    max_resident_keys: Optional[int] = None
    plan_cache_entries: int = 256
    max_wait_ms: float = 2.0
    max_batch: int = 32
    run_audit: bool = True
    replicas: int = 64
    host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")


@dataclass
class FleetHandle:
    """A running fleet: shard servers, their handles, and the router.

    Context-manager friendly::

        with launch_fleet(FleetConfig(num_shards=2)) as fleet:
            client = VerificationClient(port=fleet.port)
            ...
    """

    config: FleetConfig
    shards: List[VerificationServer]
    shard_handles: List[ServerHandle]
    router: ShardRouter
    router_handle: ServerHandle
    ring: HashRing
    audit_report: Optional[OccupancyAuditReport] = None
    labels: List[str] = field(default_factory=list)

    @property
    def port(self) -> int:
        """The router's bound port — the fleet's single front address."""
        return self.router_handle.port

    @property
    def shard_ports(self) -> List[int]:
        return [handle.port for handle in self.shard_handles]

    @property
    def addresses(self) -> List[str]:
        return [f"{self.config.host}:{port}" for port in self.shard_ports]

    def shard_for(self, fingerprint: str) -> int:
        """Index of the shard owning one model fingerprint."""
        return self.ring.index_for(fingerprint)

    def audit(self) -> OccupancyAuditReport:
        """Re-run the occupancy audit across all shards and merge."""
        reports = [
            occupancy_audit(server.registry, server.engine) for server in self.shards
        ]
        self.audit_report = OccupancyAuditReport.merge(reports)
        return self.audit_report

    def close(self) -> None:
        self.router_handle.close()
        for handle in self.shard_handles:
            handle.close()

    def __enter__(self) -> "FleetHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def launch_fleet(config: Optional[FleetConfig] = None, **kwargs) -> FleetHandle:
    """Build and start a sharded fleet; returns once every port is bound.

    Accepts either a :class:`FleetConfig` or its fields as keyword
    arguments.  When ``run_audit`` is set (the default) the occupancy audit
    runs over every shard's registry before the router accepts traffic and
    a collision raises :class:`FleetAuditError` — a fleet must never come
    up serving keys that overwrite each other's slots.
    """
    if config is not None and kwargs:
        raise ValueError("pass either a FleetConfig or its fields, not both")
    cfg = config or FleetConfig(**kwargs)
    labels = shard_labels(cfg.num_shards)
    ring = HashRing(labels, replicas=cfg.replicas)
    root = Path(cfg.registry_root) if cfg.registry_root is not None else None

    shards: List[VerificationServer] = []
    for index, label in enumerate(labels):
        registry = KeyRegistry(
            root / label if root is not None else None,
            max_resident_keys=cfg.max_resident_keys if root is not None else None,
        )
        engine = WatermarkEngine(EngineConfig(plan_cache_entries=cfg.plan_cache_entries))
        server = VerificationServer(
            engine=engine,
            registry=registry,
            config=ServiceConfig(
                host=cfg.host,
                port=0,
                max_batch=cfg.max_batch,
                max_wait_ms=cfg.max_wait_ms,
            ),
        )
        shards.append(server)

    audit_report: Optional[OccupancyAuditReport] = None
    if cfg.run_audit:
        reports = [occupancy_audit(s.registry, s.engine) for s in shards]
        audit_report = OccupancyAuditReport.merge(reports)
        if not audit_report.ok:
            raise FleetAuditError(audit_report)
        logger.info(
            "fleet build audit: %d model fingerprint(s) disjoint (digest %s)",
            len(audit_report.verdicts),
            audit_report.digest(),
        )

    shard_handles: List[ServerHandle] = []
    try:
        for server in shards:
            shard_handles.append(ServerHandle(server).start())
        router = ShardRouter(
            [f"{cfg.host}:{handle.port}" for handle in shard_handles],
            host=cfg.host,
            replicas=cfg.replicas,
        )
        router_handle = ServerHandle(router).start()
    except BaseException:
        for handle in shard_handles:
            try:
                handle.close()
            except Exception:
                pass
        raise

    logger.info(
        "fleet up: router :%d over %d shard(s) %s",
        router_handle.port,
        len(shard_handles),
        [handle.port for handle in shard_handles],
    )
    return FleetHandle(
        config=cfg,
        shards=shards,
        shard_handles=shard_handles,
        router=router,
        router_handle=router_handle,
        ring=ring,
        audit_report=audit_report,
        labels=labels,
    )


def partition_registry(
    source_root: Union[str, Path],
    dest_root: Union[str, Path],
    num_shards: int,
    replicas: int = 64,
) -> Dict[str, List[str]]:
    """Split one on-disk registry into ``num_shards`` ring-placed partitions.

    Every entry directory under ``source_root`` holding a ``record.json`` is
    copied into ``<dest_root>/<shard-label>/<key_id>`` according to the
    record's model fingerprint on the ring; quarantined ``*.corrupt``
    entries are left behind.  Returns ``{shard label: [key ids]}``.  The
    copy is additive — the source registry is not modified — so a rebalance
    is: partition, launch the fleet on ``dest_root``, audit, cut over.
    """
    source = Path(source_root)
    dest = Path(dest_root)
    if not source.is_dir():
        raise FileNotFoundError(f"registry root {source} does not exist")
    labels = shard_labels(num_shards)
    ring = HashRing(labels, replicas=replicas)
    placement: Dict[str, List[str]] = {label: [] for label in labels}
    for entry in sorted(source.iterdir()):
        record_path = entry / "record.json"
        if not entry.is_dir() or entry.name.endswith(".corrupt") or not record_path.exists():
            continue
        with record_path.open("r", encoding="utf-8") as fh:
            record = json.load(fh)
        fingerprint = record.get("model_fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            logger.warning("partition: %s has no model fingerprint, skipping", entry.name)
            continue
        label = ring.node_for(fingerprint)
        target = dest / label / entry.name
        if target.exists():
            shutil.rmtree(target)
        shutil.copytree(entry, target)
        placement[label].append(entry.name)
    for label in labels:
        (dest / label).mkdir(parents=True, exist_ok=True)
        placement[label].sort()
    logger.info(
        "partitioned %d registry entr(ies) over %d shard(s): %s",
        sum(len(v) for v in placement.values()),
        num_shards,
        {label: len(ids) for label, ids in placement.items()},
    )
    return placement
